"""Setup shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so the package can be installed in environments without the ``wheel``
package (offline machines where PEP 517 editable builds are unavailable) via
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
