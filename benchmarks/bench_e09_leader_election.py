"""E9 — Feige lightest-bin leader election vs a rushing coalition (§7.1)."""

from repro.analysis.experiments import leader_election_experiment
from repro.analysis.runner import default_worker_count


def test_e09_leader_election(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: leader_election_experiment(
            n_players=256, fractions=(0.0, 0.1, 0.2, 0.3, 0.45), trials=300, seed=1,
            n_workers=default_worker_count(),
        ),
        "e09_leader_election",
    )
    # With no coalition the leader is always honest; with a coalition the
    # honest-leader probability stays bounded away from zero (Feige's
    # constant-probability guarantee).
    assert table.rows[0]["p_honest_leader"] == 1.0
    assert min(table.column("p_honest_leader")) >= 0.25
