"""E5 — Honest-case CalculatePreferences vs baselines (Lemmas 9-12)."""

from repro.analysis.experiments import honest_protocol_experiment
from repro.analysis.runner import default_worker_count


def test_e05_honest_protocol(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: honest_protocol_experiment(
            n_players=256, n_objects=512, budget=4, diameter=64, seed=1,
            n_workers=default_worker_count(),
        ),
        "e05_honest_protocol",
    )
    rows = {row["algorithm"]: row for row in table.rows}
    ours = rows["calculate-preferences"]
    # Error stays O(D) (matching the unachievable oracle skyline), far below
    # the non-collaborative baselines.
    assert ours["max_error"] <= 2 * ours["planted_D"]
    assert ours["max_error"] < rows["solo-probing"]["max_error"] / 3
    assert ours["max_probes"] < 512
