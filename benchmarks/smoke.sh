#!/usr/bin/env bash
# Perf smoke gate: E10 scaling driver at a fixed size vs the recorded JSON
# baseline (benchmarks/results/e10_smoke_baseline.json).  Exits non-zero if
# wall time regresses more than 2x.  Pass --update-baseline to re-record.
#
# The whole gate runs under a wall-clock timeout (SMOKE_TIMEOUT_S, default
# 900s) so a hung pool worker or stalled probe fails CI loudly instead of
# eating the job's time limit.  `timeout` exits 124 on expiry (137 if the
# KILL escalation fired).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec timeout --kill-after=30 "${SMOKE_TIMEOUT_S:-900}" \
    python benchmarks/smoke_e10.py "$@"
