#!/usr/bin/env bash
# Perf smoke gate: E10 scaling driver at a fixed size vs the recorded JSON
# baseline (benchmarks/results/e10_smoke_baseline.json).  Exits non-zero if
# wall time regresses more than 2x.  Pass --update-baseline to re-record.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python benchmarks/smoke_e10.py "$@"
