"""E12 — Ablations of the protocol's design choices."""

from repro.analysis.experiments import ablation_experiment
from repro.analysis.runner import default_worker_count


def test_e12_ablations(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: ablation_experiment(
            n_players=256, n_objects=512, budget=4, diameter=64, seed=1,
            n_workers=default_worker_count(),
        ),
        "e12_ablations",
    )
    rows = {row["variant"]: row for row in table.rows}
    baseline = rows["baseline (practical constants)"]
    # The clustering threshold and the sample density are the load-bearing
    # design choices: loosening either degrades accuracy by a large factor.
    assert rows["permissive edge threshold (x4)"]["mean_error"] > 3 * baseline["mean_error"]
    assert rows["sparse sample (/3)"]["mean_error"] > 3 * baseline["mean_error"]
