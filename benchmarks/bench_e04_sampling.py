"""E4 — Sample-set similarity preservation (Lemma 6)."""

from repro.analysis.experiments import sampling_concentration_experiment
from repro.analysis.runner import default_worker_count


def test_e04_sampling(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: sampling_concentration_experiment(
            n_players=256, n_objects=512, budget=4, diameter=64, trials=5, seed=1,
            n_workers=default_worker_count(),
        ),
        "e04_sampling",
    )
    # Lemma 6 shape: same-cluster pairs stay below the edge threshold on the
    # sample, cross-cluster pairs stay above it.
    for row in table.rows:
        assert row["max_disagreement_close_pairs"] < row["edge_threshold"]
        assert row["min_disagreement_far_pairs"] > row["edge_threshold"]
