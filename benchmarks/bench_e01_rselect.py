"""E1 — RSelect accuracy and probe cost vs the number of candidates (Theorem 3)."""

from repro.analysis.experiments import rselect_experiment
from repro.analysis.runner import default_worker_count


def test_e01_rselect(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: rselect_experiment(
            n_objects=512, candidate_counts=(2, 4, 8, 16), best_distance=4,
            decoy_distance=128, trials=5, seed=1,
            n_workers=default_worker_count(),
        ),
        "e01_rselect",
    )
    # Theorem 3 shape: the chosen candidate stays within a small constant of
    # the best candidate's distance for every k.
    assert max(table.column("max_chosen_distance")) <= 4 * 4
