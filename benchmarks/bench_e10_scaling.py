"""E10 — Probe-complexity scaling with n at fixed budget (Lemma 11)."""

from repro.analysis.experiments import scaling_experiment
from repro.analysis.runner import default_worker_count


def test_e10_scaling(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: scaling_experiment(
            sizes=(128, 256, 512, 1024), budget=8, seed=1,
            n_workers=default_worker_count(),
        ),
        "e10_scaling",
    )
    probes = table.column("max_probes")
    everything = table.column("probe_everything_cost")
    # The protocol's distinct-probe cost grows sublinearly relative to the
    # probe-everything cost: the saving ratio improves as n grows.
    ratios = [p / e for p, e in zip(probes, everything)]
    assert ratios[-1] < 1.0
    assert ratios[-1] <= ratios[0] + 0.05
    # Error stays within a constant factor of the planted diameter throughout.
    for row in table.rows:
        assert row["max_error"] <= row["planted_D"]
