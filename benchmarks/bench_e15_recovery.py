"""E15 — bounded-time recovery: checkpointed restart vs full journal replay.

Not a paper experiment: this table records the durability layer's recovery
cost so the "restart is O(checkpoint + tail), not O(history)" property is a
measured number rather than a claim.  A durable session is driven through a
ladder of journaled ``probe`` ops, then recovered two ways from the same
state dir:

* **replay** — no checkpoint on disk: recovery re-executes every journaled
  op against a fresh ``prepare(spec, seed)`` (the O(history) path);
* **checkpoint** — a checkpoint written at the end of the op stream with
  the journal compacted to the (empty) post-checkpoint tail: recovery
  unpickles the snapshot and replays nothing (the O(checkpoint + tail)
  path).

Both recoveries must land on bit-identical observable state (board channel
stats + oracle probe accounting); the ``speedup_x`` column is the headline
number — the acceptance gate wants the 10k-op restart at least 10x faster
with a checkpoint.

Columns: ``mode`` (replay / checkpoint), ``ops`` (journaled op count),
``replayed`` (ops re-executed during recovery), ``ckpt_kib`` (checkpoint
size on disk, 0 for replay rows), ``wall_s`` (recovery time) and
``speedup_x`` (replay wall over checkpoint wall for the same op count).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.analysis.reporting import ExperimentTable, render_markdown, render_text
from repro.serve.durability import SessionJournal, session_checkpoint_path, session_journal_path
from repro.serve.server import PreferenceServer
from repro.serve.session import Session, build_spec

OP_COUNTS: tuple[int, ...] = (1_000, 10_000)
SCENARIO = "zero-radius-exact"
SEED = 7


def _build_durable_session(state_dir: Path, n_ops: int) -> None:
    """Journal ``n_ops`` probe ops then crash (no close, no checkpoint)."""
    journal = SessionJournal.create(
        session_journal_path(state_dir, "bench"), session="bench",
        scenario=SCENARIO, overrides=None, seed=SEED, max_pending=64,
    )
    session = Session("bench", build_spec(SCENARIO), SEED, journal=journal)
    for index in range(n_ops):
        objects = [(index + offset) % 96 for offset in range(4)]
        session.submit_op("probe", {"player": index % 96, "objects": objects}).result()
    session._executor.shutdown(wait=True)


def _recover(state_dir: Path) -> tuple[float, PreferenceServer]:
    """Time a cold recovery of the state dir (prepare + replay/restore)."""
    server = PreferenceServer(state_dir=state_dir)
    start = time.perf_counter()
    server._recover_sessions()
    return time.perf_counter() - start, server


def _observable_state(session: Session) -> tuple:
    session.submit(lambda: None).result()  # settle replay
    context = session.prepared.context
    return (
        context.board.channel_stats(),
        context.oracle.probes_used().tolist(),
    )


def recovery_benchmark(op_counts: tuple[int, ...] = OP_COUNTS) -> ExperimentTable:
    """Replay-vs-checkpoint recovery ladder over journaled op counts."""
    table = ExperimentTable(
        experiment_id="E15",
        title="Session recovery: full journal replay vs checkpoint + tail",
        columns=["mode", "ops", "replayed", "ckpt_kib", "wall_s", "speedup_x"],
        notes=[
            f"scenario {SCENARIO!r}; journaled probe ops, 4 objects each; "
            "recovery timed cold (includes prepare/unpickle).",
            "checkpoint rows: snapshot written after the last op, journal "
            "compacted to the empty tail; replay rows: same journal, no "
            "checkpoint on disk.",
            "both modes recover bit-identical observable state "
            "(board channel stats + oracle probe accounting).",
        ],
    )
    for n_ops in op_counts:
        with tempfile.TemporaryDirectory(prefix="e15-state-") as tmp:
            state_dir = Path(tmp)
            _build_durable_session(state_dir, n_ops)

            replay_wall, server = _recover(state_dir)
            assert server.recovery_stats["ops_replayed"] == n_ops
            recovered = server.sessions["bench"]
            state_after_replay = _observable_state(recovered)

            # Checkpoint the recovered session: snapshot + compaction.
            assert recovered.write_checkpoint() is True
            recovered._executor.shutdown(wait=True)
            ckpt_bytes = session_checkpoint_path(state_dir, "bench").stat().st_size

            ckpt_wall, server2 = _recover(state_dir)
            assert server2.recovery_stats["checkpoint_loads"] == 1
            replayed_tail = server2.recovery_stats["ops_replayed"]
            assert _observable_state(server2.sessions["bench"]) == state_after_replay
            server2.sessions["bench"]._executor.shutdown(wait=True)

            speedup = replay_wall / ckpt_wall if ckpt_wall > 0 else float("inf")
            table.add_row(
                mode="replay", ops=n_ops, replayed=n_ops, ckpt_kib=0,
                wall_s=round(replay_wall, 4), speedup_x=1.0,
            )
            table.add_row(
                mode="checkpoint", ops=n_ops, replayed=replayed_tail,
                ckpt_kib=round(ckpt_bytes / 1024, 1),
                wall_s=round(ckpt_wall, 4), speedup_x=round(speedup, 1),
            )
    return table


def test_e15_recovery(benchmark, report_table):
    table = report_table(benchmark, recovery_benchmark, "e15_recovery")
    by_ops: dict[int, dict[str, dict]] = {}
    for row in table.rows:
        by_ops.setdefault(row["ops"], {})[row["mode"]] = row
    assert max(by_ops) >= 10_000
    for ops, modes in by_ops.items():
        assert modes["replay"]["replayed"] == ops
        assert modes["checkpoint"]["replayed"] == 0
        assert modes["checkpoint"]["wall_s"] < modes["replay"]["wall_s"]
    # The acceptance gate: the 10k-op restart is >= 10x faster checkpointed.
    assert by_ops[10_000]["checkpoint"]["speedup_x"] >= 10.0


def main() -> None:
    from conftest import RESULTS_DIR, write_result_json

    start = time.perf_counter()
    table = recovery_benchmark()
    wall = time.perf_counter() - start
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = render_text(table)
    (RESULTS_DIR / "e15_recovery.txt").write_text(text + "\n")
    (RESULTS_DIR / "e15_recovery.md").write_text(render_markdown(table) + "\n")
    path = write_result_json("e15_recovery", table, wall)
    print(text)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
