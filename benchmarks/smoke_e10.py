"""Perf smoke gate: run E10 at fixed sizes and fail on a >2x regression.

``benchmarks/smoke.sh`` is the entry point.  The first run (or
``--update-baseline``) records ``benchmarks/results/e10_smoke_baseline.json``
with one entry per gated size (default ``512,1024``); later runs re-measure
the same configurations and exit non-zero when any size's wall time exceeds
``--factor`` (default 2.0) times its recorded baseline, so a perf regression
on the scaling driver fails loudly in CI or pre-commit.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "e10_smoke_baseline.json"


def hardware_label() -> str:
    """Best-effort machine fingerprint recorded next to the baseline.

    CI caches the baseline keyed on runner hardware (see
    ``.github/workflows/ci.yml``); embedding the label makes a mismatched
    restore diagnosable from the file itself.
    """
    model = ""
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return f"{platform.machine()} {model}".strip()


def measure(n: int, budget: int, seed: int, repeats: int) -> float:
    """Best-of-N wall time for one gated size.

    Each run journals to a fresh temp file, so the gate measures (and
    exercises) the same checkpointed path CI relies on — journal overhead is
    part of the number being gated, not hidden behind it.
    """
    from repro.analysis.experiments import scaling_experiment

    best = float("inf")
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="e10-smoke-") as tmp:
            journal = Path(tmp) / f"e10_n{n}.jsonl"
            start = time.perf_counter()
            scaling_experiment(sizes=(n,), budget=budget, seed=seed, journal=journal)
            best = min(best, time.perf_counter() - start)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        type=str,
        default="512,1024",
        help="comma-separated instance sizes (n_players) to gate",
    )
    parser.add_argument("--budget", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=2, help="take the best of N runs")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when wall time exceeds factor x baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current timings as the new baseline and exit",
    )
    args = parser.parse_args(argv)
    sizes = [int(part) for part in args.sizes.split(",") if part]
    if not sizes:
        parser.error("--sizes must name at least one instance size")

    entries = []
    for n in sizes:
        wall = measure(n, args.budget, args.seed, args.repeats)
        entries.append(
            {"config": {"n": n, "budget": args.budget, "seed": args.seed}, "wall_time_s": wall}
        )

    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    baseline_entries = {
        json.dumps(entry["config"], sort_keys=True): float(entry["wall_time_s"])
        for entry in (baseline or {}).get("entries", [])
    }

    def write_baseline(all_entries: list[dict]) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        payload = {
            "slug": "e10_smoke_baseline",
            "hardware": hardware_label(),
            "entries": all_entries,
            "recorded_unix_time": time.time(),
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    def report_record(reason: str) -> None:
        timings = ", ".join(
            f"n={e['config']['n']}: {e['wall_time_s']:.3f}s" for e in entries
        )
        print(f"e10 smoke: {timings} ({reason})")

    if args.update_baseline or baseline is None:
        write_baseline(entries)
        report_record(
            "baseline updated" if args.update_baseline else "no baseline found, recorded"
        )
        return 0

    # Gate every size the baseline knows; sizes it does not know yet are
    # *appended* after a passing gate, never allowed to disarm the gate for
    # the known ones (a regression must not hide behind a new size).
    failed = False
    unknown = []
    for entry in entries:
        key = json.dumps(entry["config"], sort_keys=True)
        wall = float(entry["wall_time_s"])
        if key not in baseline_entries:
            unknown.append(entry)
            print(
                f"e10 smoke: {wall:.3f}s at n={entry['config']['n']} "
                "(no baseline entry, will record)"
            )
            continue
        reference = baseline_entries[key]
        limit = args.factor * reference
        status = "OK" if wall <= limit else "REGRESSION"
        failed = failed or wall > limit
        print(
            f"e10 smoke: {wall:.3f}s at n={entry['config']['n']} "
            f"(baseline {reference:.3f}s, limit {limit:.3f}s) -> {status}"
        )
    if failed:
        print(
            "wall time regressed more than "
            f"{args.factor}x against benchmarks/results/e10_smoke_baseline.json; "
            "investigate or re-record with --update-baseline",
            file=sys.stderr,
        )
        return 1
    if unknown:
        write_baseline(baseline.get("entries", []) + unknown)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
