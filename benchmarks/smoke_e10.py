"""Perf smoke gate: run E10 at a fixed size and fail on a >2x regression.

``benchmarks/smoke.sh`` is the entry point.  The first run (or
``--update-baseline``) records ``benchmarks/results/e10_smoke_baseline.json``;
later runs re-measure the same configuration and exit non-zero when the wall
time exceeds ``--factor`` (default 2.0) times the recorded baseline, so a
perf regression on the scaling driver fails loudly in CI or pre-commit.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "e10_smoke_baseline.json"


def hardware_label() -> str:
    """Best-effort machine fingerprint recorded next to the baseline.

    CI caches the baseline keyed on runner hardware (see
    ``.github/workflows/ci.yml``); embedding the label makes a mismatched
    restore diagnosable from the file itself.
    """
    model = ""
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return f"{platform.machine()} {model}".strip()


def measure(n: int, budget: int, seed: int, repeats: int) -> float:
    from repro.analysis.experiments import scaling_experiment

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        scaling_experiment(sizes=(n,), budget=budget, seed=seed)
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=512, help="instance size (n_players)")
    parser.add_argument("--budget", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=2, help="take the best of N runs")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when wall time exceeds factor x baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current timing as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    wall = measure(args.n, args.budget, args.seed, args.repeats)
    config = {"n": args.n, "budget": args.budget, "seed": args.seed}

    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())

    config_changed = baseline is not None and baseline.get("config") != config
    if args.update_baseline or baseline is None or config_changed:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        payload = {
            "slug": "e10_smoke_baseline",
            "config": config,
            "hardware": hardware_label(),
            "wall_time_s": wall,
            "recorded_unix_time": time.time(),
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        reason = (
            "baseline updated"
            if args.update_baseline
            else ("config changed, baseline re-recorded" if config_changed else "no baseline found, recorded")
        )
        print(f"e10 smoke: {wall:.3f}s at n={args.n} ({reason})")
        return 0

    reference = float(baseline["wall_time_s"])
    limit = args.factor * reference
    status = "OK" if wall <= limit else "REGRESSION"
    print(
        f"e10 smoke: {wall:.3f}s at n={args.n} "
        f"(baseline {reference:.3f}s, limit {limit:.3f}s) -> {status}"
    )
    if wall > limit:
        print(
            "wall time regressed more than "
            f"{args.factor}x against benchmarks/results/e10_smoke_baseline.json; "
            "investigate or re-record with --update-baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
