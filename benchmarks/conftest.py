"""Shared helpers for the benchmark harness.

Each ``bench_eXX_*.py`` module regenerates one experiment from the DESIGN.md
index (the paper analogue of a table/figure).  The helper below times the
experiment driver with pytest-benchmark, renders the resulting table, writes
it under ``benchmarks/results/`` and echoes it to stdout (run with ``-s`` to
see it live).  EXPERIMENTS.md records representative outputs of these runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

import pytest

from repro.analysis.reporting import ExperimentTable, render_markdown, render_text

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report_table() -> Callable:
    """Run an experiment driver under the benchmark fixture and persist its table."""

    def _run(benchmark, driver: Callable[[], ExperimentTable], slug: str) -> ExperimentTable:
        table = benchmark.pedantic(driver, rounds=1, iterations=1)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        text = render_text(table)
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        (RESULTS_DIR / f"{slug}.md").write_text(render_markdown(table) + "\n")
        print("\n" + text)
        return table

    return _run
