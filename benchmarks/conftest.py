"""Shared helpers for the benchmark harness.

Each ``bench_eXX_*.py`` module regenerates one experiment from the DESIGN.md
index (the paper analogue of a table/figure).  The helper below times the
experiment driver with pytest-benchmark, renders the resulting table, writes
it under ``benchmarks/results/`` and echoes it to stdout (run with ``-s`` to
see it live).  EXPERIMENTS.md records representative outputs of these runs.

Besides the human-readable ``.txt``/``.md`` renderings, every run now also
emits a machine-readable ``<slug>.json`` (wall time, row payload, timestamp)
so the performance trajectory is trackable across PRs —
``benchmarks/smoke.sh`` consumes these to gate regressions.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

import pytest

from repro.analysis.reporting import (
    ExperimentTable,
    render_markdown,
    render_text,
    write_table_json,
)

RESULTS_DIR = Path(__file__).parent / "results"


def write_result_json(slug: str, table: ExperimentTable, wall_time_s: float) -> Path:
    """Persist one benchmark run as machine-readable JSON under results/."""
    return write_table_json(RESULTS_DIR, slug, table, wall_time_s)


@pytest.fixture
def report_table() -> Callable:
    """Run an experiment driver under the benchmark fixture and persist its table."""

    def _run(benchmark, driver: Callable[[], ExperimentTable], slug: str) -> ExperimentTable:
        timings: list[float] = []

        def timed() -> ExperimentTable:
            start = time.perf_counter()
            table = driver()
            timings.append(time.perf_counter() - start)
            return table

        table = benchmark.pedantic(timed, rounds=1, iterations=1)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        text = render_text(table)
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        (RESULTS_DIR / f"{slug}.md").write_text(render_markdown(table) + "\n")
        write_result_json(slug, table, timings[-1])
        print("\n" + text)
        return table

    return _run
