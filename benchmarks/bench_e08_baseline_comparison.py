"""E8 — CalculatePreferences vs the prior state of the art (Alon et al. [2,3])."""

from repro.analysis.experiments import baseline_comparison_experiment


def test_e08_baseline_comparison(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: baseline_comparison_experiment(
            n_players=256, n_objects=512, budget=4, diameter=64, seed=1
        ),
        "e08_baseline_comparison",
    )
    rows = {row["algorithm"]: row for row in table.rows}
    ours = rows["calculate-preferences"]
    alon = rows["alon-awerbuch-azar-patt-shamir"]
    # Paper claim (shape): the prior algorithm needs ~B x more probe work on
    # the same schedule, while both achieve O(D) error.
    assert alon["max_probe_requests"] > 2 * ours["max_probe_requests"]
    assert ours["max_error"] <= 2 * ours["planted_D"]
    assert alon["max_error"] <= 2 * alon["planted_D"]
