"""E11 — Heterogeneous cluster sizes/diameters (§8 extension)."""

from repro.analysis.experiments import heterogeneous_budget_experiment


def test_e11_heterogeneous(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: heterogeneous_budget_experiment(
            n_players=256, n_objects=512, budget=4, seed=1
        ),
        "e11_heterogeneous",
    )
    # Players in clusters of size >= n/B get error comparable to their planted
    # diameter; undersized clusters are only as good as their Definition-1
    # benchmark allows.
    for row in table.rows:
        if row["size"] >= 256 // 4:
            assert row["max_error"] <= 2 * max(1, row["planted_diameter"])
