"""E13 — microbenchmark of the bit-packed perf kernels (repro.perf).

Not a paper experiment: this table tracks the packed kernels against their
unpacked references so the perf trajectory of the hot building blocks is
recorded next to the protocol-level benchmarks.  Each row verifies the
packed result is bit-for-bit equal to the reference before timing anything.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import ExperimentTable
from repro.core.clustering import build_neighbor_graph, cluster_players
from repro.obs import collecting
from repro.perf import (
    pack_bits,
    packed_hamming,
    packed_majority_tall,
    packed_scatter_columns,
    packed_unique_rows,
    pairwise_hamming,
)
from repro.preferences.generators import planted_clusters_instance
from repro.protocols.context import make_context
from repro.protocols.rselect import rselect_collective
from repro.simulation.board import BulletinBoard
from repro.simulation.oracle import ProbeOracle


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _unpacked_pairwise(matrix: np.ndarray) -> np.ndarray:
    signed = matrix.astype(np.int32) * 2 - 1
    inner = signed @ signed.T
    return ((matrix.shape[1] - inner) // 2).astype(np.int64)


def _unpacked_cross(rows: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    return (rows[:, None, :] != candidates[None, :, :]).sum(axis=2, dtype=np.int64)


def kernel_microbenchmark(
    n: int = 1000,
    width: int = 512,
    n_candidates: int = 16,
    seed: int = 0,
) -> ExperimentTable:
    """Time packed vs unpacked kernels on random instances (results verified equal).

    The whole run executes inside a telemetry window, so the results table
    carries the ``perf.*`` kernel-timer registry (calls + cumulative seconds
    per kernel, verification passes included) in its ``metrics`` block — the
    same counters ``python -m repro trace`` reports for protocol runs.
    """
    with collecting() as telemetry:
        table = _kernel_microbenchmark(n, width, n_candidates, seed)
    table.metrics["telemetry"] = telemetry.report().metrics_block()
    return table


def _kernel_microbenchmark(
    n: int, width: int, n_candidates: int, seed: int
) -> ExperimentTable:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, 2, size=(n, width), dtype=np.uint8)
    candidates = rng.integers(0, 2, size=(n_candidates, width), dtype=np.uint8)
    # A published matrix with heavy row duplication, as popular_vectors sees.
    published = rows[rng.integers(0, max(1, n // 16), size=n)]

    table = ExperimentTable(
        experiment_id="E13",
        title="Bit-packed kernels vs unpacked references (microbenchmark)",
        columns=["kernel", "n", "width", "unpacked_ms", "packed_ms", "speedup"],
        notes=[
            f"n={n}, width={width}, k={n_candidates}; best of 3 runs; packed results "
            "asserted bit-for-bit equal to the references before timing.",
            "tournament-layer rows: 'unpacked' = serial/per-player reference, "
            "'packed' = collective path (probe memoisation reset per run).",
        ],
    )

    def add_row(
        kernel: str, reference_fn, packed_fn, equal_fn, n_value=None, width_value=None
    ) -> None:
        assert equal_fn(), f"packed kernel {kernel!r} diverged from the reference"
        unpacked_s = _best_of(reference_fn)
        packed_s = _best_of(packed_fn)
        table.add_row(
            kernel=kernel,
            n=n if n_value is None else n_value,
            width=width if width_value is None else width_value,
            unpacked_ms=1e3 * unpacked_s,
            packed_ms=1e3 * packed_s,
            speedup=unpacked_s / max(1e-9, packed_s),
        )

    add_row(
        "pairwise-hamming",
        lambda: _unpacked_pairwise(rows),
        lambda: pairwise_hamming(pack_bits(rows)),
        lambda: np.array_equal(pairwise_hamming(pack_bits(rows)), _unpacked_pairwise(rows)),
    )

    def packed_cross():
        return packed_hamming(
            pack_bits(rows).data[:, None, :], pack_bits(candidates).data[None, :, :]
        )

    add_row(
        "cross-hamming (select)",
        lambda: _unpacked_cross(rows, candidates),
        packed_cross,
        lambda: np.array_equal(packed_cross(), _unpacked_cross(rows, candidates)),
    )

    def unique_equal() -> bool:
        ref_rows, ref_counts = np.unique(published, axis=0, return_counts=True)
        got_rows, got_counts = packed_unique_rows(published)
        return np.array_equal(ref_rows, got_rows) and np.array_equal(
            ref_counts, got_counts
        )

    add_row(
        "unique-rows (popular_vectors)",
        lambda: np.unique(published, axis=0, return_counts=True),
        lambda: packed_unique_rows(published),
        unique_equal,
    )

    # End-to-end clustering phase at n=1000: packed neighbour graph plus the
    # incremental greedy clustering, against the unpacked Gram-matrix graph.
    threshold = float(width) / 8.0
    min_cluster_size = max(2, n // 8)

    def unpacked_clustering():
        graph = _unpacked_pairwise(rows) <= threshold
        np.fill_diagonal(graph, False)
        return cluster_players(graph, min_cluster_size=min_cluster_size)

    def packed_clustering():
        graph = build_neighbor_graph(rows, threshold)
        return cluster_players(graph, min_cluster_size=min_cluster_size)

    add_row(
        "neighbor-graph + clustering",
        unpacked_clustering,
        packed_clustering,
        lambda: np.array_equal(
            unpacked_clustering().assignment, packed_clustering().assignment
        ),
    )

    # Tall-stack majority: the bit-sliced vertical counter vs unpack-and-sum.
    tall = rng.integers(0, 2, size=(2 * n, width), dtype=np.uint8)
    tall_packed = pack_bits(tall)

    def unpacked_majority():
        bits = np.unpackbits(tall_packed.data, axis=-1, count=tall_packed.n_bits)
        return (2 * bits.sum(axis=0, dtype=np.int64) >= tall.shape[0]).astype(np.uint8)

    add_row(
        "majority-tall (vertical counter)",
        unpacked_majority,
        lambda: packed_majority_tall(tall_packed),
        lambda: np.array_equal(packed_majority_tall(tall_packed), unpacked_majority()),
    )

    # --- Tournament layer (PR 3): serial vs vectorised, loop vs ragged ----
    # For these two rows "unpacked" means the serial/per-player reference and
    # "packed" the collective path; both sides rebuild their state per run
    # (the oracle memoises probes, so reuse would bias the second timing).
    tournament_n, tournament_width, tournament_k = 512, 1024, 5
    instance = planted_clusters_instance(
        tournament_n, tournament_width, n_clusters=8, diameter=16, seed=seed
    )
    stack = rng.integers(
        0, 2, size=(tournament_n, tournament_k, tournament_width), dtype=np.uint8
    )
    players = np.arange(tournament_n)
    objects = np.arange(tournament_width)

    def run_tournament(vectorised: bool) -> np.ndarray:
        ctx = make_context(instance, budget=8, seed=seed)
        return rselect_collective(ctx, players, objects, stack, vectorised=vectorised)

    add_row(
        "rselect tournament (serial vs collective)",
        lambda: run_tournament(False),
        lambda: run_tournament(True),
        lambda: np.array_equal(run_tournament(False), run_tournament(True)),
        n_value=tournament_n,
        width_value=tournament_width,
    )

    # --- Board kernels (packed bulletin board) ---------------------------
    # "unpacked" = the pre-packed dense board semantics (two strided
    # (P, m) writes / masked dense reductions), "packed" = the object-major
    # packed storage.  E10 posts full-player blocks over ~m/2 column
    # subsets, which is the shape timed here.
    board_players, board_objects_total = 512, 1024
    board_objects = np.sort(
        rng.choice(board_objects_total, size=board_objects_total // 2, replace=False)
    )
    board_values = rng.integers(
        0, 2, size=(board_players, board_objects.size), dtype=np.uint8
    )
    dense_matrix = np.zeros((board_players, board_objects_total), dtype=np.uint8)
    dense_posted = np.zeros((board_players, board_objects_total), dtype=bool)
    packed_board = BulletinBoard(board_players, board_objects_total)
    all_players = np.arange(board_players, dtype=np.int64)

    def dense_scatter():
        dense_matrix[:, board_objects] = board_values
        dense_posted[:, board_objects] = True

    def packed_scatter():
        packed_board.post_report_block("bench", all_players, board_objects, board_values)

    def scatter_equal() -> bool:
        dense_scatter()
        packed_scatter()
        got_values, got_posted = packed_board.report_matrix("bench")
        return np.array_equal(got_values, dense_matrix) and np.array_equal(
            got_posted, dense_posted
        )

    add_row(
        "board post (dense scatter vs packed)",
        dense_scatter,
        packed_scatter,
        scatter_equal,
        n_value=board_players,
        width_value=board_objects.size,
    )

    def dense_masked_majority():
        likes = (dense_matrix * dense_posted).sum(axis=0, dtype=np.int64)
        votes = dense_posted.sum(axis=0, dtype=np.int64)
        return np.where(votes > 0, 2 * likes >= votes, 1).astype(np.uint8)

    add_row(
        "board masked majority (dense vs packed)",
        dense_masked_majority,
        lambda: packed_board.masked_majority("bench")[0],
        lambda: np.array_equal(
            packed_board.masked_majority("bench")[0], dense_masked_majority()
        ),
        n_value=board_players,
        width_value=board_objects_total,
    )

    # Packed report round-trip: full-player post + dense readback, packed
    # board vs the dense reference semantics.
    def dense_roundtrip():
        dense_matrix[:, board_objects] = board_values
        dense_posted[:, board_objects] = True
        return dense_matrix.copy(), dense_posted.copy()

    def packed_roundtrip():
        board = BulletinBoard(board_players, board_objects_total)
        board.post_report_block("rt", all_players, board_objects, board_values)
        return board.report_matrix("rt", copy=False)

    def roundtrip_equal() -> bool:
        got_values, got_posted = packed_roundtrip()
        want_values, want_posted = dense_roundtrip()
        return np.array_equal(got_values, want_values) and np.array_equal(
            got_posted, want_posted
        )

    add_row(
        "board report round-trip (post + read)",
        dense_roundtrip,
        packed_roundtrip,
        roundtrip_equal,
        n_value=board_players,
        width_value=board_objects.size,
    )

    # The raw column-scatter kernel against the maintenance it replaces:
    # keeping rows packed without it means unpack → dense write → repack,
    # whose cost scales with the full row width — the kernel's scales with
    # the touched columns only, so it is timed on a wide board (the regime
    # it exists for: sparse writes into large packed state).
    scatter_width = 16 * board_objects_total
    scatter_dest = np.zeros((board_players, scatter_width // 8), dtype=np.uint8)
    scatter_cols = np.sort(rng.choice(scatter_width, size=96, replace=False))
    scatter_bits = rng.integers(
        0, 2, size=(board_players, scatter_cols.size), dtype=np.uint8
    )

    def scatter_reference():
        full = np.unpackbits(scatter_dest, axis=1, count=scatter_width)
        full[:, scatter_cols] = scatter_bits
        return np.packbits(full, axis=1)

    def kernel_scatter_equal() -> bool:
        reference = scatter_reference()
        packed_scatter_columns(scatter_dest, scatter_cols, scatter_bits)
        return np.array_equal(scatter_dest, reference)

    add_row(
        "packed_scatter_columns (vs unpack+repack)",
        scatter_reference,
        lambda: packed_scatter_columns(scatter_dest, scatter_cols, scatter_bits),
        kernel_scatter_equal,
        n_value=board_players,
        width_value=scatter_cols.size,
    )

    ragged_lists = [
        rng.choice(tournament_width, size=18, replace=False) for _ in range(tournament_n)
    ]

    def probe_loop():
        oracle = ProbeOracle(instance.preferences)
        return np.concatenate(
            [oracle.probe_objects(p, objs) for p, objs in enumerate(ragged_lists)]
        )

    def probe_bulk():
        oracle = ProbeOracle(instance.preferences)
        return oracle.probe_ragged(players, ragged_lists)

    add_row(
        "oracle probe (loop vs ragged)",
        probe_loop,
        probe_bulk,
        lambda: np.array_equal(probe_loop(), probe_bulk()),
        n_value=tournament_n,
        width_value=tournament_width,
    )
    return table


def test_e13_kernels(benchmark, report_table):
    table = report_table(benchmark, kernel_microbenchmark, "e13_kernels")
    assert len(table.rows) == 11
    for row in table.rows:
        assert row["packed_ms"] > 0.0
    by_kernel = {row["kernel"]: row for row in table.rows}
    # PR-3 acceptance: the collective tournament is >= 2x the serial loop.
    assert by_kernel["rselect tournament (serial vs collective)"]["speedup"] >= 2.0
    # Observability tie-in: the run's kernel-timer telemetry rides along.
    timers = table.metrics["telemetry"]["timers"]
    assert timers["perf.pairwise_hamming"]["calls"] > 0
    assert timers["perf.packed_scatter_columns"]["calls"] > 0
