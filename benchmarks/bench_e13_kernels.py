"""E13 — microbenchmark of the bit-packed perf kernels (repro.perf).

Not a paper experiment: this table tracks the packed kernels against their
unpacked references so the perf trajectory of the hot building blocks is
recorded next to the protocol-level benchmarks.  Each row verifies the
packed result is bit-for-bit equal to the reference before timing anything.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import ExperimentTable
from repro.core.clustering import build_neighbor_graph, cluster_players
from repro.perf import pack_bits, packed_hamming, packed_unique_rows, pairwise_hamming


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _unpacked_pairwise(matrix: np.ndarray) -> np.ndarray:
    signed = matrix.astype(np.int32) * 2 - 1
    inner = signed @ signed.T
    return ((matrix.shape[1] - inner) // 2).astype(np.int64)


def _unpacked_cross(rows: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    return (rows[:, None, :] != candidates[None, :, :]).sum(axis=2, dtype=np.int64)


def kernel_microbenchmark(
    n: int = 1000,
    width: int = 512,
    n_candidates: int = 16,
    seed: int = 0,
) -> ExperimentTable:
    """Time packed vs unpacked kernels on random instances (results verified equal)."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, 2, size=(n, width), dtype=np.uint8)
    candidates = rng.integers(0, 2, size=(n_candidates, width), dtype=np.uint8)
    # A published matrix with heavy row duplication, as popular_vectors sees.
    published = rows[rng.integers(0, max(1, n // 16), size=n)]

    table = ExperimentTable(
        experiment_id="E13",
        title="Bit-packed kernels vs unpacked references (microbenchmark)",
        columns=["kernel", "n", "width", "unpacked_ms", "packed_ms", "speedup"],
        notes=[
            f"n={n}, width={width}, k={n_candidates}; best of 3 runs; packed results "
            "asserted bit-for-bit equal to the references before timing.",
        ],
    )

    def add_row(kernel: str, reference_fn, packed_fn, equal_fn) -> None:
        assert equal_fn(), f"packed kernel {kernel!r} diverged from the reference"
        unpacked_s = _best_of(reference_fn)
        packed_s = _best_of(packed_fn)
        table.add_row(
            kernel=kernel,
            n=n,
            width=width,
            unpacked_ms=1e3 * unpacked_s,
            packed_ms=1e3 * packed_s,
            speedup=unpacked_s / max(1e-9, packed_s),
        )

    add_row(
        "pairwise-hamming",
        lambda: _unpacked_pairwise(rows),
        lambda: pairwise_hamming(pack_bits(rows)),
        lambda: np.array_equal(pairwise_hamming(pack_bits(rows)), _unpacked_pairwise(rows)),
    )

    def packed_cross():
        return packed_hamming(
            pack_bits(rows).data[:, None, :], pack_bits(candidates).data[None, :, :]
        )

    add_row(
        "cross-hamming (select)",
        lambda: _unpacked_cross(rows, candidates),
        packed_cross,
        lambda: np.array_equal(packed_cross(), _unpacked_cross(rows, candidates)),
    )

    def unique_equal() -> bool:
        ref_rows, ref_counts = np.unique(published, axis=0, return_counts=True)
        got_rows, got_counts = packed_unique_rows(published)
        return np.array_equal(ref_rows, got_rows) and np.array_equal(
            ref_counts, got_counts
        )

    add_row(
        "unique-rows (popular_vectors)",
        lambda: np.unique(published, axis=0, return_counts=True),
        lambda: packed_unique_rows(published),
        unique_equal,
    )

    # End-to-end clustering phase at n=1000: packed neighbour graph plus the
    # incremental greedy clustering, against the unpacked Gram-matrix graph.
    threshold = float(width) / 8.0
    min_cluster_size = max(2, n // 8)

    def unpacked_clustering():
        graph = _unpacked_pairwise(rows) <= threshold
        np.fill_diagonal(graph, False)
        return cluster_players(graph, min_cluster_size=min_cluster_size)

    def packed_clustering():
        graph = build_neighbor_graph(rows, threshold)
        return cluster_players(graph, min_cluster_size=min_cluster_size)

    add_row(
        "neighbor-graph + clustering",
        unpacked_clustering,
        packed_clustering,
        lambda: np.array_equal(
            unpacked_clustering().assignment, packed_clustering().assignment
        ),
    )
    return table


def test_e13_kernels(benchmark, report_table):
    table = report_table(benchmark, kernel_microbenchmark, "e13_kernels")
    assert len(table.rows) == 4
    for row in table.rows:
        assert row["packed_ms"] > 0.0
