"""E2 — ZeroRadius on identical-preference clusters (Theorem 4)."""

from repro.analysis.experiments import zero_radius_experiment


def test_e02_zero_radius(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: zero_radius_experiment(
            n_players=512, n_objects=512, budgets=(4, 8, 16), seed=1
        ),
        "e02_zero_radius",
    )
    # Theorem 4 shape: near-exact recovery at a probe cost far below
    # probing every object.
    assert max(table.column("mean_error")) <= 1.0
    assert max(table.column("max_probe_requests")) < 512
