"""E7 — The Claim-2 lower-bound distribution."""

from repro.analysis.lower_bound import lower_bound_experiment


def test_e07_lower_bound(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: lower_bound_experiment(
            n_players=256, n_objects=256, budget=8, diameter=64, trials=5, seed=1
        ),
        "e07_lower_bound",
    )
    rows = {row["algorithm"]: row for row in table.rows}
    # Strictly-B-budget algorithms cannot beat D/4 on the special set.
    assert rows["solo-probing"]["mean_error_on_S"] >= rows["solo-probing"]["claim2_bound_D_over_4"]
    assert (
        rows["random-guessing"]["mean_error_on_S"]
        >= rows["random-guessing"]["claim2_bound_D_over_4"]
    )
    # The augmented-budget protocol keeps its total error O(D) even on the
    # worst-case distribution.
    assert rows["calculate-preferences"]["mean_total_error"] <= 2 * 64
