"""E3 — SmallRadius error vs promised diameter (Theorem 5)."""

from repro.analysis.experiments import small_radius_experiment


def test_e03_small_radius(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: small_radius_experiment(
            n_players=256, n_objects=256, budget=8, diameters=(2, 4, 8, 16), seed=1
        ),
        "e03_small_radius",
    )
    for row in table.rows:
        assert row["max_error"] <= row["error_bound_5D"] + 4
