"""E6 — Honest players' error as the dishonest coalition grows (Lemma 13 / Theorem 14)."""

from repro.analysis.experiments import dishonest_sweep_experiment
from repro.analysis.runner import default_worker_count


def test_e06_dishonest_strange_objects(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: dishonest_sweep_experiment(
            n_players=256,
            n_objects=512,
            budget=4,
            diameter=64,
            fractions=(0.0, 0.5, 1.0),
            strategy="strange",
            robust_iterations=2,
            seed=1,
            n_workers=default_worker_count(),
        ),
        "e06_dishonest_strange",
    )
    # Theorem 14 shape: the coalition (up to n/(3B)) causes no asymptotic loss
    # of accuracy — error stays O(D) across the sweep.
    for row in table.rows:
        assert row["robust_max_error"] <= 3 * row["planted_D"]


def test_e06_dishonest_hijack(benchmark, report_table):
    table = report_table(
        benchmark,
        lambda: dishonest_sweep_experiment(
            n_players=256,
            n_objects=512,
            budget=4,
            diameter=64,
            fractions=(0.0, 1.0),
            strategy="hijack",
            robust_iterations=2,
            seed=2,
            n_workers=default_worker_count(),
        ),
        "e06_dishonest_hijack",
    )
    for row in table.rows:
        assert row["robust_max_error"] <= 3 * row["planted_D"]
