"""E14 — serving throughput of the async preference server.

Not a paper experiment: this table records the protocol-as-a-service layer's
request throughput and latency so the serving trajectory is tracked next to
the protocol benchmarks.  An in-process server (TCP on a loopback port)
takes a fan-out of concurrent sessions, each driven by its own
:class:`~repro.serve.client.AsyncPreferenceClient`; every session issues a
stream of interactive ``probe`` ops (the cheapest protocol mutation, so the
numbers measure the serving stack rather than the protocol), and one row
exercises the full-run path end to end.

The ``probe-stream-durable`` rows repeat the probe ladder against a second
server running with ``state_dir`` set, so every probe is write-ahead
journaled (append + flush on the session worker) before it executes — the
durability cost of crash-recoverable sessions, measured as the rps delta
against the ephemeral rows at the same fan-out.

Columns: ``kind`` (probe-stream / probe-stream-durable / full-run),
``sessions`` (concurrent sessions), ``requests`` (total completed),
``wall_s``, ``rps`` (requests/second across all sessions) and the
per-request ``p50_ms`` / ``p99_ms`` latencies.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time

from repro.analysis.reporting import (
    ExperimentTable,
    percentile,
    render_markdown,
    render_text,
)
from repro.serve.client import AsyncPreferenceClient
from repro.serve.server import PreferenceServer

#: Session fan-outs; the acceptance gate wants >= 8 concurrent sessions.
SESSION_COUNTS: tuple[int, ...] = (1, 2, 4, 8)
REQUESTS_PER_SESSION = 50
SCENARIO = "zero-radius-exact"


async def _drive_session(
    host: str, port: int, seed: int, requests: int, latencies: list[float]
) -> None:
    """One simulated tenant: open a session, stream probe requests."""
    client = await AsyncPreferenceClient.connect(host=host, port=port)
    try:
        session = await client.open_session(SCENARIO, seed=seed)
        for index in range(requests):
            objects = [(index + offset) % 96 for offset in range(4)]
            start = time.perf_counter()
            await client.probe(session, player=index % 96, objects=objects)
            latencies.append(time.perf_counter() - start)
        await client.call("close", session=session)
    finally:
        await client.close()


async def _probe_stream(
    host: str, port: int, sessions: int, requests: int
) -> tuple[float, list[float]]:
    latencies: list[float] = []
    start = time.perf_counter()
    await asyncio.gather(*(
        _drive_session(host, port, seed, requests, latencies)
        for seed in range(sessions)
    ))
    return time.perf_counter() - start, latencies


async def _full_run(
    host: str, port: int, sessions: int, trials: int
) -> tuple[float, list[float]]:
    """Each session runs a small batch concurrently (the heavy op path)."""

    async def one(seed: int, latencies: list[float]) -> None:
        client = await AsyncPreferenceClient.connect(host=host, port=port)
        try:
            session = await client.open_session(SCENARIO, seed=seed)
            start = time.perf_counter()
            await client.run(session, trials=trials, workers=1)
            latencies.append(time.perf_counter() - start)
            await client.call("close", session=session)
        finally:
            await client.close()

    latencies: list[float] = []
    start = time.perf_counter()
    await asyncio.gather(*(one(seed, latencies) for seed in range(sessions)))
    return time.perf_counter() - start, latencies


def serving_benchmark(
    session_counts: tuple[int, ...] = SESSION_COUNTS,
    requests_per_session: int = REQUESTS_PER_SESSION,
    run_trials_per_session: int = 2,
) -> ExperimentTable:
    """Throughput/latency table over a ladder of concurrent session counts."""
    table = ExperimentTable(
        experiment_id="E14",
        title="Preference-server throughput: concurrent sessions over loopback TCP",
        columns=[
            "kind", "sessions", "requests", "wall_s", "rps", "p50_ms", "p99_ms",
        ],
        notes=[
            f"scenario {SCENARIO!r}; probe ops carry 4 objects each; "
            "latency measured per request at the client.",
            "server in-process (loopback TCP, one asyncio loop, one worker "
            "thread per session).",
            "probe-stream-durable: same ladder with per-op write-ahead "
            "journaling (--state-dir); the rps delta vs probe-stream is "
            "the durability cost.",
        ],
    )
    with tempfile.TemporaryDirectory(prefix="e14-state-") as state_dir:
        for kind, state in (
            ("probe-stream", None),
            ("probe-stream-durable", state_dir),
        ):
            server = PreferenceServer(
                port=0, publish_interval_s=0.5, state_dir=state
            )
            thread = threading.Thread(target=server.run, daemon=True)
            thread.start()
            if not server.ready.wait(timeout=30):
                raise RuntimeError("preference server failed to start")
            _, host, port = server.address
            try:
                for sessions in session_counts:
                    wall, latencies = asyncio.run(
                        _probe_stream(host, port, sessions, requests_per_session)
                    )
                    table.add_row(
                        kind=kind,
                        sessions=sessions,
                        requests=len(latencies),
                        wall_s=round(wall, 4),
                        rps=round(len(latencies) / wall, 1),
                        p50_ms=round(percentile(latencies, 50) * 1e3, 3),
                        p99_ms=round(percentile(latencies, 99) * 1e3, 3),
                    )
                if state is None:
                    max_sessions = max(session_counts)
                    wall, latencies = asyncio.run(
                        _full_run(host, port, max_sessions, run_trials_per_session)
                    )
                    table.add_row(
                        kind="full-run",
                        sessions=max_sessions,
                        requests=len(latencies),
                        wall_s=round(wall, 4),
                        rps=round(len(latencies) / wall, 2),
                        p50_ms=round(percentile(latencies, 50) * 1e3, 1),
                        p99_ms=round(percentile(latencies, 99) * 1e3, 1),
                    )
            finally:
                server.request_shutdown()
                thread.join(timeout=30)
    return table


def test_e14_serving(benchmark, report_table):
    table = report_table(benchmark, serving_benchmark, "e14_serving")
    assert max(table.column("sessions")) >= 8
    for row in table.rows:
        assert row["rps"] > 0.0
        assert row["p50_ms"] <= row["p99_ms"]
    stream_rows = [r for r in table.rows if r["kind"] == "probe-stream"]
    assert len(stream_rows) == len(SESSION_COUNTS)
    durable_rows = [r for r in table.rows if r["kind"] == "probe-stream-durable"]
    assert len(durable_rows) == len(SESSION_COUNTS)
    assert any(r["kind"] == "full-run" for r in table.rows)


def main() -> None:
    from conftest import RESULTS_DIR, write_result_json

    start = time.perf_counter()
    table = serving_benchmark()
    wall = time.perf_counter() - start
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = render_text(table)
    (RESULTS_DIR / "e14_serving.txt").write_text(text + "\n")
    (RESULTS_DIR / "e14_serving.md").write_text(render_markdown(table) + "\n")
    path = write_result_json("e14_serving", table, wall)
    print(text)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
