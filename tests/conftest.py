"""Shared fixtures for the test suite.

Instances are deliberately small (tens of players/objects) so the whole
suite runs in seconds; the benchmark harness covers paper-scale settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ProtocolConstants,
    make_context,
    planted_clusters_instance,
    zero_radius_instance,
)


@pytest.fixture
def constants() -> ProtocolConstants:
    """The practical constant profile used throughout the tests."""
    return ProtocolConstants.practical()


@pytest.fixture
def zero_radius_small():
    """A small identical-preference-cluster instance (Theorem 4 setting)."""
    return zero_radius_instance(n_players=48, n_objects=48, n_clusters=4, seed=7)


@pytest.fixture
def planted_small():
    """A small bounded-diameter-cluster instance (general setting)."""
    return planted_clusters_instance(
        n_players=48, n_objects=96, n_clusters=4, diameter=8, seed=11
    )


@pytest.fixture
def ctx_zero_radius(zero_radius_small, constants):
    """Execution context over the identical-cluster instance."""
    return make_context(zero_radius_small, budget=4, constants=constants, seed=3)


@pytest.fixture
def ctx_planted(planted_small, constants):
    """Execution context over the bounded-diameter instance."""
    return make_context(planted_small, budget=4, constants=constants, seed=5)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for ad-hoc randomness in tests."""
    return np.random.default_rng(2024)
