"""Tests for the core protocol's components: sampling, clustering, work sharing."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import make_context, planted_clusters_instance, zero_radius_instance
from repro.core.clustering import Clustering, build_neighbor_graph, cluster_players
from repro.core.sampling import (
    expected_sample_size,
    sample_disagreements,
    select_sample_set,
)
from repro.core.work_sharing import cluster_majority_vote, share_work
from repro.errors import ProtocolError
from repro.players.adversaries import InvertingStrategy
from repro.preferences.metrics import prediction_errors
from repro.simulation.randomness import AdversarialRandomness


class TestSampling:
    def test_sample_probability_decreases_with_diameter(self, ctx_planted):
        small_d = select_sample_set(ctx_planted, 4.0)
        assert small_d.size >= 1
        expected_large = expected_sample_size(ctx_planted, 1000.0)
        expected_small = expected_sample_size(ctx_planted, 4.0)
        assert expected_large < expected_small

    def test_invalid_diameter(self, ctx_planted):
        with pytest.raises(ProtocolError):
            select_sample_set(ctx_planted, 0.0)

    def test_adversarial_randomness_bias_flows_through(self, planted_small, constants):
        hidden = np.arange(10)
        ctx = make_context(
            planted_small,
            budget=4,
            constants=constants,
            randomness=AdversarialRandomness(0, hidden_objects=hidden),
            seed=0,
        )
        sample = select_sample_set(ctx, 4.0)
        assert not np.isin(sample, hidden).any()

    def test_sample_disagreements_lemma6_shape(self, planted_small):
        # Close (same-cluster) pairs must disagree on fewer sampled objects
        # than far (cross-cluster) pairs, on average.
        sample = np.arange(planted_small.n_objects)  # full sample: exact distances
        disagreements = sample_disagreements(planted_small.preferences, sample)
        same = planted_small.cluster_of[:, None] == planted_small.cluster_of[None, :]
        np.fill_diagonal(same, False)
        different = ~same
        np.fill_diagonal(different, False)
        assert disagreements[same].mean() < disagreements[different].mean()

    def test_sample_disagreements_requires_nonempty_sample(self, planted_small):
        with pytest.raises(ProtocolError):
            sample_disagreements(planted_small.preferences, np.asarray([], dtype=np.int64))


class TestNeighborGraph:
    def test_edges_follow_threshold(self):
        estimates = np.asarray(
            [[0, 0, 0, 0], [0, 0, 0, 1], [1, 1, 1, 1]], dtype=np.uint8
        )
        adjacency = build_neighbor_graph(estimates, threshold=1)
        assert adjacency[0, 1] and adjacency[1, 0]
        assert not adjacency[0, 2]
        assert not adjacency.diagonal().any()

    def test_rejects_non_matrix(self):
        with pytest.raises(ProtocolError):
            build_neighbor_graph(np.zeros(4), threshold=1)


class TestClusterPlayers:
    def _block_adjacency(self, sizes):
        n = sum(sizes)
        adjacency = np.zeros((n, n), dtype=bool)
        start = 0
        for size in sizes:
            adjacency[start : start + size, start : start + size] = True
            start += size
        np.fill_diagonal(adjacency, False)
        return adjacency

    def test_recovers_planted_blocks(self):
        adjacency = self._block_adjacency([8, 8, 8])
        clustering = cluster_players(adjacency, min_cluster_size=8)
        assert clustering.n_clusters == 3
        assert sorted(clustering.sizes().tolist()) == [8, 8, 8]
        # Every pair in the same cluster must indeed be in the same block.
        for cluster in clustering.clusters:
            assert np.ptp(cluster // 8) == 0

    def test_every_player_assigned_exactly_once(self):
        adjacency = self._block_adjacency([10, 6])
        clustering = cluster_players(adjacency, min_cluster_size=6)
        counted = np.concatenate(clustering.clusters)
        assert np.sort(counted).tolist() == list(range(16))
        assert (clustering.assignment >= 0).all()

    def test_leftovers_attach_to_a_neighbouring_cluster(self):
        adjacency = self._block_adjacency([8, 3])
        # The 3-block cannot seed (needs degree >= 7); its members must attach
        # somewhere so the clustering is total.
        adjacency[8, 0] = adjacency[0, 8] = True  # one bridge edge
        clustering = cluster_players(adjacency, min_cluster_size=8)
        assert (clustering.assignment >= 0).all()
        assert clustering.n_clusters == 1
        assert clustering.clusters[0].size == 11

    def test_degenerate_no_seed_gives_single_cluster(self):
        adjacency = np.zeros((5, 5), dtype=bool)
        clustering = cluster_players(adjacency, min_cluster_size=4)
        assert clustering.n_clusters == 1
        assert clustering.clusters[0].size == 5

    def test_seed_degree_override_allows_depleted_clusters(self):
        adjacency = self._block_adjacency([8, 6])
        strict = cluster_players(adjacency, min_cluster_size=8)
        relaxed = cluster_players(adjacency, min_cluster_size=8, seed_degree=5)
        assert strict.n_clusters == 1 or strict.sizes().max() >= 8
        assert relaxed.n_clusters == 2

    def test_invalid_inputs(self):
        with pytest.raises(ProtocolError):
            cluster_players(np.zeros((2, 3), dtype=bool), 1)
        with pytest.raises(ProtocolError):
            cluster_players(np.zeros((2, 2), dtype=bool), 0)


class TestWorkSharing:
    def test_cluster_majority_matches_cluster_consensus(self, constants):
        instance = zero_radius_instance(n_players=32, n_objects=40, n_clusters=2, seed=0)
        ctx = make_context(instance, budget=4, constants=constants, seed=0)
        members = instance.cluster_members(0)
        vector = cluster_majority_vote(ctx, members, redundancy=5, channel="t")
        np.testing.assert_array_equal(vector, instance.preferences[members[0]])

    def test_share_work_assigns_every_player(self, constants):
        instance = zero_radius_instance(n_players=32, n_objects=40, n_clusters=4, seed=1)
        ctx = make_context(instance, budget=4, constants=constants, seed=1)
        clustering = Clustering(
            assignment=instance.cluster_of.copy(),
            clusters=[instance.cluster_members(c) for c in range(4)],
        )
        predictions = share_work(ctx, clustering)
        errors = prediction_errors(predictions, instance.preferences)
        assert errors.max() == 0

    def test_probe_load_is_shared(self, constants):
        instance = zero_radius_instance(n_players=64, n_objects=64, n_clusters=2, seed=2)
        ctx = make_context(instance, budget=4, constants=constants, seed=2)
        clustering = Clustering(
            assignment=instance.cluster_of.copy(),
            clusters=[instance.cluster_members(c) for c in range(2)],
        )
        share_work(ctx, clustering)
        redundancy = constants.vote_redundancy(64)
        expected_per_player = 64 * redundancy / 32  # objects * redundancy / cluster size
        assert ctx.oracle.max_probes() <= 4 * expected_per_player
        assert ctx.oracle.max_probes() < 64

    def test_dishonest_minority_outvoted(self, constants):
        instance = zero_radius_instance(n_players=48, n_objects=48, n_clusters=2, seed=3)
        members = instance.cluster_members(0)
        liars = members[:3]
        strategies = {int(p): InvertingStrategy() for p in liars}
        ctx = make_context(instance, budget=4, constants=constants, strategies=strategies, seed=3)
        vector = cluster_majority_vote(ctx, members, redundancy=9, channel="t")
        errors = int((vector != instance.preferences[members[-1]]).sum())
        assert errors <= 3  # a 1/8 dishonest minority flips almost nothing

    def test_invalid_inputs(self, ctx_planted):
        with pytest.raises(ProtocolError):
            cluster_majority_vote(ctx_planted, np.asarray([], dtype=np.int64), 3, "t")
        with pytest.raises(ProtocolError):
            cluster_majority_vote(ctx_planted, np.asarray([0]), 0, "t")
