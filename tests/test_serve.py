"""Tests for the preference server: protocol, sessions, streaming, limits.

The load-bearing properties from the serving acceptance criteria:

* **Bit-identity over the wire** — a session ``run`` op returns rows (and,
  with ``include_predictions``, prediction matrices) bit-identical to the
  offline engine's for the same ``(spec, seed)``, for any worker count, and
  regardless of interactive mutations made on the session beforehand.
* **Live state** — interactive ``probe`` ops answer from exactly the ground
  truth a batch execution of the pair would see (the session owns a
  :func:`~repro.scenarios.engine.prepare`\\ d context).
* **Typed degradation** — unknown sessions/ops, malformed parameters and
  library errors come back as typed error frames (stable ``code``), never
  dropped connections; per-session backpressure and idle eviction degrade
  the same way.
* **Streaming** — subscribers receive round-result, board-delta and
  telemetry events while work is in flight.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.analysis.runner import run_trials, spawn_seeds
from repro.scenarios.engine import execute, prepare, run_point
from repro.scenarios.registry import get_scenario
from repro.serve.client import (
    AsyncPreferenceClient,
    PreferenceClient,
    ServerSideError,
)
from repro.serve.protocol import (
    ServeError,
    decode_array,
    decode_frame,
    encode_array,
    encode_frame,
    error_body,
)
from repro.serve.server import PreferenceServer
from repro.serve.session import build_spec

SCENARIO = "zero-radius-exact"


@pytest.fixture(scope="module")
def server():
    """One in-process server on a loopback port, shared by the module."""
    srv = PreferenceServer(port=0, publish_interval_s=0.05)
    thread = threading.Thread(target=srv.run, daemon=True)
    thread.start()
    assert srv.ready.wait(timeout=30)
    yield srv
    srv.request_shutdown()
    thread.join(timeout=30)


@pytest.fixture()
def client(server):
    _, host, port = server.address
    with PreferenceClient(f"{host}:{port}") as c:
        yield c


class TestWireProtocol:
    def test_array_roundtrip_is_bit_exact(self):
        rng = np.random.default_rng(0)
        for array in (
            rng.integers(0, 2, size=(7, 13), dtype=np.uint8),
            rng.integers(-1000, 1000, size=40, dtype=np.int64),
            np.zeros((0, 5), dtype=np.uint8),
        ):
            decoded = decode_array(encode_array(array))
            assert decoded.dtype == array.dtype
            assert decoded.shape == array.shape
            assert np.array_equal(decoded, array)

    def test_frame_roundtrip_encodes_ndarrays(self):
        frame = {"id": 1, "ok": True, "result": {"m": np.eye(3, dtype=np.uint8)}}
        decoded = decode_frame(encode_frame(frame))
        assert np.array_equal(
            decode_array(decoded["result"]["m"]), np.eye(3, dtype=np.uint8)
        )

    def test_error_codes_are_stable(self):
        from repro.errors import BudgetExceededError, ConfigurationError

        assert error_body(BudgetExceededError(0, 4, 5))["code"] == "budget-exceeded"
        assert error_body(ConfigurationError("x"))["code"] == "configuration"
        assert error_body(ServeError("backpressure", "x"))["code"] == "backpressure"
        assert error_body(ValueError("x"))["code"] == "internal"


class TestSessions:
    def test_probe_answers_from_prepared_ground_truth(self, client):
        session = client.open_session(SCENARIO, seed=11)
        local = prepare(get_scenario(SCENARIO), 11)
        truth = local.context.oracle.ground_truth()
        result = client.probe(session, player=3, objects=[0, 5, 9])
        assert result["values"] == truth[3, [0, 5, 9]].tolist()
        assert result["probes_used"] == 3
        client.call("close", session=session)

    def test_run_rows_bit_identical_to_offline_engine(self, client):
        spec = get_scenario(SCENARIO)
        seeds = spawn_seeds(7, 3)
        offline = run_trials(
            run_point, [(spec, seeds[t], t) for t in range(3)], n_workers=1
        )
        session = client.open_session(SCENARIO, seed=7)
        # Interactive mutations must not perturb the batch-run results.
        client.probe(session, player=0, objects=[0, 1, 2, 3])
        client.report(session, "interactive", 0, [0, 1], [1, 0])
        result = client.run(session, trials=3, workers=2, include_predictions=True)
        assert len(result["rows"]) == 3
        for off, row in zip(offline, result["rows"]):
            stripped = {
                k: v for k, v in row.items()
                if k not in ("predictions", "active_players")
            }
            assert stripped == off
        for trial in range(3):
            reference = execute(spec, seeds[trial])
            assert np.array_equal(
                decode_array(result["rows"][trial]["predictions"]),
                reference.predictions,
            )
            assert np.array_equal(
                decode_array(result["rows"][trial]["active_players"]),
                reference.active_players,
            )
        client.call("close", session=session)

    def test_board_and_snapshot_reflect_interactive_posts(self, client):
        session = client.open_session(SCENARIO, seed=2)
        client.report(session, "notes", 4, [1, 2, 3], [1, 1, 0])
        board = client.call("board", session=session, channel="notes")
        assert board["stats"]["report_cells"] == 3
        majority = decode_array(board["majority"])
        assert majority[1] == 1 and majority[3] == 0
        snap = client.snapshot(session)
        assert snap["board"]["notes"]["report_cells"] == 3
        assert snap["telemetry"]["counters"]["board.posts"] >= 1
        client.call("close", session=session)

    def test_election_and_select_ops(self, client):
        session = client.open_session(SCENARIO, seed=4)
        election = client.call("election", session=session, seed=9)
        assert 0 <= election["leader"] < 96
        assert election["leader_is_honest"]  # all-honest scenario
        spec = get_scenario(SCENARIO)
        candidates = np.zeros((2, spec.population.n_objects), dtype=np.uint8)
        candidates[1, :] = 1
        select = client.call(
            "select", session=session,
            players=[0, 1, 2], candidates=encode_array(candidates),
        )
        assert len(select["choice"]) == 3
        assert decode_array(select["chosen_vectors"]).shape == (3, 96)
        client.call("close", session=session)

    def test_overrides_apply_dotted_paths(self, client):
        result = client.call(
            "open", scenario=SCENARIO, seed=1,
            overrides={"population.n_players": 32, "population.n_objects": 48},
        )
        assert result["n_players"] == 32 and result["n_objects"] == 48
        probe = client.probe(result["session"], player=31, objects=[47])
        assert probe["values"][0] in (0, 1)
        client.call("close", session=result["session"])

    def test_build_spec_round_trips_cli_vocabulary(self):
        spec = build_spec(SCENARIO, {"protocol.budget": 8})
        assert spec.protocol.budget == 8


class TestTypedErrors:
    def test_unknown_session_and_op(self, client):
        with pytest.raises(ServerSideError) as err:
            client.probe("phantom", player=0, objects=[0])
        assert err.value.code == "unknown-session"
        session = client.open_session(SCENARIO, seed=0)
        with pytest.raises(ServerSideError) as err:
            client.call("frobnicate", session=session)
        assert err.value.code == "unknown-op"
        client.call("close", session=session)

    def test_bad_request_and_library_errors_carry_codes(self, client):
        with pytest.raises(ServerSideError) as err:
            client.call("open", scenario="no-such-scenario")
        assert err.value.code == "configuration"
        session = client.open_session(SCENARIO, seed=0)
        with pytest.raises(ServerSideError) as err:
            client.call("probe", session=session, objects=[0])  # missing player
        assert err.value.code == "bad-request"
        with pytest.raises(ServerSideError) as err:
            client.call(
                "report", session=session, channel="c",
                player=0, objects=[10_000], values=[1],
            )
        assert err.value.code == "configuration"
        client.call("close", session=session)

    def test_closed_session_rejects_further_ops(self, client):
        session = client.open_session(SCENARIO, seed=0)
        client.call("close", session=session)
        with pytest.raises(ServerSideError) as err:
            client.probe(session, player=0, objects=[0])
        assert err.value.code == "unknown-session"


class TestBackpressureAndEviction:
    def test_backpressure_fails_fast_with_typed_error(self, server):
        _, host, port = server.address

        async def scenario() -> ServerSideError | None:
            async with await AsyncPreferenceClient.connect(
                host=host, port=port, shed_retries=0
            ) as client:
                session = await client.open_session(
                    SCENARIO, seed=3, max_pending=1
                )
                # Occupy the single worker with a multi-trial run, then pile
                # on concurrent probes until the queue cap trips.
                run_task = asyncio.create_task(
                    client.run(session, trials=8, workers=1)
                )
                await asyncio.sleep(0.05)  # let the run claim the slot
                shed = None
                try:
                    for _ in range(200):
                        try:
                            await client.probe(session, player=0, objects=[0])
                        except ServerSideError as error:
                            shed = error
                            break
                        await asyncio.sleep(0)
                finally:
                    await run_task
                    await client.call("close", session=session)
                return shed

        shed = asyncio.run(scenario())
        assert shed is not None
        assert shed.code == "overloaded"
        assert shed.retryable is True
        assert shed.retry_after_s is not None and shed.retry_after_s > 0

    def test_idle_sessions_are_evicted_with_event(self):
        srv = PreferenceServer(
            port=0, publish_interval_s=0.05, idle_timeout_s=0.2
        )
        thread = threading.Thread(target=srv.run, daemon=True)
        thread.start()
        assert srv.ready.wait(timeout=30)
        try:
            _, host, port = srv.address
            with PreferenceClient(f"{host}:{port}") as client:
                session = client.open_session(SCENARIO, seed=0)
                client.subscribe(session)
                event = client.wait_event("session-evicted", timeout_s=30)
                assert event["session"] == session
                assert event["reason"] == "idle"
                with pytest.raises(ServerSideError) as err:
                    client.probe(session, player=0, objects=[0])
                assert err.value.code == "unknown-session"
        finally:
            srv.request_shutdown()
            thread.join(timeout=30)


class TestStreaming:
    def test_subscriber_receives_round_board_and_telemetry_events(self, client):
        session = client.open_session(SCENARIO, seed=6)
        client.subscribe(session)
        result = client.run(session, trials=2, workers=1)
        assert len(result["rows"]) == 2
        rounds = [
            client.wait_event("round-result", timeout_s=30) for _ in range(2)
        ]
        assert sorted(r["row"]["trial"] for r in rounds) == [0, 1]
        for frame in rounds:
            assert frame["row"]["scenario"] == SCENARIO
        # Interactive posts show up as board deltas on the next tick.
        client.report(session, "stream", 1, [0], [1])
        delta = client.wait_event("board-delta", timeout_s=30)
        assert "channels" in delta
        telemetry = client.wait_event("telemetry", timeout_s=30)
        assert telemetry["metrics"]["counters"]
        client.call("close", session=session)

    def test_sessions_listing_tracks_open_sessions(self, client):
        session = client.open_session(SCENARIO, seed=1)
        listed = client.call("sessions")["sessions"]
        assert any(entry["session"] == session for entry in listed)
        client.call("close", session=session)
        listed = client.call("sessions")["sessions"]
        assert not any(entry["session"] == session for entry in listed)


class TestCliWiring:
    def test_serve_verbs_are_registered(self):
        from repro.scenarios.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        args = parser.parse_args(
            ["call", "ping", "--connect", "127.0.0.1:1"]
        )
        assert args.command == "call" and args.op == "ping"
        args = parser.parse_args(
            ["watch", SCENARIO, "--connect", "127.0.0.1:1", "--trials", "2"]
        )
        assert args.command == "watch" and args.trials == 2


class TestRunnerStreaming:
    def test_on_result_fires_in_submission_order(self):
        spec = get_scenario(SCENARIO)
        seeds = spawn_seeds(5, 3)
        points = [(spec, seeds[t], t) for t in range(3)]
        for workers in (1, 2):
            seen: list[int] = []
            rows = run_trials(
                run_point, points, n_workers=workers,
                on_result=lambda index, row: seen.append(index),
            )
            assert seen == [0, 1, 2]
            assert [row["trial"] for row in rows] == [0, 1, 2]

    def test_on_result_replays_journal_restored_points(self, tmp_path):
        spec = get_scenario(SCENARIO)
        seeds = spawn_seeds(5, 2)
        points = [(spec, seeds[t], t) for t in range(2)]
        journal = tmp_path / "journal.jsonl"
        run_trials(run_point, points, n_workers=1, journal=journal)
        seen: list[int] = []
        rows = run_trials(
            run_point, points, n_workers=1, journal=journal,
            on_result=lambda index, row: seen.append(index),
        )
        assert seen == [0, 1]
        assert [row["trial"] for row in rows] == [0, 1]
