"""Tests for the SmallRadius protocol (Theorem 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_context, planted_clusters_instance, zero_radius_instance
from repro.errors import ProtocolError
from repro.players.adversaries import RandomReportStrategy
from repro.preferences.metrics import prediction_errors
from repro.protocols.small_radius import small_radius


class TestSmallRadiusHonest:
    @pytest.mark.parametrize("diameter", [0, 2, 8])
    def test_error_within_5D_plus_slack(self, constants, diameter):
        instance = planted_clusters_instance(
            n_players=96, n_objects=96, n_clusters=4, diameter=diameter, seed=diameter
        )
        ctx = make_context(instance, budget=4, constants=constants, seed=diameter)
        estimates = small_radius(
            ctx, ctx.all_players(), ctx.all_objects(), diameter=diameter, budget=4
        )
        errors = prediction_errors(estimates, instance.preferences)
        # Theorem 5 promises 5D with high probability; allow a small additive
        # slack for the tiny test instances.
        assert errors.max() <= 5 * diameter + 3

    def test_zero_diameter_instance_recovered_exactly(self, constants):
        instance = zero_radius_instance(n_players=64, n_objects=64, n_clusters=4, seed=1)
        ctx = make_context(instance, budget=4, constants=constants, seed=1)
        estimates = small_radius(ctx, ctx.all_players(), ctx.all_objects(), diameter=0, budget=4)
        assert prediction_errors(estimates, instance.preferences).max() <= 1

    def test_subset_of_objects(self, constants):
        instance = planted_clusters_instance(48, 96, n_clusters=4, diameter=4, seed=2)
        ctx = make_context(instance, budget=4, constants=constants, seed=2)
        objects = np.arange(20, 60)
        estimates = small_radius(ctx, ctx.all_players(), objects, diameter=4, budget=4)
        assert estimates.shape == (48, objects.size)
        errors = (estimates != instance.preferences[:, objects]).sum(axis=1)
        assert errors.max() <= 5 * 4 + 3

    def test_empty_inputs(self, ctx_planted):
        out = small_radius(ctx_planted, np.asarray([], dtype=np.int64), np.arange(4), 2)
        assert out.shape == (0, 4)

    def test_invalid_parameters(self, ctx_planted):
        with pytest.raises(ProtocolError):
            small_radius(
                ctx_planted, ctx_planted.all_players(), ctx_planted.all_objects(), diameter=-1
            )
        with pytest.raises(ProtocolError):
            small_radius(
                ctx_planted,
                ctx_planted.all_players(),
                ctx_planted.all_objects(),
                diameter=2,
                budget=0,
            )

    def test_uses_default_budget_from_context(self, ctx_planted, planted_small):
        estimates = small_radius(
            ctx_planted, ctx_planted.all_players(), ctx_planted.all_objects(), diameter=8
        )
        errors = prediction_errors(estimates, planted_small.preferences)
        assert errors.max() <= 5 * 8 + 3


class TestSmallRadiusDishonest:
    def test_small_coalition_of_random_reporters(self, constants):
        instance = planted_clusters_instance(
            n_players=96, n_objects=96, n_clusters=4, diameter=6, seed=5
        )
        dishonest = list(range(0, 96, 16))  # 6 players < n/(3B) = 8
        strategies = {p: RandomReportStrategy(seed=p) for p in dishonest}
        ctx = make_context(instance, budget=4, constants=constants, strategies=strategies, seed=5)
        estimates = small_radius(ctx, ctx.all_players(), ctx.all_objects(), diameter=6, budget=4)
        honest_mask = np.ones(96, dtype=bool)
        honest_mask[dishonest] = False
        errors = prediction_errors(estimates, instance.preferences)[honest_mask]
        assert errors.max() <= 5 * 6 + 6
