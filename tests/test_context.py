"""Tests for the ProtocolContext plumbing and the make_context factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdversarialRandomness,
    ProtocolConstants,
    SharedRandomness,
    make_context,
    planted_clusters_instance,
)
from repro.errors import ConfigurationError
from repro.players.adversaries import InvertingStrategy
from repro.players.base import PlayerPool
from repro.protocols.context import ProtocolContext
from repro.simulation.board import BulletinBoard
from repro.simulation.oracle import ProbeOracle


@pytest.fixture
def instance():
    return planted_clusters_instance(16, 24, n_clusters=2, diameter=4, seed=0)


class TestMakeContext:
    def test_defaults(self, instance):
        ctx = make_context(instance, budget=4, seed=0)
        assert ctx.n_players == 16
        assert ctx.n_objects == 24
        assert ctx.budget == 4
        assert ctx.randomness.honest
        assert ctx.pool.n_dishonest == 0
        np.testing.assert_array_equal(ctx.all_players(), np.arange(16))
        np.testing.assert_array_equal(ctx.all_objects(), np.arange(24))

    def test_strategies_and_custom_randomness(self, instance):
        ctx = make_context(
            instance,
            budget=2,
            strategies={3: InvertingStrategy()},
            randomness=AdversarialRandomness(0),
            seed=1,
        )
        assert ctx.pool.n_dishonest == 1
        assert not ctx.randomness.honest

    def test_invalid_budget(self, instance):
        with pytest.raises(ConfigurationError):
            make_context(instance, budget=0)

    def test_mismatched_components_rejected(self, instance):
        oracle = ProbeOracle(instance.preferences)
        board = BulletinBoard(instance.n_players, instance.n_objects)
        wrong_pool = PlayerPool(instance.preferences[:8])
        with pytest.raises(ConfigurationError):
            ProtocolContext(
                oracle=oracle,
                board=board,
                pool=wrong_pool,
                randomness=SharedRandomness(0),
                constants=ProtocolConstants.practical(),
                budget=2,
            )


class TestContextOperations:
    def test_probe_and_report_block_truth_vs_reports(self, instance):
        ctx = make_context(instance, budget=2, strategies={0: InvertingStrategy()}, seed=2)
        players = np.asarray([0, 1])
        objects = np.asarray([0, 1, 2])
        true_block, reported = ctx.probe_and_report_block("chan", players, objects)
        np.testing.assert_array_equal(true_block, instance.preferences[np.ix_(players, objects)])
        np.testing.assert_array_equal(reported[1], true_block[1])       # honest row
        np.testing.assert_array_equal(reported[0], 1 - true_block[0])   # liar row
        # The board saw the *reported* values, not the truth.
        values, posted = ctx.board.report_matrix("chan")
        np.testing.assert_array_equal(values[0, objects], 1 - true_block[0])
        assert posted[np.ix_(players, objects)].all()
        # Probes were charged for both players.
        assert ctx.oracle.probes_used()[0] == 3
        assert ctx.oracle.probes_used()[1] == 3

    def test_publish_vectors_routes_through_strategies(self, instance):
        ctx = make_context(instance, budget=2, strategies={2: InvertingStrategy()}, seed=3)
        players = np.asarray([2, 3])
        objects = np.arange(5)
        vectors = np.zeros((2, 5), dtype=np.uint8)
        published = ctx.publish_vectors("z", players, objects, vectors)
        np.testing.assert_array_equal(published[0], np.ones(5))   # inverted
        np.testing.assert_array_equal(published[1], np.zeros(5))  # honest
        # Publishing consumes no probes.
        assert ctx.oracle.total_probes() == 0

    def test_with_randomness_swaps_only_randomness(self, instance):
        ctx = make_context(instance, budget=2, seed=4)
        replacement = AdversarialRandomness(1)
        swapped = ctx.with_randomness(replacement)
        assert swapped.randomness is replacement
        assert swapped.oracle is ctx.oracle
        assert swapped.board is ctx.board
        assert swapped.pool is ctx.pool
        assert ctx.randomness is not replacement
