"""Tests for the observability layer: spans, metrics, transport, CLI.

The load-bearing properties from the observability acceptance criteria:

* **Zero overhead when off** — with no collection installed, instrumented
  code never touches a :class:`Telemetry` (pinned by a call-count spy on
  every ``Telemetry`` method) and ``span()`` hands back one shared null
  context manager.
* **Worker-count invariance** — the merged :class:`TraceReport` of a traced
  ``run_trials`` is canonically identical for ``n_workers`` in {1, 2, 4}:
  same span structure, call counts, counters and histogram summaries.
* **Reconciliation** — the span tree's ``oracle.probes`` root counter (and
  the sum of per-span exclusive counts) equals the oracle's own independent
  accounting via :meth:`ProbeReport.from_oracle`, exactly.
* **Merge algebra** — span merge folds same-name nodes; histogram/timer
  combines are order-independent; ``canonical()`` ignores wall clocks.
* **Structured fault telemetry** — results-JSON carries a machine-parseable
  ``metrics`` block (fault counters incl. journal flushes, telemetry
  counters) alongside the free-text note.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.reporting import ExperimentTable, table_json_payload
from repro.analysis.runner import run_trials
from repro.faults import fault_metrics
from repro.obs import (
    Telemetry,
    TraceReport,
    active_telemetry,
    collecting,
)
from repro.obs import runtime as obs_runtime
from repro.obs.report import merge_span_dicts, render_span_tree
from repro.scenarios.cli import main as cli_main
from repro.scenarios.engine import execute
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import apply_override
from repro.simulation.metrics import ProbeReport
from repro.simulation.oracle import ProbeOracle


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _small_spec():
    """A shrunken noisy-oracle spec so traced integration tests stay fast."""
    spec = get_scenario("noisy-oracle")
    spec = apply_override(spec, "population.n_players", 24)
    spec = apply_override(spec, "population.n_objects", 64)
    return spec


def _traced_point(spec, seed: int, trial: int) -> dict:
    """Module-level trial fn (pickles into pool workers like the CLI's)."""
    run = execute(spec, seed)
    report = ProbeReport.from_oracle(run.context.oracle, spec.protocol.budget)
    return {
        "trial": trial,
        "total_probes": report.total_probes,
        "max_probes": report.max_probes,
    }


def _collect_run(n_workers: int, trials: int = 3):
    """Run the shrunken scenario under telemetry; return (report, rows)."""
    spec = _small_spec()
    points = [(spec, 1234 + trial, trial) for trial in range(trials)]
    with collecting() as telemetry:
        rows = run_trials(_traced_point, points, n_workers=n_workers)
    return telemetry.report(), rows


# ----------------------------------------------------------------------
# Disabled mode: strictly zero work
# ----------------------------------------------------------------------


class TestDisabledNoOp:
    def test_no_telemetry_method_runs_when_off(self, monkeypatch):
        calls = {"n": 0}

        def spy(name):
            original = getattr(Telemetry, name)

            def wrapper(self, *args, **kwargs):
                calls["n"] += 1
                return original(self, *args, **kwargs)

            return wrapper

        for name in ("enter", "exit", "add", "observe", "set_gauge", "time_kernel"):
            monkeypatch.setattr(Telemetry, name, spy(name))

        assert active_telemetry() is None
        with obs_runtime.span("stage"):
            obs_runtime.add("k", 5)
            obs_runtime.observe("h", 1.0)
            obs_runtime.set_gauge("g", 2.0)

        @obs_runtime.traced("fn")
        def doubler(x):
            return 2 * x

        kernel = obs_runtime.timed_kernel(lambda x: x + 1)
        assert doubler(21) == 42
        assert kernel(41) == 42
        assert calls["n"] == 0

    def test_span_is_shared_null_singleton_when_off(self):
        assert obs_runtime.span("a") is obs_runtime.span("b")

    def test_oracle_counts_probes_identically_with_and_without(self):
        truth = np.arange(12, dtype=np.int64).reshape(3, 4) % 2
        plain = ProbeOracle(truth)
        plain.probe_objects(0, np.arange(4))
        traced = ProbeOracle(truth)
        with collecting():
            traced.probe_objects(0, np.arange(4))
        np.testing.assert_array_equal(plain.probes_used(), traced.probes_used())
        np.testing.assert_array_equal(plain.requests_used(), traced.requests_used())


# ----------------------------------------------------------------------
# Span semantics
# ----------------------------------------------------------------------


class TestSpanTree:
    def test_counters_are_stack_walk_inclusive(self):
        with collecting() as telemetry:
            obs_runtime.add("work", 1)  # root-only
            with obs_runtime.span("outer"):
                obs_runtime.add("work", 10)
                with obs_runtime.span("inner"):
                    obs_runtime.add("work", 100)
        report = telemetry.report()
        root = report.spans
        outer = root["children"][0]
        inner = outer["children"][0]
        assert root["counts"]["work"] == 111
        assert outer["counts"]["work"] == 110
        assert inner["counts"]["work"] == 100
        assert report.exclusive_total("work") == 111

    def test_same_name_reentry_folds(self):
        with collecting() as telemetry:
            for _ in range(5):
                with obs_runtime.span("loop"):
                    obs_runtime.add("hits")
        root = telemetry.report().spans
        assert len(root["children"]) == 1
        assert root["children"][0]["n_calls"] == 5
        assert root["children"][0]["counts"]["hits"] == 5

    def test_recursion_nests_per_parent(self):
        @obs_runtime.traced("recurse")
        def descend(depth):
            obs_runtime.add("visits")
            if depth:
                descend(depth - 1)

        with collecting() as telemetry:
            descend(2)
        node = telemetry.report().spans["children"][0]
        assert node["n_calls"] == 1 and node["counts"]["visits"] == 3
        node = node["children"][0]
        assert node["n_calls"] == 1 and node["counts"]["visits"] == 2

    def test_nested_collecting_shadows_and_restores(self):
        with collecting() as outer:
            obs_runtime.add("k")
            with collecting() as inner:
                obs_runtime.add("k", 7)
            assert active_telemetry() is outer
        assert active_telemetry() is None
        assert outer.report().counters == {"k": 1}
        assert inner.report().counters == {"k": 7}

    def test_exit_order_misuse_raises(self):
        telemetry = Telemetry()
        a = telemetry.enter("a")
        telemetry.enter("b")
        with pytest.raises(RuntimeError, match="span exit order"):
            telemetry.exit(a, 0.0)

    def test_render_tree_connectors(self):
        with collecting() as telemetry:
            with obs_runtime.span("first"):
                with obs_runtime.span("leaf"):
                    pass
            with obs_runtime.span("second"):
                obs_runtime.add("n", 3)
        text = render_span_tree(telemetry.report().spans)
        lines = text.splitlines()
        assert lines[0].startswith("run")
        assert any(line.startswith("|- first") for line in lines)
        assert any("`- leaf" in line for line in lines)
        assert any(line.startswith("`- second") and "n=3" in line for line in lines)


# ----------------------------------------------------------------------
# Merge algebra and transport
# ----------------------------------------------------------------------


class TestMergeAlgebra:
    def _make_report(self, tag: str, n: int) -> TraceReport:
        with collecting() as telemetry:
            with obs_runtime.span(tag):
                obs_runtime.add("c", n)
                obs_runtime.observe("h", float(n))
                telemetry.time_kernel("perf.k", 0.1)
        return telemetry.report()

    def test_merged_is_order_independent_canonically(self):
        reports = [self._make_report(tag, n) for tag, n in
                   [("a", 1), ("b", 2), ("a", 4)]]
        forward = TraceReport.merged(reports).canonical()
        backward = TraceReport.merged(reversed(reports)).canonical()
        assert forward == backward
        assert forward["spans"]["counts"]["c"] == 7
        # same-name workers folded into one child
        assert [c["name"] for c in forward["spans"]["children"]] == ["a", "b"]
        assert forward["histograms"]["h"] == {
            "count": 3, "total": 7.0, "min": 1.0, "max": 4.0,
        }
        assert forward["timer_calls"]["perf.k"] == 3

    def test_canonical_ignores_wall_time(self):
        first = self._make_report("a", 1)
        second = self._make_report("a", 1)
        second.spans["wall_s"] += 99.0
        second.timers["perf.k"]["total_s"] += 99.0
        assert first.canonical() == second.canonical()

    def test_absorb_matches_inline_execution(self):
        # worker-style report produced in its own window...
        with collecting() as worker:
            with obs_runtime.span("stage"):
                obs_runtime.add("c", 3)
                obs_runtime.observe("h", 2.0)
        # ...absorbed by a parent equals the same work done inline.
        parent = Telemetry()
        parent.absorb(worker.report())
        inline = Telemetry()
        inline.add("c", 0)  # counters key-present in both
        with collecting(inline):
            with obs_runtime.span("stage"):
                obs_runtime.add("c", 3)
                obs_runtime.observe("h", 2.0)
        assert parent.report().canonical() == inline.report().canonical()

    def test_report_is_picklable_snapshot(self):
        import pickle

        report = self._make_report("a", 2)
        clone = pickle.loads(pickle.dumps(report))
        assert clone.canonical() == report.canonical()
        assert clone.as_payload()["counters"] == {"c": 2}

    def test_merge_span_dicts_appends_unseen_children(self):
        into = {"name": "run", "n_calls": 0, "wall_s": 0.0, "counts": {},
                "children": []}
        other = {"name": "run", "n_calls": 1, "wall_s": 0.5,
                 "counts": {"c": 2},
                 "children": [{"name": "x", "n_calls": 1, "wall_s": 0.1,
                               "counts": {}, "children": []}]}
        merge_span_dicts(into, other)
        merge_span_dicts(into, other)
        assert into["n_calls"] == 2
        assert into["counts"] == {"c": 4}
        assert [c["n_calls"] for c in into["children"]] == [2]


# ----------------------------------------------------------------------
# Worker-count invariance and reconciliation (integration)
# ----------------------------------------------------------------------


class TestWorkerInvariance:
    def test_merged_report_identical_across_worker_counts(self):
        reference, ref_rows = _collect_run(n_workers=1)
        for n_workers in (2, 4):
            report, rows = _collect_run(n_workers=n_workers)
            assert rows == ref_rows
            assert report.canonical() == reference.canonical()

    def test_span_probes_reconcile_with_probe_report(self):
        report, rows = _collect_run(n_workers=2)
        oracle_total = sum(row["total_probes"] for row in rows)
        assert report.counters["oracle.probes"] == oracle_total
        assert report.exclusive_total("oracle.probes") == oracle_total

    def test_memo_identity_and_expected_spans(self):
        report, _ = _collect_run(n_workers=1, trials=1)
        counters = report.counters
        assert (
            counters["oracle.memo_hits"] + counters["oracle.memo_misses"]
            == counters["oracle.requests"]
        )
        names = {child["name"] for child in report.spans["children"]}
        assert "scenario" in names
        scenario = next(
            c for c in report.spans["children"] if c["name"] == "scenario"
        )
        nested = {child["name"] for child in scenario["children"]}
        assert "calculate_preferences" in nested
        assert counters["board.posts"] > 0
        assert counters["board.packed_bytes"] > 0
        assert any(name.startswith("perf.") for name in report.timers)


# ----------------------------------------------------------------------
# Oracle memo counters
# ----------------------------------------------------------------------


class TestOracleMemoCounters:
    def test_hits_misses_and_rate(self):
        truth = (np.arange(20).reshape(4, 5) % 2).astype(np.int64)
        oracle = ProbeOracle(truth)
        assert oracle.memo_hits() == 0 and oracle.memo_misses() == 0
        assert oracle.memo_hit_rate() == 0.0
        oracle.probe_objects(0, np.arange(5))
        oracle.probe_objects(0, np.arange(5))  # all repeats -> memoised
        assert oracle.memo_misses() == 5
        assert oracle.memo_hits() == 5
        assert oracle.memo_hit_rate() == pytest.approx(0.5)

    def test_repr_reports_memo_counters(self):
        oracle = ProbeOracle(np.zeros((2, 3), dtype=np.int64))
        oracle.probe_objects(1, np.array([0, 0, 2]))
        text = repr(oracle)
        assert "memo_hits=1" in text
        assert "memo_hit_rate=0.333" in text


# ----------------------------------------------------------------------
# Structured metrics in results-JSON, fault telemetry, journal flushes
# ----------------------------------------------------------------------


def _flush_trial(value: int) -> int:
    return value * value


class TestStructuredMetrics:
    def test_table_payload_carries_metrics_block(self):
        table = ExperimentTable(
            experiment_id="T", title="t", columns=["x"],
            metrics={"faults": {"injected": 1}, "telemetry": {"counters": {}}},
        )
        table.add_row(x=1)
        payload = table_json_payload("t", table, wall_time_s=0.0)
        assert payload["metrics"]["faults"] == {"injected": 1}
        # and it survives a JSON round trip
        assert json.loads(json.dumps(payload))["metrics"]["faults"]["injected"] == 1

    def test_fault_metrics_covers_engine_counters(self):
        stats = {"injected": 2, "retried": 3, "pool_restarts": 1,
                 "timeouts": 0, "journal_flushes": 7, "unrelated": 9}
        block = fault_metrics(stats)
        assert block == {"injected": 2, "retried": 3, "pool_restarts": 1,
                         "timeouts": 0, "journal_flushes": 7}
        assert fault_metrics({}) == {name: 0 for name in block}

    def test_run_trials_counts_journal_flushes(self, tmp_path):
        tasks = [(i,) for i in range(4)]
        stats: dict = {}
        results = run_trials(
            _flush_trial, tasks, n_workers=1,
            journal=tmp_path / "trials.jsonl", stats=stats,
        )
        assert results == [0, 1, 4, 9]
        assert stats["journal_flushes"] >= 4


# ----------------------------------------------------------------------
# CLI: python -m repro trace
# ----------------------------------------------------------------------


class TestTraceCli:
    def test_trace_json_payload_and_reconciliation(self, capsys):
        code = cli_main(
            ["trace", "honest-planted", "--trials", "1", "--seed", "7", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["reconciliation"]["match"] is True
        assert (
            payload["reconciliation"]["span_probes"]
            == payload["counters"]["oracle.probes"]
        )
        assert payload["spans"]["name"] == "run"
        assert payload["spans"]["children"], "span tree must have children"

    def test_trace_text_renders_tree(self, capsys):
        code = cli_main(["trace", "honest-planted", "--trials", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[TRACE]" in out
        assert "scenario" in out
        assert "reconciliation:" in out and "OK" in out


class TestMidRunSnapshot:
    """The publisher-facing reads: safe from another thread, mid-collection."""

    def test_snapshot_never_raises_under_concurrent_writes(self):
        import threading

        telemetry = Telemetry()
        stop = threading.Event()
        errors: list[BaseException] = []

        def hammer() -> None:
            try:
                i = 0
                while not stop.is_set():
                    node = telemetry.enter(f"stage{i % 5}")
                    telemetry.add("hits")
                    telemetry.observe("latency", float(i % 7))
                    telemetry.set_gauge("g", float(i))
                    telemetry.time_kernel("perf.k", 1e-6)
                    telemetry.exit(node, 0.0)
                    i += 1
            except BaseException as error:  # pragma: no cover - failure capture
                errors.append(error)

        writer = threading.Thread(target=hammer)
        writer.start()
        try:
            last = 0
            for _ in range(500):
                report = telemetry.snapshot()
                count = report.counters.get("hits", 0)
                # Per-node monotonicity: counters only ever grow.
                assert count >= last
                last = count
                assert report.spans["name"] == "run"
        finally:
            stop.set()
            writer.join()
        assert not errors, errors
        # After quiescence, snapshot and report agree exactly.
        assert telemetry.snapshot().canonical() == telemetry.report().canonical()

    def test_metrics_registry_snapshot_copies_families(self):
        telemetry = Telemetry()
        telemetry.set_gauge("g", 1.0)
        telemetry.observe("h", 2.0)
        telemetry.time_kernel("perf.k", 0.5)
        gauges, histograms, timers = telemetry.metrics.snapshot()
        gauges["g"] = 99.0
        histograms["h"]["count"] = 99
        timers["perf.k"]["calls"] = 99
        assert telemetry.metrics.gauges["g"] == 1.0
        assert telemetry.metrics.histograms["h"]["count"] == 1
        assert telemetry.metrics.timers["perf.k"]["calls"] == 1

    def test_collecting_is_thread_local(self):
        import threading

        barrier = threading.Barrier(2)
        seen: dict[str, tuple[Telemetry, int]] = {}

        def worker(name: str) -> None:
            with collecting() as telemetry:
                barrier.wait()
                obs_runtime.add(name)
                seen[name] = (telemetry, telemetry.root.counts.get(name, 0))

        threads = [
            threading.Thread(target=worker, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen["a"][0] is not seen["b"][0]
        # Each thread's increments landed only in its own collection.
        assert seen["a"][1] == 1 and seen["b"][1] == 1
        assert "b" not in seen["a"][0].root.counts
        assert active_telemetry() is None
