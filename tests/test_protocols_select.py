"""Tests for Select / distance estimation and RSelect (Theorems 3, Select)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_context, zero_radius_instance
from repro.errors import ProtocolError
from repro.preferences.generators import planted_clusters_instance
from repro.protocols.rselect import rselect, rselect_collective
from repro.protocols.select import (
    estimate_distances,
    select_collective,
    select_per_player,
)


@pytest.fixture
def ctx(constants):
    instance = planted_clusters_instance(24, 64, n_clusters=3, diameter=4, seed=0)
    return make_context(instance, budget=4, constants=constants, seed=0)


def _candidates_for(ctx, player: int, distances: list[int], rng) -> np.ndarray:
    """Candidates at the given Hamming distances from a player's true vector."""
    truth = ctx.oracle.ground_truth()[player]
    out = np.empty((len(distances), truth.size), dtype=np.uint8)
    for row, distance in enumerate(distances):
        vector = truth.copy()
        if distance:
            flip = rng.choice(truth.size, size=distance, replace=False)
            vector[flip] ^= 1
        out[row] = vector
    return out


class TestEstimateDistances:
    def test_exact_when_sample_covers_everything(self, ctx, rng):
        candidates = _candidates_for(ctx, 0, [0, 5, 20], rng)
        distances, _ = estimate_distances(
            ctx, np.asarray([0]), ctx.all_objects(), candidates, sample_size=10**6
        )
        np.testing.assert_allclose(distances[0], [0, 5, 20])

    def test_scaling_applied_for_partial_sample(self, ctx, rng):
        candidates = _candidates_for(ctx, 0, [0, 32], rng)
        distances, positions = estimate_distances(
            ctx, np.asarray([0]), ctx.all_objects(), candidates, sample_size=16
        )
        assert positions.size == 16
        assert distances[0, 0] == 0.0
        assert distances[0, 1] > 0.0

    def test_validation(self, ctx):
        with pytest.raises(ProtocolError):
            estimate_distances(ctx, np.asarray([0]), ctx.all_objects(), np.zeros((0, 64)), 4)
        with pytest.raises(ProtocolError):
            estimate_distances(
                ctx, np.asarray([0]), ctx.all_objects(), np.zeros((1, 3), dtype=np.uint8), 4
            )
        with pytest.raises(ProtocolError):
            estimate_distances(
                ctx, np.asarray([0]), ctx.all_objects(), np.zeros((1, 64), dtype=np.uint8), 0
            )


class TestSelectCollective:
    def test_every_player_picks_its_own_cluster_vector(self, constants):
        instance = zero_radius_instance(24, 48, n_clusters=3, seed=1)
        ctx = make_context(instance, budget=4, constants=constants, seed=1)
        # Candidates: the three distinct cluster vectors.
        candidates = np.unique(instance.preferences, axis=0)
        choice, chosen = select_collective(
            ctx, ctx.all_players(), ctx.all_objects(), candidates, sample_size=48
        )
        np.testing.assert_array_equal(chosen, instance.preferences)
        assert choice.shape == (24,)

    def test_single_candidate_short_circuit(self, ctx):
        candidates = np.zeros((1, ctx.n_objects), dtype=np.uint8)
        before = ctx.oracle.total_probes()
        choice, chosen = select_collective(ctx, ctx.all_players(), ctx.all_objects(), candidates)
        assert (choice == 0).all()
        assert ctx.oracle.total_probes() == before  # no probes needed

    def test_charges_probes(self, ctx, rng):
        candidates = _candidates_for(ctx, 0, [0, 10], rng)
        select_collective(ctx, ctx.all_players(), ctx.all_objects(), candidates, sample_size=8)
        assert ctx.oracle.max_probes() >= 8 or ctx.n_objects < 8


class TestSelectPerPlayer:
    def test_picks_closest_per_player(self, ctx, rng):
        players = ctx.all_players()
        objects = ctx.all_objects()
        truth = ctx.oracle.ground_truth()
        k = 3
        stack = np.empty((players.size, k, objects.size), dtype=np.uint8)
        for i in range(players.size):
            stack[i] = _candidates_for(ctx, i, [0, 15, 30], rng)
        chosen = select_per_player(ctx, players, objects, stack, sample_size=objects.size)
        np.testing.assert_array_equal(chosen, truth)

    def test_single_candidate_short_circuit(self, ctx):
        players = ctx.all_players()
        stack = np.zeros((players.size, 1, ctx.n_objects), dtype=np.uint8)
        chosen = select_per_player(ctx, players, ctx.all_objects(), stack)
        assert chosen.shape == (players.size, ctx.n_objects)

    def test_shape_validation(self, ctx):
        with pytest.raises(ProtocolError):
            select_per_player(
                ctx, ctx.all_players(), ctx.all_objects(), np.zeros((2, 1, ctx.n_objects), dtype=np.uint8)
            )


class TestRSelect:
    def test_returns_best_candidate_exactly_when_present(self, ctx, rng):
        candidates = _candidates_for(ctx, 3, [0, 20, 25, 30], rng)
        order = rng.permutation(4)
        winner_index, winner = rselect(ctx, 3, ctx.all_objects(), candidates[order])
        np.testing.assert_array_equal(winner, ctx.oracle.ground_truth()[3])
        assert winner_index == int(np.flatnonzero(order == 0)[0])

    def test_near_best_when_no_exact_candidate(self, ctx, rng):
        candidates = _candidates_for(ctx, 2, [3, 25, 30], rng)
        _, winner = rselect(ctx, 2, ctx.all_objects(), candidates)
        error = int((winner != ctx.oracle.ground_truth()[2]).sum())
        assert error <= 3 * 4  # within a small constant of the best candidate

    def test_single_candidate(self, ctx):
        candidates = np.ones((1, ctx.n_objects), dtype=np.uint8)
        index, winner = rselect(ctx, 0, ctx.all_objects(), candidates)
        assert index == 0
        np.testing.assert_array_equal(winner, candidates[0])

    def test_identical_candidates_no_probes(self, ctx):
        candidates = np.zeros((3, ctx.n_objects), dtype=np.uint8)
        before = ctx.oracle.requests_used()[0]
        rselect(ctx, 0, ctx.all_objects(), candidates)
        assert ctx.oracle.requests_used()[0] == before

    def test_empty_candidates_rejected(self, ctx):
        with pytest.raises(ProtocolError):
            rselect(ctx, 0, ctx.all_objects(), np.zeros((0, ctx.n_objects), dtype=np.uint8))

    def test_probe_requests_scale_with_pairs(self, ctx, rng):
        candidates = _candidates_for(ctx, 1, [0, 20, 25, 30, 35, 40], rng)
        before = ctx.oracle.requests_used()[1]
        rselect(ctx, 1, ctx.all_objects(), candidates)
        spent = ctx.oracle.requests_used()[1] - before
        sample = ctx.constants.rselect_sample_size(ctx.n_players)
        assert spent <= (6 * 5 // 2) * sample


class TestRSelectCollective:
    def test_shapes_and_quality(self, ctx, rng):
        players = ctx.all_players()
        truth = ctx.oracle.ground_truth()
        stack = np.empty((players.size, 2, ctx.n_objects), dtype=np.uint8)
        for i in range(players.size):
            stack[i] = _candidates_for(ctx, i, [0, 30], rng)
        chosen = rselect_collective(ctx, players, ctx.all_objects(), stack)
        np.testing.assert_array_equal(chosen, truth)

    def test_shape_validation(self, ctx):
        with pytest.raises(ProtocolError):
            rselect_collective(
                ctx, ctx.all_players(), ctx.all_objects(), np.zeros((1, 2, ctx.n_objects), dtype=np.uint8)
            )
