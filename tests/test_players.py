"""Tests for the player pool and the adversary strategy library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.players.adversaries import (
    ClusterHijackStrategy,
    InvertingStrategy,
    PromotionStrategy,
    RandomReportStrategy,
    StrangeObjectStrategy,
    build_coalition,
)
from repro.players.base import PlayerPool
from repro.players.honest import HonestStrategy


@pytest.fixture
def truth(rng):
    return rng.integers(0, 2, size=(12, 20), dtype=np.uint8)


class TestPlayerPool:
    def test_default_all_honest(self, truth):
        pool = PlayerPool(truth)
        assert pool.n_dishonest == 0
        assert pool.honest_mask.all()

    def test_honest_reports_pass_through(self, truth):
        pool = PlayerPool(truth, strategies={0: HonestStrategy()})
        objects = np.asarray([1, 5, 7])
        values = truth[0, objects]
        np.testing.assert_array_equal(pool.reports_for(0, objects, values), values)
        assert pool.n_dishonest == 0  # HonestStrategy is not counted as dishonest

    def test_dishonest_detection(self, truth):
        pool = PlayerPool(truth, strategies={3: InvertingStrategy()})
        np.testing.assert_array_equal(pool.dishonest_players, [3])
        assert not pool.honest_mask[3]
        assert pool.honest_mask.sum() == truth.shape[0] - 1

    def test_reports_block_rewrites_only_dishonest_rows(self, truth):
        pool = PlayerPool(truth, strategies={2: InvertingStrategy()})
        players = np.asarray([1, 2, 3])
        objects = np.asarray([0, 4, 9])
        block = truth[np.ix_(players, objects)]
        reports = pool.reports_block(players, objects, block)
        np.testing.assert_array_equal(reports[0], block[0])
        np.testing.assert_array_equal(reports[1], 1 - block[1])
        np.testing.assert_array_equal(reports[2], block[2])

    def test_reports_pairs(self, truth):
        pool = PlayerPool(truth, strategies={0: InvertingStrategy()})
        players = np.asarray([0, 1, 0])
        objects = np.asarray([2, 2, 3])
        values = truth[players, objects]
        reports = pool.reports_pairs(players, objects, values)
        assert reports[0] == 1 - values[0]
        assert reports[1] == values[1]
        assert reports[2] == 1 - values[2]

    def test_invalid_strategy_assignment(self, truth):
        with pytest.raises(ConfigurationError):
            PlayerPool(truth, strategies={99: InvertingStrategy()})
        with pytest.raises(ConfigurationError):
            PlayerPool(truth, strategies={0: "not a strategy"})  # type: ignore[dict-item]

    def test_misaligned_reports_rejected(self, truth):
        pool = PlayerPool(truth)
        with pytest.raises(ConfigurationError):
            pool.reports_for(0, np.asarray([0, 1]), np.asarray([1]))


class TestStrategies:
    def test_random_reporter_binary_and_deterministic(self, truth):
        pool = PlayerPool(truth)
        strategy = RandomReportStrategy(seed=5)
        objects = np.arange(10)
        out = strategy.report(0, objects, truth[0, objects], pool)
        assert set(np.unique(out)).issubset({0, 1})
        again = RandomReportStrategy(seed=5).report(0, objects, truth[0, objects], pool)
        np.testing.assert_array_equal(out, again)

    def test_inverting(self, truth):
        pool = PlayerPool(truth)
        objects = np.arange(6)
        out = InvertingStrategy().report(1, objects, truth[1, objects], pool)
        np.testing.assert_array_equal(out, 1 - truth[1, objects])

    def test_promotion_targets_only(self, truth):
        pool = PlayerPool(truth)
        targets = np.asarray([2, 4])
        strategy = PromotionStrategy(targets, promoted_value=1)
        objects = np.asarray([1, 2, 3, 4])
        out = strategy.report(0, objects, truth[0, objects], pool)
        assert out[1] == 1 and out[3] == 1
        assert out[0] == truth[0, 1] and out[2] == truth[0, 3]

    def test_promotion_invalid_value(self):
        with pytest.raises(ConfigurationError):
            PromotionStrategy(np.asarray([0]), promoted_value=2)

    def test_hijack_mimics_victim_except_targets(self, truth):
        pool = PlayerPool(truth)
        victim = 5
        targets = np.asarray([0, 1])
        strategy = ClusterHijackStrategy(victim, targets)
        objects = np.asarray([0, 1, 2, 3])
        out = strategy.report(7, objects, truth[7, objects], pool)
        np.testing.assert_array_equal(out[2:], truth[victim, objects[2:]])
        np.testing.assert_array_equal(out[:2], 1 - truth[victim, objects[:2]])

    def test_strange_object_strategy_votes_majority_on_clear_objects(self, truth):
        # Build a cluster unanimous on object 0 and split on object 1.
        cluster_truth = truth.copy()
        cluster = np.arange(6)
        cluster_truth[cluster, 0] = 1
        cluster_truth[cluster[:3], 1] = 1
        cluster_truth[cluster[3:], 1] = 0
        pool = PlayerPool(cluster_truth)
        strategy = StrangeObjectStrategy(cluster)
        out = strategy.report(11, np.asarray([0, 1]), cluster_truth[11, [0, 1]], pool)
        assert out[0] == 1  # blends in on the unanimous object
        # On the perfectly split object it votes with (what it sees as) the minority.
        assert out[1] in (0, 1)

    def test_strange_requires_nonempty_cluster(self):
        with pytest.raises(ConfigurationError):
            StrangeObjectStrategy(np.asarray([], dtype=np.int64))


class TestBuildCoalition:
    def test_members_outside_victim_cluster(self, truth):
        victim = np.arange(4)
        strategies, plan = build_coalition(
            truth, coalition_size=3, strategy="hijack", victim_cluster=victim, seed=0
        )
        assert len(strategies) == 3
        assert not np.isin(plan.members, victim).any()
        assert plan.strategy_name == "hijack"
        assert plan.hidden_objects.size > 0

    def test_zero_coalition(self, truth):
        strategies, plan = build_coalition(truth, 0, strategy="random", seed=0)
        assert strategies == {}
        assert plan.members.size == 0

    def test_all_strategy_names(self, truth):
        for name in ("random", "invert", "promote", "smear", "hijack", "strange"):
            strategies, plan = build_coalition(truth, 2, strategy=name, seed=1)
            assert len(strategies) == 2
            assert plan.strategy_name == name

    def test_unknown_strategy_rejected(self, truth):
        with pytest.raises(ConfigurationError):
            build_coalition(truth, 1, strategy="bogus")  # type: ignore[arg-type]

    def test_oversized_coalition_rejected(self, truth):
        with pytest.raises(ConfigurationError):
            build_coalition(truth, truth.shape[0], strategy="random")
