"""Tests for leader election and the Byzantine-robust wrapper (§7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_context, planted_clusters_instance
from repro.core.calculate_preferences import efficient_diameter_schedule
from repro.core.robust import robust_calculate_preferences
from repro.errors import LeaderElectionError, ProtocolError
from repro.leader.feige import feige_leader_election
from repro.players.adversaries import build_coalition
from repro.preferences.metrics import prediction_errors


class TestFeigeLeaderElection:
    def test_all_honest_always_elects_honest(self):
        for seed in range(5):
            result = feige_leader_election(64, seed=seed)
            assert result.leader_is_honest
            assert 0 <= result.leader < 64

    def test_survivor_counts_decrease(self):
        result = feige_leader_election(128, seed=0)
        counts = result.survivors_per_round
        assert counts[0] == 128
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_dishonest_leader_flagged(self):
        # With everyone dishonest except one, the election usually picks a
        # dishonest leader and must say so.
        dishonest = np.arange(1, 32)
        results = [
            feige_leader_election(32, dishonest=dishonest, seed=s) for s in range(20)
        ]
        assert any(not r.leader_is_honest for r in results)
        for r in results:
            assert r.leader_is_honest == (r.leader == 0)

    def test_honest_leader_probability_reasonable_at_tolerance(self):
        # With a third of the players dishonest the election should still be
        # won by honest players most of the time.
        n, trials = 96, 60
        rng = np.random.default_rng(0)
        wins = 0
        for _ in range(trials):
            dishonest = rng.choice(n, size=n // 3, replace=False)
            result = feige_leader_election(n, dishonest=dishonest, seed=int(rng.integers(0, 2**62)))
            wins += int(result.leader_is_honest)
        assert wins / trials >= 0.5

    def test_single_player(self):
        result = feige_leader_election(1, seed=0)
        assert result.leader == 0

    def test_invalid_inputs(self):
        with pytest.raises(LeaderElectionError):
            feige_leader_election(0)
        with pytest.raises(LeaderElectionError):
            feige_leader_election(4, dishonest=np.asarray([9]))


class TestRobustWrapper:
    @pytest.fixture
    def setup(self, constants):
        n, m, budget, diameter = 128, 256, 4, 40
        instance = planted_clusters_instance(n, m, n_clusters=budget, diameter=diameter, seed=0)
        schedule = efficient_diameter_schedule(n, m, constants)
        return instance, budget, diameter, schedule, constants

    def test_no_coalition_matches_honest_quality(self, setup):
        instance, budget, diameter, schedule, constants = setup
        ctx = make_context(instance, budget=budget, constants=constants, seed=1)
        result = robust_calculate_preferences(ctx, iterations=2, diameters=schedule)
        errors = prediction_errors(result.predictions, instance.preferences)
        assert errors.max() <= 2 * diameter
        assert result.honest_leader_iterations == 2
        assert len(result.iteration_results) == 2
        assert len(result.elections) == 2

    @pytest.mark.parametrize("strategy", ["strange", "hijack", "random"])
    def test_honest_error_bounded_under_tolerated_coalition(self, setup, strategy):
        instance, budget, diameter, schedule, constants = setup
        n = instance.n_players
        tolerance = constants.max_dishonest(n, budget)
        victim = instance.cluster_members(0)
        strategies, plan = build_coalition(
            instance.preferences,
            tolerance,
            strategy=strategy,
            victim_cluster=victim,
            seed=3,
        )
        ctx = make_context(
            instance, budget=budget, constants=constants, strategies=strategies, seed=3
        )
        result = robust_calculate_preferences(
            ctx, coalition=plan, iterations=2, diameters=schedule
        )
        honest_mask = np.ones(n, dtype=bool)
        honest_mask[plan.members] = False
        errors = prediction_errors(result.predictions, instance.preferences)[honest_mask]
        # Theorem 14: the coalition causes no asymptotic loss — errors stay O(D).
        assert errors.max() <= 3 * diameter

    def test_invalid_iterations(self, setup):
        instance, budget, _, schedule, constants = setup
        ctx = make_context(instance, budget=budget, constants=constants, seed=4)
        with pytest.raises(ProtocolError):
            robust_calculate_preferences(ctx, iterations=0, diameters=schedule)

    def test_default_iterations_from_constants(self, setup):
        instance, budget, _, schedule, constants = setup
        ctx = make_context(instance, budget=budget, constants=constants, seed=5)
        result = robust_calculate_preferences(ctx, diameters=[float(schedule[0])])
        assert len(result.iteration_results) == constants.robust_iterations(instance.n_players)
