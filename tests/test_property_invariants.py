"""Property-based tests on cross-cutting protocol invariants.

These use hypothesis to exercise the simulator's bookkeeping invariants —
the properties every protocol run must satisfy regardless of instance,
adversary or constants:

* probe accounting: distinct probes never exceed requests, never exceed the
  number of objects, and never decrease;
* report integrity: honest rows pass through the player pool untouched and
  dishonest rows stay binary;
* protocol outputs are always binary matrices of the right shape;
* the clustering step always produces a partition of the players.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_context, planted_clusters_instance
from repro.core.clustering import build_neighbor_graph, cluster_players
from repro.players.adversaries import build_coalition
from repro.players.base import PlayerPool
from repro.protocols.small_radius import small_radius
from repro.protocols.zero_radius import zero_radius
from repro.simulation.config import ProtocolConstants
from repro.simulation.oracle import ProbeOracle


small_instances = st.builds(
    planted_clusters_instance,
    n_players=st.integers(8, 32),
    n_objects=st.integers(8, 48),
    n_clusters=st.integers(1, 4),
    diameter=st.integers(0, 6),
    seed=st.integers(0, 2**20),
)


@settings(max_examples=15, deadline=None)
@given(instance=small_instances, budget=st.integers(1, 6), seed=st.integers(0, 100))
def test_probe_accounting_invariants(instance, budget, seed):
    diameter = min(6, instance.n_objects)
    ctx = make_context(instance, budget=budget, seed=seed)
    small_radius(ctx, ctx.all_players(), ctx.all_objects(), diameter=diameter, budget=budget)
    probes = ctx.oracle.probes_used()
    requests = ctx.oracle.requests_used()
    assert (probes >= 0).all()
    assert (probes <= instance.n_objects).all()
    assert (requests >= probes).all()


@settings(max_examples=15, deadline=None)
@given(instance=small_instances, budget=st.integers(1, 6), seed=st.integers(0, 100))
def test_zero_radius_output_is_binary_and_well_shaped(instance, budget, seed):
    ctx = make_context(instance, budget=budget, seed=seed)
    estimates = zero_radius(ctx, ctx.all_players(), ctx.all_objects(), budget_prime=budget)
    assert estimates.shape == (instance.n_players, instance.n_objects)
    assert set(np.unique(estimates)).issubset({0, 1})


@settings(max_examples=15, deadline=None)
@given(
    instance=small_instances,
    coalition_size=st.integers(0, 4),
    strategy=st.sampled_from(["random", "invert", "promote", "hijack", "strange"]),
    seed=st.integers(0, 100),
)
def test_reports_stay_binary_and_honest_rows_untouched(instance, coalition_size, strategy, seed):
    coalition_size = min(coalition_size, instance.n_players - instance.n_players // 2 - 1)
    coalition_size = max(coalition_size, 0)
    victim = np.arange(instance.n_players // 2)
    strategies, plan = build_coalition(
        instance.preferences, coalition_size, strategy=strategy, victim_cluster=victim, seed=seed
    )
    pool = PlayerPool(instance.preferences, strategies=strategies, seed=seed)
    players = np.arange(instance.n_players)
    objects = np.arange(instance.n_objects)
    true_block = instance.preferences.copy()
    reports = pool.reports_block(players, objects, true_block)
    assert set(np.unique(reports)).issubset({0, 1})
    honest_rows = np.setdiff1d(players, plan.members)
    np.testing.assert_array_equal(reports[honest_rows], true_block[honest_rows])


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(4, 30),
    threshold=st.integers(0, 20),
    min_cluster_size=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
def test_clustering_is_always_a_partition(n, threshold, min_cluster_size, seed):
    rng = np.random.default_rng(seed)
    estimates = rng.integers(0, 2, size=(n, 24), dtype=np.uint8)
    adjacency = build_neighbor_graph(estimates, threshold=threshold)
    clustering = cluster_players(adjacency, min_cluster_size=min(min_cluster_size, n))
    members = np.concatenate(clustering.clusters)
    assert np.sort(members).tolist() == list(range(n))
    assert (clustering.assignment >= 0).all()
    for cluster_id, cluster in enumerate(clustering.clusters):
        assert (clustering.assignment[cluster] == cluster_id).all()


@settings(max_examples=15, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 10), st.integers(1, 20)),
    seed=st.integers(0, 2**16),
)
def test_oracle_memoisation_idempotent(shape, seed):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, 2, size=shape, dtype=np.uint8)
    oracle = ProbeOracle(truth)
    players = np.arange(shape[0])
    objects = np.arange(shape[1])
    first = oracle.probe_block(players, objects)
    counts_after_first = oracle.probes_used().copy()
    second = oracle.probe_block(players, objects)
    np.testing.assert_array_equal(first, second)
    np.testing.assert_array_equal(oracle.probes_used(), counts_after_first)
    np.testing.assert_array_equal(first, truth)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_practical_constants_keep_lemma7_threshold_ordering(seed):
    # For any n, the in-cluster bound must stay below the edge threshold and
    # the edge threshold below the expected far-pair disagreement at the
    # separation distance — the ordering Lemma 7 needs.
    rng = np.random.default_rng(seed)
    n = int(rng.integers(16, 4096))
    constants = ProtocolConstants.practical()
    close = constants.sample_agreement_bound(n)
    threshold = constants.edge_threshold(n)
    far = (
        constants.sample_prob_factor
        * constants.log_n(n)
        * constants.separation_factor
        / 2.0
    )
    assert close < threshold < far * 2.0
