"""Tests for preference-instance generators, including property-based checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.preferences.generators import (
    claim2_lower_bound_instance,
    heterogeneous_cluster_instance,
    mixture_model_instance,
    planted_clusters_instance,
    random_instance,
    zero_radius_instance,
)
from repro.preferences.metrics import set_diameter


class TestZeroRadius:
    def test_shapes_and_binary(self):
        inst = zero_radius_instance(20, 30, 4, seed=0)
        assert inst.preferences.shape == (20, 30)
        assert set(np.unique(inst.preferences)).issubset({0, 1})
        assert inst.n_clusters() == 4

    def test_clusters_have_zero_diameter(self):
        inst = zero_radius_instance(24, 40, 3, seed=1)
        for cid in range(3):
            members = inst.cluster_members(cid)
            assert set_diameter(inst.preferences, members) == 0

    def test_planted_diameters_zero(self):
        inst = zero_radius_instance(10, 10, 2, seed=2)
        assert (inst.planted_diameters == 0).all()

    def test_invalid_cluster_count(self):
        with pytest.raises(ConfigurationError):
            zero_radius_instance(4, 4, 0)
        with pytest.raises(ConfigurationError):
            zero_radius_instance(4, 4, 5)


class TestPlantedClusters:
    def test_cluster_diameter_bounded(self):
        diameter = 10
        inst = planted_clusters_instance(30, 60, 3, diameter, seed=3)
        for cid in range(3):
            members = inst.cluster_members(cid)
            assert set_diameter(inst.preferences, members) <= diameter

    def test_balanced_sizes(self):
        inst = planted_clusters_instance(31, 20, 4, 4, seed=4)
        sizes = np.bincount(inst.cluster_of)
        assert sizes.min() >= 31 // 4
        assert sizes.sum() == 31

    def test_invalid_diameter(self):
        with pytest.raises(ConfigurationError):
            planted_clusters_instance(10, 10, 2, diameter=11)
        with pytest.raises(ConfigurationError):
            planted_clusters_instance(10, 10, 2, diameter=-1)

    @settings(max_examples=20, deadline=None)
    @given(
        n_players=st.integers(4, 40),
        n_clusters=st.integers(1, 4),
        diameter=st.integers(0, 10),
        seed=st.integers(0, 2**20),
    )
    def test_property_cluster_diameter_never_exceeds_planted(
        self, n_players, n_clusters, diameter, seed
    ):
        n_clusters = min(n_clusters, n_players)
        n_objects = 32
        diameter = min(diameter, n_objects)
        inst = planted_clusters_instance(n_players, n_objects, n_clusters, diameter, seed=seed)
        for cid in range(n_clusters):
            members = inst.cluster_members(cid)
            if members.size:
                assert set_diameter(inst.preferences, members) <= diameter


class TestMixtureModel:
    def test_shapes(self):
        inst = mixture_model_instance(20, 50, 4, noise=0.1, seed=5)
        assert inst.preferences.shape == (20, 50)
        assert inst.n_clusters() == 4

    def test_zero_noise_gives_identical_members(self):
        inst = mixture_model_instance(12, 30, 3, noise=0.0, seed=6)
        for cid in range(3):
            members = inst.cluster_members(cid)
            assert set_diameter(inst.preferences, members) == 0

    def test_invalid_noise(self):
        with pytest.raises(ConfigurationError):
            mixture_model_instance(10, 10, 2, noise=0.7)


class TestClaim2:
    def test_metadata_describes_structure(self):
        inst = claim2_lower_bound_instance(40, 40, budget=4, diameter=8, seed=7)
        meta = inst.metadata
        assert meta["generator"] == "claim2_lower_bound"
        assert len(meta["special_objects"]) == 8
        assert meta["distinguished_player"] in meta["cluster_members"]
        assert len(meta["cluster_members"]) >= 40 // 4

    def test_cluster_agrees_outside_special_set(self):
        inst = claim2_lower_bound_instance(30, 30, budget=3, diameter=6, seed=8)
        meta = inst.metadata
        p = meta["distinguished_player"]
        special = np.asarray(meta["special_objects"])
        ordinary = np.setdiff1d(np.arange(30), special)
        for member in meta["cluster_members"]:
            np.testing.assert_array_equal(
                inst.preferences[member, ordinary], inst.preferences[p, ordinary]
            )

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            claim2_lower_bound_instance(10, 10, budget=0, diameter=2)
        with pytest.raises(ConfigurationError):
            claim2_lower_bound_instance(10, 10, budget=2, diameter=0)
        with pytest.raises(ConfigurationError):
            claim2_lower_bound_instance(10, 10, budget=2, diameter=11)


class TestRandomAndHeterogeneous:
    def test_random_instance_no_clusters(self):
        inst = random_instance(15, 25, seed=9)
        assert inst.n_clusters() == 0
        assert (inst.cluster_of == -1).all()

    def test_heterogeneous_sizes_and_diameters(self):
        inst = heterogeneous_cluster_instance(
            20, 40, cluster_sizes=[10, 6, 4], cluster_diameters=[4, 8, 2], seed=10
        )
        sizes = np.bincount(inst.cluster_of)
        np.testing.assert_array_equal(np.sort(sizes), [4, 6, 10])
        for cid, diameter in enumerate([4, 8, 2]):
            members = inst.cluster_members(cid)
            assert set_diameter(inst.preferences, members) <= diameter

    def test_heterogeneous_validation(self):
        with pytest.raises(ConfigurationError):
            heterogeneous_cluster_instance(10, 10, [5, 4], [1, 1, 1])
        with pytest.raises(ConfigurationError):
            heterogeneous_cluster_instance(10, 10, [5, 4], [1, 1])
        with pytest.raises(ConfigurationError):
            heterogeneous_cluster_instance(10, 10, [5, 5], [1, 99])

    def test_determinism(self):
        a = planted_clusters_instance(16, 16, 2, 4, seed=123)
        b = planted_clusters_instance(16, 16, 2, 4, seed=123)
        np.testing.assert_array_equal(a.preferences, b.preferences)
        np.testing.assert_array_equal(a.cluster_of, b.cluster_of)
