"""Property tests for the bit-packed perf core (repro.perf) and its consumers.

The packed kernels must be *bit-for-bit* equal to the unpacked references —
no tolerance, no approximation — on random instances including widths that
are not multiples of eight.  The trial engine must produce identical output
for any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import scaling_experiment
from repro.analysis.runner import default_worker_count, run_trials, spawn_seeds
from repro.core.clustering import build_neighbor_graph, cluster_players
from repro.core.work_sharing import share_work
from repro.errors import ConfigurationError, ProtocolError
from repro.perf import (
    PackedBits,
    pack_bits,
    packed_hamming,
    packed_majority,
    packed_unique_rows,
    pairwise_hamming,
    popcount,
)
from repro.players.base import ReportingStrategy
from repro.preferences.generators import planted_clusters_instance
from repro.protocols.context import make_context
from repro.protocols.small_radius import small_radius
from repro.simulation.board import BulletinBoard
from repro.simulation.oracle import ProbeOracle

# Widths straddling byte boundaries, including non-multiples of 8.
WIDTHS = [1, 3, 7, 8, 9, 13, 16, 17, 31, 64, 65, 100, 130]


def _random_binary(rng: np.random.Generator, shape) -> np.ndarray:
    return rng.integers(0, 2, size=shape, dtype=np.uint8)


# ---------------------------------------------------------------------------
# Packing round trip
# ---------------------------------------------------------------------------
def test_pack_bits_round_trip_all_widths():
    rng = np.random.default_rng(0)
    for width in WIDTHS:
        matrix = _random_binary(rng, (11, width))
        packed = pack_bits(matrix)
        assert isinstance(packed, PackedBits)
        assert packed.shape == matrix.shape
        assert packed.n_bytes == (width + 7) // 8
        assert np.array_equal(packed.unpack(), matrix)


def test_pack_bits_higher_rank_and_popcount():
    rng = np.random.default_rng(1)
    tensor = _random_binary(rng, (4, 5, 21))
    packed = pack_bits(tensor)
    assert np.array_equal(packed.unpack(), tensor)
    bytes_in = rng.integers(0, 256, size=257, dtype=np.uint8)
    expected = np.array([bin(int(b)).count("1") for b in bytes_in], dtype=np.uint8)
    assert np.array_equal(popcount(bytes_in), expected)


# ---------------------------------------------------------------------------
# Hamming kernels vs unpacked references
# ---------------------------------------------------------------------------
def test_packed_hamming_matches_unpacked_reference():
    rng = np.random.default_rng(2)
    for width in WIDTHS:
        rows = _random_binary(rng, (9, width))
        candidates = _random_binary(rng, (5, width))
        reference = (rows[:, None, :] != candidates[None, :, :]).sum(axis=2)
        got = packed_hamming(
            pack_bits(rows).data[:, None, :], pack_bits(candidates).data[None, :, :]
        )
        assert got.dtype == np.int64
        assert np.array_equal(got, reference)


def test_packed_hamming_per_player_stacks():
    rng = np.random.default_rng(3)
    for width in (5, 24, 33):
        stack = _random_binary(rng, (7, 4, width))  # (P, k, width)
        own = _random_binary(rng, (7, width))  # (P, width)
        reference = (stack != own[:, None, :]).sum(axis=2)
        got = packed_hamming(pack_bits(stack).data, pack_bits(own).data[:, None, :])
        assert np.array_equal(got, reference)


def test_packed_hamming_width_mismatch_raises():
    with pytest.raises(ProtocolError):
        packed_hamming(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8))


def test_pairwise_hamming_matches_reference():
    rng = np.random.default_rng(4)
    for width in WIDTHS:
        rows = _random_binary(rng, (23, width))
        reference = (rows[:, None, :] != rows[None, :, :]).sum(axis=2)
        assert np.array_equal(pairwise_hamming(pack_bits(rows)), reference)


def test_pairwise_hamming_chunking_boundary(monkeypatch):
    import repro.perf.bitset as bitset

    rng = np.random.default_rng(5)
    rows = _random_binary(rng, (50, 40))
    reference = pairwise_hamming(pack_bits(rows))
    monkeypatch.setattr(bitset, "_CHUNK_BYTES", 64)  # force many tiny chunks
    assert np.array_equal(pairwise_hamming(pack_bits(rows)), reference)


# ---------------------------------------------------------------------------
# Majority and unique rows
# ---------------------------------------------------------------------------
def test_packed_majority_matches_reference_and_tie_break():
    rng = np.random.default_rng(6)
    for width in WIDTHS:
        for k in (1, 2, 5, 8):
            vectors = _random_binary(rng, (k, width))
            sums = vectors.astype(np.int64).sum(axis=0)
            reference = (2 * sums >= k).astype(np.uint8)  # ties to 1
            assert np.array_equal(packed_majority(pack_bits(vectors)), reference)
    # Explicit tie: two rows disagreeing everywhere -> all ones.
    tie = np.stack([np.zeros(10, dtype=np.uint8), np.ones(10, dtype=np.uint8)])
    assert np.array_equal(packed_majority(pack_bits(tie)), np.ones(10, dtype=np.uint8))


def test_packed_unique_rows_matches_np_unique():
    rng = np.random.default_rng(7)
    for width in WIDTHS:
        pool = _random_binary(rng, (6, width))
        matrix = pool[rng.integers(0, 6, size=40)]
        ref_rows, ref_counts = np.unique(matrix, axis=0, return_counts=True)
        got_rows, got_counts = packed_unique_rows(matrix)
        assert np.array_equal(got_rows, ref_rows)
        assert np.array_equal(got_counts, ref_counts)


def test_packed_unique_rows_edge_shapes():
    rows, counts = packed_unique_rows(np.zeros((0, 5), dtype=np.uint8))
    assert rows.shape == (0, 5) and counts.size == 0
    rows, counts = packed_unique_rows(np.zeros((4, 0), dtype=np.uint8))
    assert rows.shape == (1, 0) and counts.tolist() == [4]


# ---------------------------------------------------------------------------
# Consumers: neighbour graph and incremental clustering
# ---------------------------------------------------------------------------
def _reference_neighbor_graph(published: np.ndarray, threshold: float) -> np.ndarray:
    signed = published.astype(np.int32) * 2 - 1
    inner = signed @ signed.T
    distances = (published.shape[1] - inner) // 2
    adjacency = distances <= threshold
    np.fill_diagonal(adjacency, False)
    return adjacency


def _reference_cluster_players(adjacency, min_cluster_size, seed_degree=None):
    """The seed's O(n^3)-worst-case recompute-the-degrees greedy (phase 1)."""
    adjacency = np.asarray(adjacency, dtype=bool)
    n = adjacency.shape[0]
    if seed_degree is None:
        seed_degree = min_cluster_size - 1
    seed_degree = max(1, int(seed_degree))
    assignment = np.full(n, -1, dtype=np.int64)
    remaining = np.ones(n, dtype=bool)
    clusters = []
    while True:
        degrees = (adjacency & remaining[None, :]).sum(axis=1)
        degrees[~remaining] = -1
        eligible = np.flatnonzero(degrees >= seed_degree)
        if eligible.size == 0:
            break
        seed = int(eligible[int(np.argmax(degrees[eligible]))])
        neighbors = np.flatnonzero(adjacency[seed] & remaining)
        members = np.unique(np.concatenate([[seed], neighbors]))
        clusters.append(members.astype(np.int64))
        assignment[members] = len(clusters) - 1
        remaining[members] = False
    return assignment, clusters, remaining


def test_build_neighbor_graph_matches_gram_reference():
    rng = np.random.default_rng(8)
    for width in (9, 33, 64):
        published = _random_binary(rng, (30, width))
        threshold = width / 4
        assert np.array_equal(
            build_neighbor_graph(published, threshold),
            _reference_neighbor_graph(published, threshold),
        )


def test_cluster_players_incremental_matches_recompute_reference():
    rng = np.random.default_rng(9)
    for n, p in ((20, 0.3), (50, 0.15), (64, 0.5)):
        upper = rng.random((n, n)) < p
        adjacency = np.triu(upper, 1)
        adjacency = adjacency | adjacency.T
        for min_size in (2, 4, n // 4):
            got = cluster_players(adjacency, min_cluster_size=min_size)
            ref_assignment, ref_clusters, _ = _reference_cluster_players(
                adjacency, min_size
            )
            # Full clustering is total and consistent.
            assert np.all(got.assignment >= 0)
            for cluster_id, members in enumerate(got.clusters):
                assert np.all(got.assignment[members] == cluster_id)
            # The seeded clusters (before leftover attachment) coincide: every
            # reference phase-1 member keeps the same cluster id.
            seeded = ref_assignment >= 0
            assert np.array_equal(got.assignment[seeded], ref_assignment[seeded])


# ---------------------------------------------------------------------------
# Board bulk pairs API and oracle fast path
# ---------------------------------------------------------------------------
def test_post_report_pairs_matches_per_player_loop():
    rng = np.random.default_rng(10)
    n_players, n_objects = 12, 20
    players = rng.integers(0, n_players, size=60)
    objects = rng.integers(0, n_objects, size=60)
    values = rng.integers(0, 2, size=60)

    loop_board = BulletinBoard(n_players, n_objects)
    for player in np.unique(players):
        mask = players == player
        loop_board.post_reports("ch", int(player), objects[mask], values[mask])

    bulk_board = BulletinBoard(n_players, n_objects)
    order = np.argsort(players, kind="stable")
    bulk_board.post_report_pairs("ch", players[order], objects[order], values[order])

    loop_matrix, loop_posted = loop_board.report_matrix("ch")
    bulk_matrix, bulk_posted = bulk_board.report_matrix("ch")
    assert np.array_equal(loop_posted, bulk_posted)
    assert np.array_equal(loop_matrix[loop_posted], bulk_matrix[bulk_posted])


def test_post_report_pairs_validates():
    board = BulletinBoard(4, 4)
    with pytest.raises(ConfigurationError):
        board.post_report_pairs("ch", np.asarray([5]), np.asarray([0]), np.asarray([1]))
    with pytest.raises(ConfigurationError):
        board.post_report_pairs("ch", np.asarray([0]), np.asarray([9]), np.asarray([1]))
    with pytest.raises(ConfigurationError):
        board.post_report_pairs("ch", np.asarray([0]), np.asarray([0]), np.asarray([2]))
    with pytest.raises(ConfigurationError):
        board.post_report_pairs("ch", np.asarray([0, 1]), np.asarray([0]), np.asarray([1]))


def test_probe_block_duplicate_and_unsorted_objects_charge_once():
    truth = np.arange(12).reshape(3, 4) % 2
    oracle = ProbeOracle(truth)
    players = np.asarray([0, 2])
    objects = np.asarray([3, 1, 3, 0])  # unsorted with a duplicate
    block = oracle.probe_block(players, objects)
    assert np.array_equal(block, truth[np.ix_(players, objects)])
    assert oracle.probes_used().tolist() == [3, 0, 3]  # 3 distinct objects
    # Re-probing the same objects (sorted fast path) charges nothing new.
    block2 = oracle.probe_block(players, np.asarray([0, 1, 3]))
    assert np.array_equal(block2, truth[np.ix_(players, [0, 1, 3])])
    assert oracle.probes_used().tolist() == [3, 0, 3]
    assert oracle.requests_used().tolist() == [7, 0, 7]


def test_share_work_bulk_posting_attribution():
    instance = planted_clusters_instance(24, 16, n_clusters=3, diameter=2, seed=5)
    ctx = make_context(instance, budget=4, seed=5)
    from repro.core.clustering import Clustering

    assignment = np.repeat(np.arange(3), 8).astype(np.int64)
    clustering = Clustering(
        assignment=assignment,
        clusters=[np.flatnonzero(assignment == c) for c in range(3)],
    )
    predictions = share_work(ctx, clustering, channel="ws")
    assert predictions.shape == (24, 16)
    # Every posted report cell is attributed to a member of the right cluster.
    for cluster_id in range(3):
        _, posted = ctx.board.report_matrix(f"ws/c{cluster_id}")
        posters = np.flatnonzero(posted.any(axis=1))
        assert np.all(assignment[posters] == cluster_id)


# ---------------------------------------------------------------------------
# SmallRadius batched repetition == per-subset loop
# ---------------------------------------------------------------------------
class _HonestLiar(ReportingStrategy):
    """A 'dishonest' strategy that reports the truth — forces the per-subset
    fallback path while keeping the execution semantics honest."""

    def report(self, player, objects, true_values, pool):
        return np.asarray(true_values, dtype=np.uint8)


def test_small_radius_batched_path_matches_per_subset_loop():
    instance = planted_clusters_instance(32, 64, n_clusters=4, diameter=4, seed=11)

    batched_ctx = make_context(instance, budget=4, seed=7)
    batched = small_radius(
        batched_ctx,
        batched_ctx.all_players(),
        batched_ctx.all_objects(),
        diameter=4,
    )

    fallback_ctx = make_context(
        instance, budget=4, strategies={0: _HonestLiar()}, seed=7
    )
    fallback = small_radius(
        fallback_ctx,
        fallback_ctx.all_players(),
        fallback_ctx.all_objects(),
        diameter=4,
    )

    assert np.array_equal(batched, fallback)
    assert np.array_equal(
        batched_ctx.oracle.probes_used(), fallback_ctx.oracle.probes_used()
    )
    assert np.array_equal(
        batched_ctx.oracle.requests_used(), fallback_ctx.oracle.requests_used()
    )


# ---------------------------------------------------------------------------
# Trial engine determinism
# ---------------------------------------------------------------------------
def test_spawn_seeds_deterministic_and_independent():
    assert spawn_seeds(42, 5) == spawn_seeds(42, 5)
    assert spawn_seeds(42, 5) != spawn_seeds(43, 5)
    assert len(set(spawn_seeds(0, 64))) == 64
    assert default_worker_count() >= 1


def test_run_trials_serial_matches_parallel_output():
    table_serial = scaling_experiment(sizes=(48, 64), budget=4, seed=3, n_workers=1)
    table_parallel = scaling_experiment(sizes=(48, 64), budget=4, seed=3, n_workers=4)
    assert table_serial.rows == table_parallel.rows
    assert table_serial.columns == table_parallel.columns


def test_run_trials_rejects_negative_workers():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        run_trials(int, [1, 2], n_workers=-1)
