"""Tests for the seed/generator helpers in :mod:`repro._typing`."""

from __future__ import annotations

import numpy as np
import pytest

from repro._typing import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1000, size=20)
        b = as_generator(2).integers(0, 1000, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5
        assert all(isinstance(g, np.random.Generator) for g in gens)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_streams(self):
        gens = spawn_generators(7, 2)
        a = gens[0].integers(0, 10**6, size=50)
        b = gens[1].integers(0, 10**6, size=50)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a = spawn_generators(9, 3)[2].integers(0, 10**6, size=10)
        b = spawn_generators(9, 3)[2].integers(0, 10**6, size=10)
        np.testing.assert_array_equal(a, b)

    def test_from_existing_generator(self):
        gens = spawn_generators(np.random.default_rng(3), 2)
        assert len(gens) == 2
