"""Tests for shared randomness (honest and adversarial)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.randomness import AdversarialRandomness, SharedRandomness


class TestSharedRandomness:
    def test_sample_objects_probability_one_selects_all(self):
        rng = SharedRandomness(0)
        sample = rng.sample_objects(20, 1.0)
        np.testing.assert_array_equal(sample, np.arange(20))

    def test_sample_objects_never_empty(self):
        rng = SharedRandomness(0)
        for _ in range(20):
            assert rng.sample_objects(50, 0.01).size >= 1

    def test_sample_objects_invalid_probability(self):
        rng = SharedRandomness(0)
        with pytest.raises(ConfigurationError):
            rng.sample_objects(10, 0.0)
        with pytest.raises(ConfigurationError):
            rng.sample_objects(10, 1.5)

    def test_partition_in_two_is_a_partition(self):
        rng = SharedRandomness(1)
        indices = np.arange(37)
        left, right = rng.partition_in_two(indices)
        assert left.size > 0 and right.size > 0
        np.testing.assert_array_equal(np.sort(np.concatenate([left, right])), indices)

    def test_partition_in_two_small_input(self):
        rng = SharedRandomness(2)
        left, right = rng.partition_in_two(np.asarray([5, 9]))
        assert {int(left[0]), int(right[0])} == {5, 9}

    def test_partition_objects_covers_everything(self):
        rng = SharedRandomness(3)
        objects = np.arange(40)
        parts = rng.partition_objects(objects, 7)
        assert len(parts) == 7
        np.testing.assert_array_equal(np.sort(np.concatenate(parts)), objects)

    def test_partition_objects_caps_parts(self):
        rng = SharedRandomness(3)
        parts = rng.partition_objects(np.arange(3), 10)
        assert len(parts) == 3

    def test_assign_probers_shape_and_membership(self):
        rng = SharedRandomness(4)
        members = np.asarray([3, 8, 11])
        assignment = rng.assign_probers(members, n_objects=6, redundancy=5)
        assert assignment.shape == (6, 5)
        assert np.isin(assignment, members).all()

    def test_assign_probers_empty_cluster_rejected(self):
        rng = SharedRandomness(4)
        with pytest.raises(ConfigurationError):
            rng.assign_probers(np.asarray([], dtype=np.int64), 4, 3)

    def test_spawn_gives_independent_honest_source(self):
        rng = SharedRandomness(5)
        child = rng.spawn()
        assert isinstance(child, SharedRandomness)
        assert child.honest

    def test_determinism(self):
        a = SharedRandomness(9).sample_objects(100, 0.3)
        b = SharedRandomness(9).sample_objects(100, 0.3)
        np.testing.assert_array_equal(a, b)


class TestAdversarialRandomness:
    def test_flagged_dishonest(self):
        adv = AdversarialRandomness(0)
        assert not adv.honest

    def test_hidden_objects_excluded_from_samples(self):
        hidden = np.asarray([0, 1, 2, 3, 4])
        adv = AdversarialRandomness(0, hidden_objects=hidden)
        for _ in range(10):
            sample = adv.sample_objects(30, 0.9)
            assert not np.isin(sample, hidden).any()
            assert sample.size > 0

    def test_sample_still_nonempty_when_everything_hidden(self):
        adv = AdversarialRandomness(0, hidden_objects=np.arange(10))
        sample = adv.sample_objects(10, 0.9)
        assert sample.size > 0

    def test_favoured_players_overrepresented(self):
        members = np.arange(20)
        favoured = np.asarray([0, 1])
        adv = AdversarialRandomness(
            1, favoured_players=favoured, favoured_weight=50.0
        )
        assignment = adv.assign_probers(members, n_objects=200, redundancy=5)
        favoured_share = np.isin(assignment, favoured).mean()
        # Unbiased share would be 2/20 = 0.1; heavy weighting must beat it.
        assert favoured_share > 0.5

    def test_invalid_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversarialRandomness(0, favoured_weight=0.5)

    def test_spawn_preserves_bias_configuration(self):
        adv = AdversarialRandomness(
            2, hidden_objects=np.asarray([1]), favoured_players=np.asarray([0])
        )
        child = adv.spawn()
        assert isinstance(child, AdversarialRandomness)
        assert not child.honest
        np.testing.assert_array_equal(child.hidden_objects, [1])
