"""Property tests for the vectorised tournament layer (PR 3).

Three bulk paths must be *bit-for-bit* equal to their serial references —
same outputs, same probe accounting, same shared-randomness consumption —
on random instances including dishonest reporters and the noisy oracle:

* ``rselect_collective(vectorised=True)`` vs the per-player serial
  tournaments (``vectorised=False``);
* ``ProbeOracle.probe_ragged`` vs a loop of ``probe_objects``;
* mixed base/recursive SmallRadius batching vs the per-subset loop.

Plus the two new perf kernels (``packed_pair_vote``,
``packed_majority_tall``) against unpacked references, and the RSelect
survivor-fallback regression.
"""

from __future__ import annotations

import sys
from dataclasses import replace

import numpy as np
import pytest

import repro.protocols.small_radius  # noqa: F401 - registers the submodule
from repro import ProtocolConstants, make_context
from repro.errors import ConfigurationError, ProtocolError
from repro.perf import pack_bits, packed_majority, packed_majority_tall, packed_pair_vote
from repro.players.adversaries import RandomReportStrategy
from repro.preferences.generators import PlantedInstance, planted_clusters_instance
from repro.protocols.rselect import rselect, rselect_collective
from repro.protocols.small_radius import small_radius
from repro.simulation.oracle import ProbeOracle

_SMALL_RADIUS_MODULE = sys.modules["repro.protocols.small_radius"]

WIDTHS = [1, 3, 7, 8, 9, 13, 16, 17, 31, 64, 65, 100, 130]


# ---------------------------------------------------------------------------
# Collective RSelect == per-player serial RSelect
# ---------------------------------------------------------------------------
def _paired_contexts(seed: int):
    rng = np.random.default_rng(seed)
    n_players = int(rng.integers(1, 40))
    n_objects = int(rng.integers(5, 130))
    k = int(rng.integers(2, 8))
    instance = planted_clusters_instance(
        n_players, n_objects, n_clusters=2, diameter=3, seed=seed
    )
    strategies = (
        {0: RandomReportStrategy(seed=1)} if seed % 2 and n_players > 1 else None
    )
    kwargs = dict(
        budget=4,
        strategies=strategies,
        seed=seed,
        noise_rate=0.1 if seed % 3 == 0 else 0.0,
        noise_seed=seed,
    )
    stack = rng.integers(0, 2, size=(n_players, k, n_objects), dtype=np.uint8)
    if seed % 2:  # exercise the identical-candidates (0, 0)-tie rounds
        stack[:, 1, :] = stack[:, 0, :]
    return make_context(instance, **kwargs), make_context(instance, **kwargs), stack


@pytest.mark.parametrize("seed", range(10))
def test_rselect_collective_vectorised_matches_serial(seed):
    ctx_vec, ctx_ser, stack = _paired_contexts(seed)
    players = ctx_vec.all_players()
    objects = ctx_vec.all_objects()
    vectorised = rselect_collective(ctx_vec, players, objects, stack, vectorised=True)
    serial = rselect_collective(ctx_ser, players, objects, stack, vectorised=False)
    np.testing.assert_array_equal(vectorised, serial)
    np.testing.assert_array_equal(
        ctx_vec.oracle.probes_used(), ctx_ser.oracle.probes_used()
    )
    np.testing.assert_array_equal(
        ctx_vec.oracle.requests_used(), ctx_ser.oracle.requests_used()
    )
    # Both paths advanced the shared randomness identically (one batched
    # player-major seed draw), so the next draw coincides.
    assert ctx_vec.randomness.generator.integers(0, 2**63) == ctx_ser.randomness.generator.integers(0, 2**63)


def test_rselect_collective_validates_sample_size_and_shape(ctx_planted):
    players = ctx_planted.all_players()
    objects = ctx_planted.all_objects()
    stack = np.zeros((players.size, 2, objects.size), dtype=np.uint8)
    with pytest.raises(ProtocolError):
        rselect_collective(ctx_planted, players, objects, stack, sample_size=0)
    with pytest.raises(ProtocolError):
        rselect_collective(ctx_planted, players, objects, stack[:, :, :-1])


def test_rselect_survivor_fallback_keeps_last_eliminated():
    """Regression: mutual elimination (majority ≤ 1/2, reachable only by
    bypassing the constants validation) must fall back to the *most
    recently* eliminated candidate, not unconditionally ``candidates[0]``."""
    constants = ProtocolConstants.practical()
    object.__setattr__(constants, "rselect_majority", 0.5)
    truth = np.zeros((1, 8), dtype=np.uint8)
    instance = PlantedInstance(
        preferences=truth,
        cluster_of=np.zeros(1, dtype=np.int64),
        planted_diameters=np.zeros(1, dtype=np.int64),
        metadata={"generator": "fallback-regression"},
    )
    # Pair (0,1): candidate 1 wins 2:1 -> 0 eliminated.  Pair (1,2): exact
    # 1:1 tie at the 0.5 threshold -> mutual elimination empties the alive
    # set; 1 was eliminated after 2, so the survivor fallback must pick 1.
    candidates = np.asarray(
        [
            [1, 1, 0, 0, 0, 1, 0, 0],
            [0, 0, 1, 0, 0, 1, 0, 0],
            [0, 0, 1, 0, 0, 0, 1, 0],
        ],
        dtype=np.uint8,
    )
    ctx = make_context(instance, budget=4, constants=constants, seed=0)
    winner, vector = rselect(ctx, 0, np.arange(8), candidates, sample_size=8)
    assert winner == 1
    np.testing.assert_array_equal(vector, candidates[1])
    # The vectorised collective path applies the identical tie-break.
    for vectorised in (True, False):
        ctx = make_context(instance, budget=4, constants=constants, seed=0)
        chosen = rselect_collective(
            ctx,
            np.asarray([0]),
            np.arange(8),
            candidates[None, :, :],
            sample_size=8,
            vectorised=vectorised,
        )
        np.testing.assert_array_equal(chosen[0], candidates[1])


# ---------------------------------------------------------------------------
# probe_ragged == looped probe_objects
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("noise_rate", [0.0, 0.2])
def test_probe_ragged_matches_probe_objects_loop(noise_rate):
    rng = np.random.default_rng(17)
    truth = rng.integers(0, 2, size=(9, 23))
    ragged = ProbeOracle(truth, noise_rate=noise_rate, noise_seed=5)
    looped = ProbeOracle(truth, noise_rate=noise_rate, noise_seed=5)
    for _ in range(8):
        n_listed = int(rng.integers(1, truth.shape[0] + 1))
        players = rng.choice(truth.shape[0], size=n_listed, replace=False)
        lists = [
            rng.integers(0, truth.shape[1], size=rng.integers(0, 9))
            for _ in range(n_listed)
        ]
        got = ragged.probe_ragged(players, lists)
        expected = [looped.probe_objects(int(p), objs) for p, objs in zip(players, lists)]
        np.testing.assert_array_equal(
            got, np.concatenate(expected) if got.size else np.zeros(0, np.uint8)
        )
        np.testing.assert_array_equal(ragged.probes_used(), looped.probes_used())
        np.testing.assert_array_equal(ragged.requests_used(), looped.requests_used())


def test_probe_ragged_duplicate_players_and_validation():
    truth = np.arange(12).reshape(3, 4) % 2
    ragged = ProbeOracle(truth)
    looped = ProbeOracle(truth)
    got = ragged.probe_ragged(
        np.asarray([1, 1, 0]), [np.asarray([0, 2]), np.asarray([2, 3]), np.asarray([1])]
    )
    expected = np.concatenate(
        [looped.probe_objects(1, [0, 2]), looped.probe_objects(1, [2, 3]), looped.probe_objects(0, [1])]
    )
    np.testing.assert_array_equal(got, expected)
    np.testing.assert_array_equal(ragged.probes_used(), looped.probes_used())
    with pytest.raises(ConfigurationError):
        ragged.probe_ragged(np.asarray([0]), [np.asarray([0]), np.asarray([1])])
    with pytest.raises(ConfigurationError):
        ragged.probe_ragged(np.asarray([7]), [np.asarray([0])])
    with pytest.raises(ConfigurationError):
        ragged.probe_ragged(np.asarray([0]), [np.asarray([99])])
    assert ragged.probe_ragged(np.zeros(0, dtype=np.int64), []).size == 0
    assert ragged.probe_ragged(np.asarray([0, 1]), [np.zeros(0, np.int64)] * 2).size == 0


# ---------------------------------------------------------------------------
# Mixed base/recursive SmallRadius batching == per-subset loop
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_small_radius_mixed_recursion_matches_per_subset_loop(seed, monkeypatch):
    # A low base factor makes the random partition subsets straddle the
    # ZeroRadius base size, so each repetition genuinely mixes bulk base
    # blocks with inline recursion (asserted via the zero_radius call count).
    constants = replace(ProtocolConstants.practical(), zero_radius_base_factor=0.5)
    instance = planted_clusters_instance(48, 96, n_clusters=4, diameter=8, seed=seed)
    calls = {"batched": 0}
    real_zero_radius = _SMALL_RADIUS_MODULE.zero_radius

    def counting_zero_radius(*args, **kwargs):
        calls["batched"] += 1
        return real_zero_radius(*args, **kwargs)

    batched_ctx = make_context(instance, budget=1, constants=constants, seed=seed)
    monkeypatch.setattr(_SMALL_RADIUS_MODULE, "zero_radius", counting_zero_radius)
    batched = small_radius(
        batched_ctx, batched_ctx.all_players(), batched_ctx.all_objects(), diameter=8, budget=1
    )
    monkeypatch.setattr(_SMALL_RADIUS_MODULE, "zero_radius", real_zero_radius)

    loop_ctx = make_context(instance, budget=1, constants=constants, seed=seed)
    loop = small_radius(
        loop_ctx,
        loop_ctx.all_players(),
        loop_ctx.all_objects(),
        diameter=8,
        budget=1,
        batch_base=False,
    )
    assert calls["batched"] > 0, "expected some subsets to recurse (mixed mode)"
    np.testing.assert_array_equal(batched, loop)
    np.testing.assert_array_equal(
        batched_ctx.oracle.probes_used(), loop_ctx.oracle.probes_used()
    )
    np.testing.assert_array_equal(
        batched_ctx.oracle.requests_used(), loop_ctx.oracle.requests_used()
    )
    assert batched_ctx.randomness.generator.integers(0, 2**63) == loop_ctx.randomness.generator.integers(0, 2**63)


def test_popular_vectors_blocks_matches_per_block_reference():
    from repro.protocols.zero_radius import popular_vectors

    rng = np.random.default_rng(23)
    for _ in range(20):
        n_players = int(rng.integers(2, 50))
        widths = rng.integers(1, 90, size=rng.integers(1, 10))
        published = rng.integers(0, 2, size=(n_players, widths.sum()), dtype=np.uint8)
        published = published[rng.integers(0, n_players, size=n_players)]
        min_support = int(rng.integers(1, max(2, n_players // 2)))
        blocks = _SMALL_RADIUS_MODULE._popular_vectors_blocks(
            published, widths, min_support
        )
        offsets = np.concatenate(([0], np.cumsum(widths)))
        for index in range(widths.size):
            reference = popular_vectors(
                published[:, offsets[index] : offsets[index + 1]], min_support
            )
            np.testing.assert_array_equal(blocks[index], reference)


# ---------------------------------------------------------------------------
# New perf kernels
# ---------------------------------------------------------------------------
def test_packed_pair_vote_matches_unpacked_reference():
    rng = np.random.default_rng(31)
    for _ in range(50):
        n_rows = int(rng.integers(1, 9))
        max_len = int(rng.integers(1, 40))
        lengths = rng.integers(0, max_len + 1, size=n_rows)
        true_rows = np.zeros((n_rows, max_len), dtype=np.uint8)
        a_rows = np.zeros_like(true_rows)
        b_rows = np.zeros_like(true_rows)
        for i, length in enumerate(lengths):
            true_rows[i, :length] = rng.integers(0, 2, length)
            a_rows[i, :length] = rng.integers(0, 2, length)
            b_rows[i, :length] = rng.integers(0, 2, length)
        agree_a, agree_b = packed_pair_vote(true_rows, a_rows, b_rows, lengths)
        for i, length in enumerate(lengths):
            assert agree_a[i] == (true_rows[i, :length] == a_rows[i, :length]).sum()
            assert agree_b[i] == (true_rows[i, :length] == b_rows[i, :length]).sum()


def test_packed_pair_vote_validates():
    ones = np.ones((2, 4), dtype=np.uint8)
    with pytest.raises(ProtocolError):
        packed_pair_vote(ones, ones[:1], ones, np.asarray([4, 4]))
    with pytest.raises(ProtocolError):
        packed_pair_vote(ones, ones, ones, np.asarray([4]))
    with pytest.raises(ProtocolError):
        packed_pair_vote(ones, ones, ones, np.asarray([4, 5]))


def test_packed_majority_tall_matches_unpack_and_sum():
    rng = np.random.default_rng(37)
    for width in WIDTHS:
        for k in (1, 2, 3, 5, 8, 64, 255, 256, 300):
            rows = rng.integers(0, 2, size=(k, width), dtype=np.uint8)
            reference = (2 * rows.sum(axis=0, dtype=np.int64) >= k).astype(np.uint8)
            packed = pack_bits(rows)
            np.testing.assert_array_equal(packed_majority_tall(packed), reference)
            # packed_majority dispatches to the tall kernel above the
            # threshold; both must stay bit-identical to the reference.
            np.testing.assert_array_equal(packed_majority(packed), reference)


def test_packed_majority_tall_validates():
    with pytest.raises(ProtocolError):
        packed_majority_tall(pack_bits(np.zeros((0, 4), dtype=np.uint8)))
    assert packed_majority_tall(pack_bits(np.zeros((3, 0), dtype=np.uint8))).size == 0
