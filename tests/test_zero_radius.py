"""Tests for the ZeroRadius protocol (Theorem 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_context, zero_radius_instance
from repro.errors import ProtocolError
from repro.players.adversaries import InvertingStrategy, RandomReportStrategy
from repro.preferences.metrics import prediction_errors
from repro.protocols.zero_radius import popular_vectors, zero_radius


class TestPopularVectors:
    def test_threshold_filters(self):
        published = np.asarray(
            [[0, 1], [0, 1], [0, 1], [1, 0]], dtype=np.uint8
        )
        assert popular_vectors(published, 2).shape == (1, 2)
        assert popular_vectors(published, 1).shape == (2, 2)
        assert popular_vectors(published, 4).shape[0] == 0

    def test_empty_input(self):
        out = popular_vectors(np.zeros((0, 3), dtype=np.uint8), 1)
        assert out.shape[0] == 0


class TestZeroRadiusHonest:
    def test_exact_recovery_on_identical_clusters(self, ctx_zero_radius, zero_radius_small):
        estimates = zero_radius(
            ctx_zero_radius,
            ctx_zero_radius.all_players(),
            ctx_zero_radius.all_objects(),
            budget_prime=4,
        )
        errors = prediction_errors(estimates, zero_radius_small.preferences)
        assert errors.max() == 0

    def test_probe_cost_well_below_probe_everything(self, constants):
        instance = zero_radius_instance(n_players=128, n_objects=128, n_clusters=8, seed=3)
        ctx = make_context(instance, budget=8, constants=constants, seed=3)
        zero_radius(ctx, ctx.all_players(), ctx.all_objects(), budget_prime=8)
        assert ctx.oracle.max_probes() < 128
        # Theorem 4 shape: O(B' log n) with the profile's constants.
        bound = 4 * constants.zero_radius_base_size(128, 8)
        assert ctx.oracle.max_requests() <= bound

    def test_subset_of_players_and_objects(self, ctx_zero_radius, zero_radius_small):
        players = np.arange(0, 24)
        objects = np.arange(10, 40)
        estimates = zero_radius(ctx_zero_radius, players, objects, budget_prime=4)
        assert estimates.shape == (players.size, objects.size)
        errors = (estimates != zero_radius_small.preferences[np.ix_(players, objects)]).sum(axis=1)
        assert errors.max() == 0

    def test_empty_inputs(self, ctx_zero_radius):
        out = zero_radius(ctx_zero_radius, np.asarray([], dtype=np.int64), np.arange(4), 2)
        assert out.shape == (0, 4)
        out = zero_radius(ctx_zero_radius, np.arange(4), np.asarray([], dtype=np.int64), 2)
        assert out.shape == (4, 0)

    def test_invalid_budget(self, ctx_zero_radius):
        with pytest.raises(ProtocolError):
            zero_radius(
                ctx_zero_radius,
                ctx_zero_radius.all_players(),
                ctx_zero_radius.all_objects(),
                budget_prime=0,
            )

    def test_deterministic_given_seed(self, constants):
        instance = zero_radius_instance(32, 32, n_clusters=4, seed=5)
        runs = []
        for _ in range(2):
            ctx = make_context(instance, budget=4, constants=constants, seed=9)
            runs.append(zero_radius(ctx, ctx.all_players(), ctx.all_objects(), 4))
        np.testing.assert_array_equal(runs[0], runs[1])


class TestZeroRadiusDishonest:
    def test_honest_players_unaffected_by_small_coalition(self, constants):
        instance = zero_radius_instance(n_players=96, n_objects=96, n_clusters=4, seed=6)
        # 8 dishonest players (tolerance n/(3B) = 96/12 = 8) reporting garbage.
        dishonest = list(range(0, 96, 12))
        strategies = {p: RandomReportStrategy(seed=p) for p in dishonest}
        ctx = make_context(instance, budget=4, constants=constants, strategies=strategies, seed=6)
        estimates = zero_radius(ctx, ctx.all_players(), ctx.all_objects(), budget_prime=4)
        errors = prediction_errors(estimates, instance.preferences)
        honest_mask = np.ones(96, dtype=bool)
        honest_mask[dishonest] = False
        assert errors[honest_mask].max() == 0

    def test_inverting_coalition_cannot_forge_popular_vectors(self, constants):
        instance = zero_radius_instance(n_players=96, n_objects=96, n_clusters=4, seed=7)
        dishonest = list(range(3))
        strategies = {p: InvertingStrategy() for p in dishonest}
        ctx = make_context(instance, budget=4, constants=constants, strategies=strategies, seed=7)
        estimates = zero_radius(ctx, ctx.all_players(), ctx.all_objects(), budget_prime=4)
        honest_mask = np.ones(96, dtype=bool)
        honest_mask[dishonest] = False
        errors = prediction_errors(estimates, instance.preferences)[honest_mask]
        assert errors.max() == 0
