"""Tests for the round ledger and the probe/error report dataclasses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.metrics import (
    ErrorReport,
    ProbeReport,
    hamming_errors,
    protocol_report,
)
from repro.simulation.oracle import ProbeOracle
from repro.simulation.rounds import RoundLedger


@pytest.fixture
def oracle(rng):
    return ProbeOracle(rng.integers(0, 2, size=(5, 16), dtype=np.uint8))


class TestRoundLedger:
    def test_phase_records_probe_delta(self, oracle):
        ledger = RoundLedger(oracle)
        with ledger.phase("first"):
            oracle.probe_block(np.asarray([0, 1]), np.asarray([0, 1, 2]))
        with ledger.phase("second"):
            oracle.probe(0, 5)
        assert ledger.rounds_by_phase() == {"first": 3, "second": 1}
        assert ledger.probes_by_phase() == {"first": 6, "second": 1}
        assert ledger.total_rounds() == 4

    def test_repeated_phase_names_accumulate(self, oracle):
        ledger = RoundLedger(oracle)
        for _ in range(2):
            with ledger.phase("loop"):
                oracle.probe_objects(2, np.asarray([np.random.default_rng(0).integers(0, 16)]))
        assert ledger.rounds_by_phase()["loop"] >= 1

    def test_empty_phase_name_rejected(self, oracle):
        ledger = RoundLedger(oracle)
        with pytest.raises(ConfigurationError):
            ledger.phase("")

    def test_inconsistent_snapshots_rejected(self, oracle):
        ledger = RoundLedger(oracle)
        with pytest.raises(ConfigurationError):
            ledger.record_phase("x", np.asarray([5] * 5), np.asarray([0] * 5))


class TestProbeReport:
    def test_from_oracle(self, oracle):
        oracle.probe_block(np.asarray([0]), np.asarray([0, 1, 2, 3]))
        report = ProbeReport.from_oracle(oracle, budget=2)
        assert report.max_probes == 4
        assert report.total_probes == 4
        assert report.max_requests == 4
        assert report.augmentation_factor() == pytest.approx(2.0)

    def test_requests_fall_back_to_probes(self):
        report = ProbeReport(per_player=np.asarray([3, 1]), budget=1)
        assert report.max_requests == 3
        assert report.mean_requests == pytest.approx(2.0)

    def test_augmentation_requires_positive_budget(self):
        report = ProbeReport(per_player=np.asarray([1]), budget=0)
        with pytest.raises(ConfigurationError):
            report.augmentation_factor()


class TestErrorReport:
    def test_honest_only_statistics(self):
        report = ErrorReport(
            per_player=np.asarray([1, 100, 3]),
            optimal_per_player=np.asarray([2, 2, 2]),
            honest_mask=np.asarray([True, False, True]),
        )
        assert report.max_error == 3
        assert report.mean_error == pytest.approx(2.0)
        assert report.median_error == pytest.approx(2.0)
        assert report.max_approximation_ratio == pytest.approx(1.5)

    def test_ratio_guards_zero_optimal(self):
        report = ErrorReport(
            per_player=np.asarray([4]),
            optimal_per_player=np.asarray([0]),
            honest_mask=np.asarray([True]),
        )
        assert report.max_approximation_ratio == pytest.approx(4.0)


class TestProtocolReport:
    def test_hamming_errors_alignment(self):
        with pytest.raises(ConfigurationError):
            hamming_errors(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_protocol_report_summary(self, oracle):
        truth = oracle.ground_truth()
        predictions = truth.copy()
        predictions[0, :2] ^= 1
        report = protocol_report(
            "test",
            predictions,
            oracle,
            budget=4,
            optimal_per_player=np.full(truth.shape[0], 2),
        )
        summary = report.summary()
        assert summary["max_error"] == 2.0
        assert summary["max_ratio"] == pytest.approx(1.0)
        assert "max_requests" in summary

    def test_protocol_report_honest_mask_validation(self, oracle):
        truth = oracle.ground_truth()
        with pytest.raises(ConfigurationError):
            protocol_report(
                "bad",
                truth,
                oracle,
                budget=1,
                optimal_per_player=np.zeros(truth.shape[0]),
                honest_mask=np.asarray([True]),
            )
