"""Tests for the probe oracle: values, accounting, memoisation, budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BudgetExceededError, ConfigurationError
from repro.simulation.oracle import ProbeOracle


@pytest.fixture
def truth(rng):
    return rng.integers(0, 2, size=(8, 12), dtype=np.uint8)


@pytest.fixture
def oracle(truth):
    return ProbeOracle(truth)


class TestConstruction:
    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            ProbeOracle(np.full((2, 2), 3))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ConfigurationError):
            ProbeOracle(np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ProbeOracle(np.zeros((0, 0)))

    def test_truth_is_copied_and_readonly(self, truth):
        oracle = ProbeOracle(truth)
        original = int(truth[0, 0])
        truth[0, 0] ^= 1  # mutate the caller's array after construction
        assert int(oracle.ground_truth()[0, 0]) == original
        with pytest.raises(ValueError):
            oracle.ground_truth()[0, 0] = 1

    def test_enforce_budget_requires_budget(self, truth):
        with pytest.raises(ConfigurationError):
            ProbeOracle(truth, enforce_budget=True)


class TestProbing:
    def test_single_probe_returns_truth(self, oracle, truth):
        assert oracle.probe(3, 5) == int(truth[3, 5])

    def test_probe_objects_values(self, oracle, truth):
        objs = np.asarray([0, 3, 7])
        np.testing.assert_array_equal(oracle.probe_objects(2, objs), truth[2, objs])

    def test_probe_block_values(self, oracle, truth):
        players = np.asarray([1, 4])
        objs = np.asarray([2, 5, 9])
        np.testing.assert_array_equal(
            oracle.probe_block(players, objs), truth[np.ix_(players, objs)]
        )

    def test_probe_pairs_values(self, oracle, truth):
        players = np.asarray([0, 0, 6])
        objs = np.asarray([1, 2, 3])
        np.testing.assert_array_equal(oracle.probe_pairs(players, objs), truth[players, objs])

    def test_out_of_range_rejected(self, oracle):
        with pytest.raises(ConfigurationError):
            oracle.probe(100, 0)
        with pytest.raises(ConfigurationError):
            oracle.probe_objects(0, np.asarray([999]))
        with pytest.raises(ConfigurationError):
            oracle.probe_block(np.asarray([0]), np.asarray([-1]))

    def test_probe_pairs_shape_mismatch(self, oracle):
        with pytest.raises(ConfigurationError):
            oracle.probe_pairs(np.asarray([0, 1]), np.asarray([0]))


class TestAccounting:
    def test_distinct_probes_counted_once(self, oracle):
        oracle.probe(0, 1)
        oracle.probe(0, 1)
        oracle.probe_objects(0, np.asarray([1, 1, 2]))
        assert oracle.probes_used()[0] == 2  # objects 1 and 2

    def test_requests_count_repeats(self, oracle):
        oracle.probe(0, 1)
        oracle.probe(0, 1)
        oracle.probe_objects(0, np.asarray([1, 2]))
        assert oracle.requests_used()[0] == 4

    def test_block_charges_per_player(self, oracle):
        oracle.probe_block(np.asarray([0, 1]), np.asarray([0, 1, 2]))
        counts = oracle.probes_used()
        assert counts[0] == 3 and counts[1] == 3 and counts[2] == 0

    def test_block_memoises_across_calls(self, oracle):
        oracle.probe_block(np.asarray([0]), np.asarray([0, 1, 2]))
        oracle.probe_block(np.asarray([0]), np.asarray([2, 3]))
        assert oracle.probes_used()[0] == 4

    def test_pairs_memoise(self, oracle):
        oracle.probe_pairs(np.asarray([0, 0]), np.asarray([5, 5]))
        assert oracle.probes_used()[0] == 1
        assert oracle.requests_used()[0] == 2

    def test_summaries(self, oracle):
        oracle.probe_block(np.asarray([0, 1]), np.asarray([0, 1]))
        assert oracle.max_probes() == 2
        assert oracle.total_probes() == 4
        assert oracle.mean_probes() == pytest.approx(0.5)
        assert oracle.max_requests() == 2

    def test_reset(self, oracle):
        oracle.probe(0, 0)
        oracle.reset_counts()
        assert oracle.total_probes() == 0
        assert oracle.requests_used().sum() == 0
        oracle.probe(0, 0)
        assert oracle.probes_used()[0] == 1  # memoisation also reset


class TestBudgetEnforcement:
    def test_budget_exceeded_raises(self, truth):
        oracle = ProbeOracle(truth, budget=2, enforce_budget=True)
        oracle.probe_objects(0, np.asarray([0, 1]))
        with pytest.raises(BudgetExceededError) as excinfo:
            oracle.probe(0, 2)
        assert excinfo.value.player == 0
        assert excinfo.value.budget == 2

    def test_budget_not_enforced_by_default(self, truth):
        oracle = ProbeOracle(truth, budget=1)
        oracle.probe_objects(0, np.asarray([0, 1, 2]))
        assert oracle.probes_used()[0] == 3
