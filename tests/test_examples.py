"""Smoke tests for the ``examples/`` scripts.

Each example is a user-facing entry point documented in the README; this
suite runs every one of them as a subprocess at deliberately tiny scales so
a refactor that breaks an example's imports, CLI surface or protocol calls
fails the tier-1 suite instead of a reader's first copy-paste.  Output
content is only sanity-checked (the scripts narrate; exact text is theirs
to change) — the contract is exit code 0 and a non-empty report.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"

#: (script, small-scale argv) — sizes chosen so each run takes seconds.
CASES = [
    (
        "quickstart.py",
        ["--players", "24", "--objects", "32", "--budget", "2",
         "--diameter", "4", "--seed", "0"],
    ),
    (
        "adversarial_showdown.py",
        ["--players", "24", "--objects", "32", "--budget", "2",
         "--diameter", "4", "--seed", "0"],
    ),
    (
        "budget_tradeoff.py",
        ["--players", "32", "--objects", "64", "--seed", "0"],
    ),
    (
        "program_committee.py",
        ["--reviewers", "24", "--papers", "48", "--budget", "2",
         "--disagreement", "8", "--seed", "0"],
    ),
]


@pytest.mark.parametrize(
    "script,argv", CASES, ids=[script for script, _ in CASES]
)
def test_example_runs_clean_at_small_scale(script, argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
