"""Tests for the baseline algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_context, planted_clusters_instance, zero_radius_instance
from repro.baselines.alon import alon_awerbuch_azar_patt_shamir
from repro.baselines.naive import (
    global_majority,
    probe_everything,
    random_guessing,
    solo_probing,
)
from repro.baselines.oracle import ideal_clusters, oracle_clustering
from repro.errors import ProtocolError
from repro.preferences.metrics import prediction_errors, set_diameter


class TestNaiveBaselines:
    def test_random_guessing_costs_no_probes(self, ctx_planted):
        predictions = random_guessing(ctx_planted, seed=0)
        assert predictions.shape == (ctx_planted.n_players, ctx_planted.n_objects)
        assert ctx_planted.oracle.total_probes() == 0

    def test_probe_everything_exact_and_expensive(self, ctx_planted, planted_small):
        predictions = probe_everything(ctx_planted)
        assert prediction_errors(predictions, planted_small.preferences).max() == 0
        assert ctx_planted.oracle.max_probes() == ctx_planted.n_objects

    def test_solo_probing_respects_budget_and_learns_probed_objects(self, ctx_planted, planted_small):
        predictions = solo_probing(ctx_planted, seed=1)
        assert ctx_planted.oracle.max_probes() <= ctx_planted.budget
        errors = prediction_errors(predictions, planted_small.preferences)
        # Far from exact, but better than guessing everything at random in expectation.
        assert errors.max() <= ctx_planted.n_objects

    def test_global_majority_identical_preferences(self, constants):
        # When everyone agrees, the pooled majority is exact wherever probed.
        instance = zero_radius_instance(40, 40, n_clusters=1, seed=2)
        ctx = make_context(instance, budget=8, constants=constants, seed=2)
        predictions = global_majority(ctx, seed=2)
        errors = prediction_errors(predictions, instance.preferences)
        # Objects probed by at least one player are exact; unprobed ones may not be.
        assert errors.mean() < 10

    def test_global_majority_fails_with_heterogeneous_preferences(self, constants):
        instance = planted_clusters_instance(48, 96, n_clusters=4, diameter=4, seed=3)
        ctx = make_context(instance, budget=8, constants=constants, seed=3)
        predictions = global_majority(ctx, seed=3)
        errors = prediction_errors(predictions, instance.preferences)
        assert errors.mean() > 10  # personalisation is lost


class TestOracleSkyline:
    def test_ideal_clusters_recover_planted_structure(self):
        instance = planted_clusters_instance(40, 80, n_clusters=4, diameter=4, seed=4)
        clustering = ideal_clusters(instance.preferences, budget=4)
        assert clustering.n_clusters == 4
        for cluster in clustering.clusters:
            assert set_diameter(instance.preferences, cluster) <= 4

    def test_ideal_clusters_total_assignment(self):
        instance = planted_clusters_instance(30, 30, n_clusters=3, diameter=2, seed=5)
        clustering = ideal_clusters(instance.preferences, budget=3)
        assert np.sort(np.concatenate(clustering.clusters)).tolist() == list(range(30))

    def test_ideal_clusters_invalid_budget(self):
        with pytest.raises(ProtocolError):
            ideal_clusters(np.zeros((4, 4), dtype=np.uint8), 0)

    def test_oracle_clustering_error_is_order_D(self, constants):
        instance = planted_clusters_instance(64, 128, n_clusters=4, diameter=10, seed=6)
        ctx = make_context(instance, budget=4, constants=constants, seed=6)
        predictions = oracle_clustering(ctx)
        errors = prediction_errors(predictions, instance.preferences)
        assert errors.max() <= 2 * 10
        # It only pays the work-sharing probes, never a discovery cost.
        assert ctx.oracle.max_probes() < ctx.n_objects


class TestAlonBaseline:
    def test_error_order_D_on_planted_instance(self, constants):
        instance = planted_clusters_instance(96, 96, n_clusters=4, diameter=8, seed=7)
        ctx = make_context(instance, budget=4, constants=constants, seed=7)
        result = alon_awerbuch_azar_patt_shamir(ctx, diameters=[8.0, 16.0])
        errors = prediction_errors(result.predictions, instance.preferences)
        assert errors.max() <= 5 * 8 + 8
        assert result.candidate_stack.shape == (96, 2, 96)

    def test_probe_requests_exceed_calculate_preferences(self, constants):
        # The headline comparison: on the same schedule, the prior state of the
        # art spends substantially more probe requests (B vs B^2 scaling).
        from repro.core.calculate_preferences import calculate_preferences

        n, m, budget, diameter = 128, 256, 4, 64
        instance = planted_clusters_instance(n, m, n_clusters=budget, diameter=diameter, seed=8)
        schedule = [64.0, 128.0]

        ours_ctx = make_context(instance, budget=budget, constants=constants, seed=8)
        calculate_preferences(ours_ctx, diameters=schedule)
        alon_ctx = make_context(instance, budget=budget, constants=constants, seed=8)
        alon_awerbuch_azar_patt_shamir(alon_ctx, diameters=schedule)

        assert alon_ctx.oracle.max_requests() > ours_ctx.oracle.max_requests()

    def test_empty_schedule_rejected(self, ctx_planted):
        with pytest.raises(ProtocolError):
            alon_awerbuch_azar_patt_shamir(ctx_planted, diameters=[])
