"""Tests for the analysis layer: bounds, reporting, experiment drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import (
    calculate_preferences_probe_bound,
    lower_bound_error,
    rselect_probe_bound,
    small_radius_error_bound,
    small_radius_probe_bound,
    zero_radius_probe_bound,
)
from repro.analysis.experiments import (
    ablation_experiment,
    baseline_comparison_experiment,
    dishonest_sweep_experiment,
    heterogeneous_budget_experiment,
    honest_protocol_experiment,
    leader_election_experiment,
    rselect_experiment,
    sampling_concentration_experiment,
    scaling_experiment,
    small_radius_experiment,
    zero_radius_experiment,
)
from repro.analysis.lower_bound import lower_bound_experiment
from repro.analysis.reporting import (
    ExperimentTable,
    render_markdown,
    render_many,
    render_text,
)
from repro.errors import ConfigurationError, ExperimentError
from repro.simulation.config import ProtocolConstants


class TestBounds:
    def test_monotonicity(self):
        assert rselect_probe_bound(256, 8) > rselect_probe_bound(256, 2)
        assert zero_radius_probe_bound(256, 8) > zero_radius_probe_bound(256, 2)
        assert small_radius_probe_bound(256, 4, 16) > small_radius_probe_bound(256, 4, 4)
        assert calculate_preferences_probe_bound(1024, 4) > calculate_preferences_probe_bound(256, 4)

    def test_small_radius_error_bound(self):
        assert small_radius_error_bound(7) == 35.0

    def test_lower_bound_error(self):
        assert lower_bound_error(32) == 8.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            rselect_probe_bound(0, 2)
        with pytest.raises(ConfigurationError):
            small_radius_error_bound(0)
        with pytest.raises(ConfigurationError):
            lower_bound_error(-1)


class TestReporting:
    def test_add_row_validates_columns(self):
        table = ExperimentTable("EX", "title", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        with pytest.raises(ExperimentError):
            table.add_row(a=1, c=3)
        assert table.column("a") == [1]
        with pytest.raises(ExperimentError):
            table.column("zzz")

    def test_render_text_contains_all_cells(self):
        table = ExperimentTable("EX", "demo", columns=["name", "value"], notes=["a note"])
        table.add_row(name="x", value=1.25)
        table.add_row(name="y", value=None)
        text = render_text(table)
        assert "[EX] demo" in text
        assert "x" in text and "1.25" in text
        assert "note: a note" in text

    def test_render_markdown_table_syntax(self):
        table = ExperimentTable("EX", "demo", columns=["c1", "c2"])
        table.add_row(c1=True, c2=3)
        md = render_markdown(table)
        assert md.startswith("### EX")
        assert "| c1 | c2 |" in md
        assert "| yes | 3 |" in md

    def test_render_many(self):
        t1 = ExperimentTable("A", "one", columns=["x"])
        t2 = ExperimentTable("B", "two", columns=["x"])
        combined = render_many([t1, t2])
        assert "[A] one" in combined and "[B] two" in combined


class TestExperimentDrivers:
    """Each driver runs at toy sizes and must produce a well-formed table."""

    def _check(self, table: ExperimentTable, expected_rows: int | None = None):
        assert table.rows, "experiment produced no rows"
        if expected_rows is not None:
            assert len(table.rows) == expected_rows
        for row in table.rows:
            assert set(row).issubset(set(table.columns))
        render_text(table)
        render_markdown(table)

    def test_e1_rselect(self):
        table = rselect_experiment(n_objects=64, candidate_counts=(2, 4), trials=2, seed=0)
        self._check(table, 2)
        assert max(table.column("max_chosen_distance")) <= 4 * 4

    def test_e2_zero_radius(self):
        table = zero_radius_experiment(n_players=64, n_objects=64, budgets=(4, 8), seed=0)
        self._check(table, 2)
        assert max(table.column("max_error")) <= 2

    def test_e3_small_radius(self):
        table = small_radius_experiment(n_players=64, n_objects=64, budget=4, diameters=(2, 4), seed=0)
        self._check(table, 2)
        for row in table.rows:
            assert row["max_error"] <= row["error_bound_5D"] + 4

    def test_e4_sampling(self):
        table = sampling_concentration_experiment(
            n_players=64, n_objects=128, budget=4, diameter=24, trials=2, seed=0
        )
        self._check(table, 2)

    def test_e5_honest(self):
        table = honest_protocol_experiment(n_players=96, n_objects=192, budget=4, diameter=32, seed=0)
        self._check(table, 5)
        by_algo = {row["algorithm"]: row for row in table.rows}
        assert (
            by_algo["calculate-preferences"]["max_error"]
            < by_algo["random-guessing"]["max_error"]
        )

    def test_e6_dishonest(self):
        table = dishonest_sweep_experiment(
            n_players=96,
            n_objects=192,
            budget=4,
            diameter=32,
            fractions=(0.0, 1.0),
            robust_iterations=2,
            seed=0,
        )
        self._check(table, 2)
        assert table.rows[-1]["robust_max_error"] <= 3 * 32

    def test_e7_lower_bound(self):
        table = lower_bound_experiment(
            n_players=48, n_objects=48, budget=4, diameter=12, trials=2, seed=0
        )
        self._check(table, 3)
        by_algo = {row["algorithm"]: row for row in table.rows}
        assert by_algo["random-guessing"]["mean_error_on_S"] >= by_algo["random-guessing"]["claim2_bound_D_over_4"] * 0.5

    def test_e8_baseline(self):
        table = baseline_comparison_experiment(
            n_players=96, n_objects=192, budget=4, diameter=48, seed=0
        )
        self._check(table, 2)

    def test_e9_leader(self):
        table = leader_election_experiment(n_players=32, fractions=(0.0, 0.3), trials=20, seed=0)
        self._check(table, 2)
        assert table.rows[0]["p_honest_leader"] == 1.0

    def test_e10_scaling(self):
        table = scaling_experiment(sizes=(64, 128), budget=4, seed=0)
        self._check(table, 2)
        for row in table.rows:
            assert row["max_probes"] <= row["probe_everything_cost"]

    def test_e11_heterogeneous(self):
        table = heterogeneous_budget_experiment(n_players=64, n_objects=128, budget=4, seed=0)
        self._check(table, 4)

    def test_e12_ablation(self):
        table = ablation_experiment(n_players=96, n_objects=192, budget=4, diameter=32, seed=0)
        self._check(table, 5)
        by_variant = {row["variant"]: row for row in table.rows}
        assert (
            by_variant["baseline (practical constants)"]["mean_error"]
            <= by_variant["permissive edge threshold (x4)"]["mean_error"]
        )

    def test_invalid_parameters(self):
        with pytest.raises(ExperimentError):
            lower_bound_experiment(trials=0)
        with pytest.raises(ExperimentError):
            rselect_experiment(candidate_counts=(1,))

    def test_constants_profile_threading(self):
        constants = ProtocolConstants.practical().with_overrides(vote_redundancy_factor=1.0)
        table = zero_radius_experiment(n_players=48, n_objects=48, budgets=(4,), constants=constants, seed=0)
        self._check(table, 1)
