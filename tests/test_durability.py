"""Tests for session durability: journals, replay rings, crash recovery.

The load-bearing properties from the durability acceptance criteria:

* **Write-ahead recovery** — after a crash at an *arbitrary* prefix of the
  journaled op sequence (including a torn final record), restart + replay
  rebuilds a session whose board, oracle accounting and subsequent op
  results are bit-identical to a never-crashed session that executed the
  same prefix.
* **Replayable streams** — every published event carries a monotonic
  ``(session, seq)`` cursor; ``subscribe(from_seq=)`` backfills retained
  frames, and a cursor that fell off the ring yields one typed ``gap``
  event (never silent loss) after which a resnapshot restores full state.
* **Reconnecting clients** — connection loss is a typed
  :class:`~repro.errors.ConnectionLost` (with last-seen cursors), never a
  raw ``OSError``; with auto-reconnect the client redials with capped
  backoff, resumes subscriptions from its cursors, and retries idempotent
  ops transparently across a server restart on the same UNIX socket.
* **Restart hygiene** — a stale socket file from a killed server is
  cleared at boot, a live server's socket is never stolen, and graceful
  shutdown broadcasts ``server-shutdown`` and keeps journals recoverable.
* **Bounded-time recovery** — periodic checkpoints snapshot the full
  protocol state behind a checksummed, atomically-written header and the
  journal compacts to the post-checkpoint suffix; recovery from
  checkpoint + tail is bit-identical to full replay and to a
  never-crashed twin, for crash points including mid-checkpoint and
  mid-compaction.  A torn/corrupt checkpoint degrades to full replay (or
  a skipped session when the journal was already compacted) with a typed
  :class:`DurabilityWarning` — never wrong state.
* **Disk-fault hardening** — injected ``journal.append`` /
  ``journal.fsync`` / ``checkpoint.write`` faults degrade durability
  (ephemeral fallback, kept journal) without corrupting session state,
  and a hostile state dir (torn tails, empty files, corrupt headers,
  foreign files) can never crash boot.
* **Admission control** — per-session op quotas and the server-wide
  session cap shed with typed retryable ``quota-exceeded`` frames whose
  ``retry_after_s`` both clients honour.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import ConnectionLost, ExperimentError
from repro.faults import FaultInjector, FaultPlan, PlannedFault, installed
from repro.serve.client import PreferenceClient, ServerSideError
from repro.serve.durability import (
    CheckpointError,
    DurabilityWarning,
    EventRing,
    SessionCheckpoint,
    SessionJournal,
    archive_session_state,
    clear_stale_socket,
    scan_state_dir,
    session_archive_dir,
    session_checkpoint_path,
    session_journal_path,
    session_ordinal,
)
from repro.serve.protocol import QuotaExceeded, ServeError
from repro.serve.server import PreferenceServer
from repro.serve.session import Session, _OpQuota, build_spec

SCENARIO = "zero-radius-exact"

#: A mixed mutating-op script against SCENARIO; every entry is journaled.
OP_SCRIPT = [
    ("probe", {"player": 0, "objects": [0, 1, 2]}),
    ("report", {"channel": "c1", "player": 1, "objects": [0, 1], "values": [1, 0]}),
    ("probe", {"player": 2, "objects": [3, 7]}),
    ("election", {"seed": 5}),
    ("report", {"channel": "c2", "player": 0, "objects": [2, 4], "values": [1, 1]}),
    ("probe", {"player": 0, "objects": [0, 3]}),
]


def _drive(session: Session, ops) -> list:
    """Apply ops through the journaling entry point, returning results."""
    return [session.submit_op(op, dict(params)).result() for op, params in ops]


def _settle(session: Session) -> None:
    """Barrier: wait until prepare + any queued replay have run."""
    session.submit(lambda: None).result()


def _session_state(session: Session) -> tuple:
    """The observable state a recovered session must reproduce exactly."""
    _settle(session)
    context = session.prepared.context
    return (
        context.board.channel_stats(),
        context.oracle.probes_used().tolist(),
    )


def _disk_fault(site: str, action: str, occurrence: int = 0):
    """Ambient injector arming one disk fault at the site's n-th call."""
    plan = FaultPlan(faults=(
        PlannedFault(site=site, point=0, occurrence=occurrence, action=action),
    ))
    return installed(FaultInjector(plan, point=0, attempt=0))


class TestEventRing:
    def test_stamp_assigns_monotonic_seqs(self):
        ring = EventRing(capacity=8)
        frames = [ring.stamp({"event": "e", "n": n}) for n in range(5)]
        assert [f["seq"] for f in frames] == [1, 2, 3, 4, 5]
        assert ring.next_seq == 6
        assert ring.oldest_seq == 1
        assert len(ring) == 5

    def test_capacity_trims_oldest_and_counts_drops(self):
        ring = EventRing(capacity=3)
        for n in range(7):
            ring.stamp({"event": "e", "n": n})
        assert len(ring) == 3
        assert ring.dropped == 4
        assert ring.oldest_seq == 5

    def test_replay_honours_retained_cursor(self):
        ring = EventRing(capacity=8)
        for n in range(5):
            ring.stamp({"event": "e", "n": n})
        frames, resume = ring.replay(3)
        assert resume is None
        assert [f["seq"] for f in frames] == [3, 4, 5]
        # A cursor at next_seq is fully honoured: nothing to replay yet.
        frames, resume = ring.replay(ring.next_seq)
        assert (frames, resume) == ([], None)

    def test_replay_gap_when_cursor_fell_off_the_ring(self):
        ring = EventRing(capacity=3)
        for n in range(7):
            ring.stamp({"event": "e", "n": n})
        frames, resume = ring.replay(1)
        assert resume == ring.oldest_seq == 5
        assert [f["seq"] for f in frames] == [5, 6, 7]

    def test_replay_gap_for_future_cursor(self):
        # A pre-crash cursor beyond the recovered high-water mark: the ring
        # restarts empty at a lower next_seq than the client has seen.
        ring = EventRing(capacity=8, next_seq=4)
        frames, resume = ring.replay(9)
        assert frames == []
        assert resume == 4


class TestSessionJournal:
    def test_create_load_roundtrip(self, tmp_path):
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides={"population.n_players": 16}, seed=7, max_pending=4,
        )
        journal.record_op(1, "probe", {"player": 0, "objects": [0]})
        journal.record_op(2, "report", {"channel": "c", "player": 1,
                                        "objects": [0], "values": [1]})
        journal.record_events_mark(5)
        journal.close()

        loaded = SessionJournal.load(path)
        assert loaded.header["scenario"] == SCENARIO
        assert loaded.header["overrides"] == {"population.n_players": 16}
        assert loaded.header["seed"] == 7
        assert [op for _seq, op, _p in loaded.recovered_ops] == ["probe", "report"]
        assert loaded.next_op_seq == 3
        assert loaded.events_next_seq == 5
        loaded.close()

    def test_torn_tail_mid_op_record_is_dropped(self, tmp_path):
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides=None, seed=0, max_pending=32,
        )
        journal.record_op(1, "probe", {"player": 0, "objects": [0]})
        journal.record_op(2, "probe", {"player": 1, "objects": [1]})
        journal.close()
        # Simulate the crash landing mid-append of op 3.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "op", "seq": 3, "op": "pro')

        loaded = SessionJournal.load(path)
        assert [seq for seq, _op, _p in loaded.recovered_ops] == [1, 2]
        assert loaded.next_op_seq == 3
        loaded.close()

    def test_file_without_header_is_rejected(self, tmp_path):
        path = tmp_path / "sessions" / "bad.jsonl"
        path.parent.mkdir(parents=True)
        path.write_text('{"kind": "op", "seq": 1, "op": "probe", "params": {}}\n')
        with pytest.raises(ExperimentError):
            SessionJournal.load(path)

    def test_events_mark_is_idempotent_per_value(self, tmp_path):
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides=None, seed=0, max_pending=32,
        )
        for mark in (4, 4, 3, 4, 6):
            journal.record_events_mark(mark)
        journal.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + marks 4 and 6 only
        assert SessionJournal.load(path).events_next_seq == 6

    def test_session_ordinal(self):
        assert session_ordinal("s12") == 12
        assert session_ordinal("custom") == 0


class TestCrashRecoveryProperty:
    @pytest.mark.parametrize("prefix", [0, 1, 3, len(OP_SCRIPT)])
    def test_replay_after_crash_prefix_is_bit_identical(self, tmp_path, prefix):
        """Crash after any prefix of journaled ops → replay rebuilds the
        exact session: board, oracle accounting, and every subsequent op
        (including a full run's rows) bit-identical to a never-crashed
        twin that executed the same prefix."""
        spec = build_spec(SCENARIO)
        ops = OP_SCRIPT[:prefix]

        # The "crashed" session: journal everything, then drop it on the
        # floor without closing the journal cleanly (a close would only
        # flush, and every record is already flushed per-line).
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides=None, seed=3, max_pending=32,
        )
        crashed = Session("s1", spec, 3, journal=journal)
        _drive(crashed, ops)
        _settle(crashed)
        crashed._executor.shutdown(wait=True)  # the "crash": no close()

        # The never-crashed twin.
        reference = Session("ref", spec, 3)
        reference_results = _drive(reference, ops)

        # Restart: load the journal, let the new session replay it.
        recovered = Session("s1", spec, 3, journal=SessionJournal.load(path))
        _settle(recovered)
        assert not recovered.replaying
        assert recovered.replayed_ops == len(ops)
        assert _session_state(recovered) == _session_state(reference)
        assert recovered.op_seq == len(ops) + 1  # seq continues, no reuse

        # Replay re-executes the script; spot-check it got the same answers.
        if ops and ops[0][0] == "probe":
            again = recovered.submit_op("probe", dict(OP_SCRIPT[0][1])).result()
            expected = reference.submit_op("probe", dict(OP_SCRIPT[0][1])).result()
            assert again == expected
            assert reference_results[0]["values"] == again["values"]

        # The decisive check: full-run rows are bit-identical.
        run_a = recovered.submit_op("run", {"trials": 2}).result()
        run_b = reference.submit_op("run", {"trials": 2}).result()
        assert run_a["rows"] == run_b["rows"]

        recovered.close(remove_journal=True)
        reference.close()

    def test_replay_applies_dotted_path_overrides(self, tmp_path):
        """The journal header carries the open-time overrides; recovery
        rebuilds the overridden spec, not the registry default."""
        overrides = {"population.n_players": 24}
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides=overrides, seed=1, max_pending=32,
        )
        original = Session("s1", build_spec(SCENARIO, overrides), 1, journal=journal)
        _drive(original, [("probe", {"player": 5, "objects": [0, 1]})])
        _settle(original)
        original._executor.shutdown(wait=True)

        server = PreferenceServer(state_dir=tmp_path)
        server._recover_sessions()
        assert server.recovered_sessions == 1
        recovered = server.sessions["s1"]
        assert int(recovered.spec.population.n_players) == 24
        _settle(recovered)
        assert recovered.replayed_ops == 1
        assert recovered.prepared.context.oracle.probes_used()[5] == 2
        recovered.close(remove_journal=True)


class TestStaleSocket:
    def test_absent_path(self, tmp_path):
        assert clear_stale_socket(tmp_path / "none.sock") == "absent"

    def test_dead_socket_file_is_removed(self, tmp_path):
        path = tmp_path / "dead.sock"
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
        listener.close()  # the file outlives the (SIGKILLed) listener
        assert clear_stale_socket(path) == "removed"
        assert not path.exists()

    def test_live_socket_is_never_stolen(self, tmp_path):
        path = tmp_path / "live.sock"
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
        listener.listen(1)
        try:
            with pytest.raises(OSError):
                clear_stale_socket(path)
            assert path.exists()
        finally:
            listener.close()


def _boot(socket_path, state_dir, **kwargs):
    srv = PreferenceServer(
        socket_path=socket_path, state_dir=state_dir,
        publish_interval_s=0.05, **kwargs,
    )
    thread = threading.Thread(target=srv.run, daemon=True)
    thread.start()
    assert srv.ready.wait(timeout=30)
    return srv, thread


class TestServerRestartAndReconnect:
    def test_restart_recovers_sessions_and_client_resumes(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        state = tmp_path / "state"
        srv, thread = _boot(sock, state)
        client = PreferenceClient(
            sock, reconnect_attempts=40, backoff_base_s=0.02, backoff_cap_s=0.2
        )
        try:
            session = client.open_session(SCENARIO, seed=2)
            client.subscribe(session)
            probe = client.probe(session, player=4, objects=[0, 1, 2])
            client.report(session, "live", 4, [0, 1], [1, 0])
            delta = client.wait_event("board-delta", timeout_s=30)
            assert delta["session"] == session and delta["seq"] >= 1
            pre_cursor = client.last_seen[session]
            assert pre_cursor >= delta["seq"]

            # Graceful stop: subscribers hear about it, journals survive.
            srv.request_shutdown()
            shutdown = client.wait_event("server-shutdown", timeout_s=30)
            assert shutdown["reason"] == "shutdown"
            thread.join(timeout=30)
            assert state.exists()

            # Restart on the same socket + state dir; the next idempotent
            # call rides the reconnect transparently.
            srv2, thread2 = _boot(sock, state)
            pong = client.ping()
            assert pong["durable"] is True
            assert pong["recovered_sessions"] == 1
            assert client.stats["reconnects"] == 1
            assert client.stats["resubscribes"] == 1

            # Oracle accounting carried over: re-probing the pre-crash
            # objects answers identically and is still charged only once
            # (the replay restored them as already-probed), so fresh
            # objects land on top of the pre-crash count, not on zero.
            again = client.probe(session, player=4, objects=[0, 1, 2])
            assert again["values"] == probe["values"]
            assert again["probes_used"] == probe["probes_used"]
            fresh = client.probe(session, player=4, objects=[5, 6])
            assert fresh["probes_used"] == probe["probes_used"] + 2

            # New sessions never collide with recovered names.
            other = client.open_session(SCENARIO, seed=9)
            assert other != session
            assert session_ordinal(other) > session_ordinal(session)

            client.call("close", session=session)
            client.call("close", session=other)
            srv2.request_shutdown()
            thread2.join(timeout=30)
        finally:
            client.close()

    def test_connection_lost_is_typed_without_reconnect(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        srv, thread = _boot(sock, None)
        client = PreferenceClient(sock, auto_reconnect=False)
        try:
            assert client.ping()["durable"] is False
            srv.request_shutdown()
            thread.join(timeout=30)
            with pytest.raises(ConnectionLost) as err:
                for _ in range(3):  # first reads may still drain the farewell
                    client.ping()
            assert isinstance(err.value.last_seen, dict)
        finally:
            client.close()

    def test_subscribe_from_fallen_cursor_gets_typed_gap(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        srv, thread = _boot(sock, None, ring_size=3)
        client = PreferenceClient(sock)
        try:
            session = client.open_session(SCENARIO, seed=0)
            ring = srv.sessions[session].ring
            for n in range(8):  # overflow the 3-deep ring deterministically
                ring.stamp({"event": "telemetry", "session": session, "n": n})

            result = client.subscribe(session, from_seq=1)
            assert result["replayed"] == 3
            assert result["next_seq"] == 9
            gap = client.wait_event("gap", timeout_s=30)
            assert gap["requested_seq"] == 1
            assert gap["resume_seq"] == 6
            assert client.stats["gaps"] == 1
            replayed = [client.wait_event("telemetry", timeout_s=30)["seq"]
                        for _ in range(3)]
            assert replayed == [6, 7, 8]
            assert client.last_seen[session] == 8
            # The documented client response to a gap: resnapshot.
            snap = client.snapshot(session)
            assert snap["session"] == session

            client.call("close", session=session)
            srv.request_shutdown()
            thread.join(timeout=30)
        finally:
            client.close()

    def test_heartbeat_probes_keep_idle_waits_live(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        srv, thread = _boot(sock, None)
        client = PreferenceClient(sock, heartbeat_s=0.1)
        try:
            session = client.open_session(SCENARIO, seed=0)
            client.subscribe(session)
            with pytest.raises(TimeoutError):
                client.wait_event("never-happens", timeout_s=0.8)
            assert client.stats["heartbeats"] >= 1
            assert client.stats["reconnects"] == 0  # server answered them
            client.call("close", session=session)
            srv.request_shutdown()
            thread.join(timeout=30)
        finally:
            client.close()


class TestSessionCheckpoint:
    def _write(self, tmp_path, payload=None, op_seq=7):
        return SessionCheckpoint.write(
            session_checkpoint_path(tmp_path, "s1"),
            session="s1",
            scenario=SCENARIO,
            overrides={"population.n_players": 16},
            seed=3,
            op_seq=op_seq,
            events_next_seq=4,
            prepared=payload if payload is not None else {"state": list(range(8))},
        )

    def test_write_load_restore_roundtrip(self, tmp_path):
        written = self._write(tmp_path, payload={"board": np.arange(6)})
        loaded = SessionCheckpoint.load(written.path)
        assert loaded.op_seq == 7
        assert loaded.events_next_seq == 4
        assert loaded.session == "s1"
        assert loaded.header["scenario"] == SCENARIO
        assert loaded.header["overrides"] == {"population.n_players": 16}
        restored = loaded.restore()
        assert np.array_equal(restored["board"], np.arange(6))
        # Atomic write leaves no temporary behind.
        assert not written.path.with_name(written.path.name + ".tmp").exists()

    def test_corrupt_payload_fails_checksum(self, tmp_path):
        path = self._write(tmp_path).path
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum"):
            SessionCheckpoint.load(path)

    def test_truncated_payload_is_torn(self, tmp_path):
        path = self._write(tmp_path).path
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(CheckpointError, match="torn"):
            SessionCheckpoint.load(path)

    def test_garbage_headers_are_rejected(self, tmp_path):
        path = session_checkpoint_path(tmp_path, "s1")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"all one line, no header separator")
        with pytest.raises(CheckpointError, match="no header"):
            SessionCheckpoint.load(path)
        path.write_bytes(b"not json\npayload")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            SessionCheckpoint.load(path)
        path.write_bytes(b'{"kind": "header"}\npayload')
        with pytest.raises(CheckpointError, match="wrong kind"):
            SessionCheckpoint.load(path)
        with pytest.raises(CheckpointError, match="unreadable"):
            SessionCheckpoint.load(tmp_path / "absent.ckpt")

    def test_unsupported_version_is_rejected(self, tmp_path):
        path = self._write(tmp_path).path
        raw = path.read_bytes()
        newline = raw.find(b"\n")
        header = json.loads(raw[:newline])
        header["version"] = 99
        path.write_bytes(
            json.dumps(header).encode("utf-8") + raw[newline:]
        )
        with pytest.raises(CheckpointError, match="unsupported version"):
            SessionCheckpoint.load(path)

    @pytest.mark.parametrize("action", ["error", "enospc", "short-write"])
    def test_injected_write_faults_leave_no_live_file(self, tmp_path, action):
        with _disk_fault("checkpoint.write", action):
            with pytest.raises(OSError):
                self._write(tmp_path)
        path = session_checkpoint_path(tmp_path, "s1")
        assert not path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_injected_corruption_is_caught_at_read_back(self, tmp_path):
        """A fault that flips bytes *in flight* cannot slip past: the
        header checksum is computed from pristine in-memory bytes, so the
        read-back verification fails before the rename and the previous
        checkpoint stays authoritative."""
        first = self._write(tmp_path, op_seq=5)
        with _disk_fault("checkpoint.write", "corrupt"):
            with pytest.raises(CheckpointError):
                self._write(tmp_path, op_seq=9)
        survivor = SessionCheckpoint.load(first.path)
        assert survivor.op_seq == 5
        assert not first.path.with_name(first.path.name + ".tmp").exists()


class TestJournalCompaction:
    def _journal(self, tmp_path, n_ops=5):
        journal = SessionJournal.create(
            session_journal_path(tmp_path, "s1"), session="s1",
            scenario=SCENARIO, overrides=None, seed=0, max_pending=32,
        )
        for seq in range(1, n_ops + 1):
            journal.record_op(seq, "probe", {"player": 0, "objects": [seq]})
        journal.record_events_mark(9)
        return journal

    def test_compact_drops_prefix_keeps_tail_and_seqs(self, tmp_path):
        journal = self._journal(tmp_path)
        assert journal.compact(3) == 2
        assert journal.compacted_at_seq == 3
        # Appends keep working on the rewritten file.
        journal.record_op(6, "probe", {"player": 1, "objects": [0]})
        journal.close()
        loaded = SessionJournal.load(journal.path)
        assert [seq for seq, _op, _p in loaded.recovered_ops] == [4, 5, 6]
        assert loaded.compacted_at_seq == 3
        assert loaded.events_next_seq == 9  # high-water mark survives
        assert loaded.next_op_seq == 7
        loaded.close()

    def test_compact_to_empty_tail_still_advances_seqs(self, tmp_path):
        journal = self._journal(tmp_path)
        assert journal.compact(5) == 0
        journal.close()
        loaded = SessionJournal.load(journal.path)
        assert loaded.recovered_ops == []
        assert loaded.next_op_seq == 6  # never reuse a compacted seq
        assert loaded.events_next_seq == 9
        loaded.close()

    def test_compaction_fault_keeps_the_full_journal(self, tmp_path):
        journal = self._journal(tmp_path)
        before = journal.path.read_text()
        with _disk_fault("journal.fsync", "error"):
            with pytest.raises(OSError):
                journal.compact(3)
        assert journal.path.read_text() == before
        assert not journal.path.with_name(journal.path.name + ".tmp").exists()
        # The journal stays appendable after the aborted rewrite.
        journal.record_op(6, "probe", {"player": 0, "objects": [0]})
        journal.close()
        loaded = SessionJournal.load(journal.path)
        assert loaded.next_op_seq == 7
        loaded.close()


class TestCheckpointedRecovery:
    """The bounded-time recovery property: checkpoint + tail replay is
    bit-identical to full replay and to a never-crashed twin, for crash
    points including mid-checkpoint and mid-compaction."""

    def _crashed_session(self, tmp_path, ops, checkpoint_every=None):
        journal = SessionJournal.create(
            session_journal_path(tmp_path, "s1"), session="s1",
            scenario=SCENARIO, overrides=None, seed=3, max_pending=32,
        )
        session = Session(
            "s1", build_spec(SCENARIO), 3,
            journal=journal, checkpoint_every=checkpoint_every,
        )
        _drive(session, ops)
        _settle(session)
        session._executor.shutdown(wait=True)  # the "crash": no close()
        return session

    def _reference(self, ops):
        reference = Session("ref", build_spec(SCENARIO), 3)
        _drive(reference, ops)
        return reference

    def _recover(self, tmp_path, checkpoint_every=2):
        server = PreferenceServer(
            state_dir=tmp_path, checkpoint_every=checkpoint_every
        )
        server._recover_sessions()
        return server

    @pytest.mark.parametrize("prefix", [2, 3, 5, 6])
    def test_checkpointed_recovery_is_bit_identical(self, tmp_path, prefix):
        """Crash after any prefix (checkpointing every 2 ops): recovery
        restores the checkpoint, replays only the post-checkpoint tail,
        and matches a never-crashed twin bit for bit — board, oracle
        accounting, seq continuity, and a full run's rows."""
        ops = OP_SCRIPT[:prefix]
        self._crashed_session(tmp_path, ops, checkpoint_every=2)
        assert session_checkpoint_path(tmp_path, "s1").is_file()

        server = self._recover(tmp_path)
        stats = server.recovery_stats
        assert stats["sessions_recovered"] == 1
        assert stats["checkpoint_loads"] == 1
        assert stats["checkpoint_fallbacks"] == 0
        # Compaction bounded the replay to the ops past the checkpoint.
        assert stats["ops_replayed"] == prefix % 2

        recovered = server.sessions["s1"]
        reference = self._reference(ops)
        assert _session_state(recovered) == _session_state(reference)
        assert recovered.op_seq == len(ops) + 1  # seq continues, no reuse
        run_a = recovered.submit_op("run", {"trials": 2}).result()
        run_b = reference.submit_op("run", {"trials": 2}).result()
        assert run_a["rows"] == run_b["rows"]
        recovered.close(remove_journal=True)
        reference.close()

    def test_torn_checkpoint_tmp_from_mid_write_crash_is_ignored(self, tmp_path):
        """A crash mid-checkpoint leaves only a torn ``.ckpt.tmp``; it is
        never mistaken for (or promoted to) a live checkpoint, and the
        session recovers by full replay with no fallback warning."""
        ops = OP_SCRIPT[:3]
        self._crashed_session(tmp_path, ops)
        ckpt = session_checkpoint_path(tmp_path, "s1")
        ckpt.with_name(ckpt.name + ".tmp").write_bytes(b'{"kind":"checkpoi')

        server = self._recover(tmp_path)
        assert server.recovery_stats == {
            "sessions_recovered": 1, "ops_replayed": 3,
            "checkpoint_loads": 0, "checkpoint_fallbacks": 0,
            "sessions_skipped": 0,
        }
        recovered = server.sessions["s1"]
        reference = self._reference(ops)
        assert _session_state(recovered) == _session_state(reference)
        recovered.close(remove_journal=True)
        reference.close()

    def test_mid_compaction_crash_replays_only_past_the_checkpoint(self, tmp_path):
        """Crash in the window between the checkpoint rename and the
        journal rewrite: both files are live and the journal still holds
        every op.  Replay starts strictly after the checkpoint's op_seq —
        and a full-replay recovery of the same journal agrees exactly."""
        journal = SessionJournal.create(
            session_journal_path(tmp_path, "s1"), session="s1",
            scenario=SCENARIO, overrides=None, seed=3, max_pending=32,
        )
        session = Session("s1", build_spec(SCENARIO), 3, journal=journal)
        _drive(session, OP_SCRIPT[:4])
        _settle(session)
        # Write the checkpoint but fail the compaction — exactly the
        # mid-compaction crash window.
        with _disk_fault("journal.fsync", "error"):
            with pytest.warns(DurabilityWarning, match="compaction failed"):
                assert session.write_checkpoint() is True
        _drive(session, OP_SCRIPT[4:])
        _settle(session)
        session._executor.shutdown(wait=True)
        path = session_journal_path(tmp_path, "s1")
        full = SessionJournal.load(path)
        assert len(full.recovered_ops) == len(OP_SCRIPT)  # nothing compacted
        full.close()

        server = self._recover(tmp_path)
        assert server.recovery_stats["checkpoint_loads"] == 1
        assert server.recovery_stats["ops_replayed"] == 2  # tail only
        recovered = server.sessions["s1"]
        reference = self._reference(OP_SCRIPT)
        state = _session_state(recovered)
        assert state == _session_state(reference)
        recovered.close(remove_journal=False)

        # Third leg: delete the checkpoint and recover again by pure full
        # replay — same state, so checkpointed recovery changed nothing.
        session_checkpoint_path(tmp_path, "s1").unlink()
        replay_only = self._recover(tmp_path)
        assert replay_only.recovery_stats["checkpoint_loads"] == 0
        assert replay_only.recovery_stats["ops_replayed"] == len(OP_SCRIPT)
        assert _session_state(replay_only.sessions["s1"]) == state
        replay_only.sessions["s1"].close(remove_journal=True)
        reference.close()

    def test_corrupt_checkpoint_falls_back_to_full_replay(self, tmp_path):
        """A checkpoint that fails its checksum degrades to full replay
        (typed warning + fallback counter), never to wrong state."""
        journal = SessionJournal.create(
            session_journal_path(tmp_path, "s1"), session="s1",
            scenario=SCENARIO, overrides=None, seed=3, max_pending=32,
        )
        session = Session("s1", build_spec(SCENARIO), 3, journal=journal)
        ops = OP_SCRIPT[:4]
        _drive(session, ops)
        _settle(session)
        with _disk_fault("journal.fsync", "error"):  # keep the journal full
            with pytest.warns(DurabilityWarning):
                session.write_checkpoint()
        session._executor.shutdown(wait=True)
        ckpt = session_checkpoint_path(tmp_path, "s1")
        raw = bytearray(ckpt.read_bytes())
        raw[-1] ^= 0xFF
        ckpt.write_bytes(bytes(raw))

        with pytest.warns(DurabilityWarning, match="full replay"):
            server = self._recover(tmp_path)
        stats = server.recovery_stats
        assert stats["checkpoint_fallbacks"] == 1
        assert stats["checkpoint_loads"] == 0
        assert stats["ops_replayed"] == len(ops)
        assert stats["sessions_recovered"] == 1
        recovered = server.sessions["s1"]
        reference = self._reference(ops)
        assert _session_state(recovered) == _session_state(reference)
        recovered.close(remove_journal=True)
        reference.close()

    def test_corrupt_checkpoint_with_compacted_journal_skips_session(self, tmp_path):
        """When the journal was compacted, a bad checkpoint means the
        early ops exist nowhere trustworthy: the session is skipped with
        a typed warning — approximately-right state is never served."""
        self._crashed_session(tmp_path, OP_SCRIPT[:4], checkpoint_every=2)
        ckpt = session_checkpoint_path(tmp_path, "s1")
        raw = bytearray(ckpt.read_bytes())
        raw[-1] ^= 0xFF
        ckpt.write_bytes(bytes(raw))

        with pytest.warns(DurabilityWarning, match="cannot be recovered"):
            server = self._recover(tmp_path)
        assert server.sessions == {}
        assert server.recovery_stats["sessions_recovered"] == 0
        assert server.recovery_stats["sessions_skipped"] == 1
        assert server.recovery_stats["checkpoint_fallbacks"] == 1

    def test_recovery_span_and_counters(self, tmp_path):
        self._crashed_session(tmp_path, OP_SCRIPT[:3], checkpoint_every=2)
        server = self._recover(tmp_path)
        report = server.telemetry.snapshot()
        spans = [child["name"] for child in report.spans["children"]]
        assert "serve.recovery" in spans
        counters = report.counters
        assert counters["serve.sessions_recovered"] == 1
        assert counters["serve.checkpoint_loads"] == 1
        assert counters["serve.ops_replayed"] == 1
        server.sessions["s1"].close(remove_journal=True)


class TestDiskFaultDegradation:
    @pytest.mark.parametrize("action", ["error", "enospc", "short-write"])
    def test_journal_append_fault_degrades_to_ephemeral(self, tmp_path, action):
        """A failing append quarantines the log and the session carries
        on ephemeral — the op still executes, state stays correct, and
        the quarantined file never feeds recovery."""
        journal = SessionJournal.create(
            session_journal_path(tmp_path, "s1"), session="s1",
            scenario=SCENARIO, overrides=None, seed=3, max_pending=32,
        )
        session = Session("s1", build_spec(SCENARIO), 3, journal=journal)
        _settle(session)
        reference = Session("ref", build_spec(SCENARIO), 3)
        probe = {"player": 0, "objects": [0, 1, 2]}
        with _disk_fault("journal.append", action):
            with pytest.warns(DurabilityWarning, match="quarantined"):
                result = session.submit_op("probe", dict(probe)).result()
        assert result == reference.submit_op("probe", dict(probe)).result()
        assert session.durability_degraded
        assert session.journal is None
        assert session.describe()["durability_degraded"] is True
        path = session_journal_path(tmp_path, "s1")
        assert path.with_name(path.name + ".broken").is_file()
        assert not path.exists()
        assert scan_state_dir(tmp_path) == []  # quarantine never recovers
        counters = session.telemetry.snapshot().counters
        assert counters["serve.journal_degraded"] == 1
        # Later ops run clean, unjournaled.
        second = session.submit_op("probe", {"player": 1, "objects": [3]})
        expected = reference.submit_op("probe", {"player": 1, "objects": [3]})
        assert second.result() == expected.result()
        session.close()
        reference.close()

    def test_checkpoint_fault_keeps_the_full_journal_then_recovers(self, tmp_path):
        """A failed checkpoint write degrades to "keep the full journal";
        the next clean checkpoint compacts as usual."""
        journal = SessionJournal.create(
            session_journal_path(tmp_path, "s1"), session="s1",
            scenario=SCENARIO, overrides=None, seed=3, max_pending=32,
        )
        session = Session("s1", build_spec(SCENARIO), 3, journal=journal)
        ops = OP_SCRIPT[:3]
        _drive(session, ops)
        _settle(session)
        with _disk_fault("checkpoint.write", "enospc"):
            with pytest.warns(DurabilityWarning, match="checkpoint failed"):
                assert session.write_checkpoint() is False
        assert session.checkpoint_seq == 0
        assert not session_checkpoint_path(tmp_path, "s1").exists()
        counters = session.telemetry.snapshot().counters
        assert counters["serve.checkpoint_errors"] == 1
        # The clean retry checkpoints and compacts.
        assert session.write_checkpoint() is True
        assert session.checkpoint_seq == len(ops)
        session._executor.shutdown(wait=True)

        server = PreferenceServer(state_dir=tmp_path)
        server._recover_sessions()
        assert server.recovery_stats["checkpoint_loads"] == 1
        assert server.recovery_stats["ops_replayed"] == 0
        recovered = server.sessions["s1"]
        reference = Session("ref", build_spec(SCENARIO), 3)
        _drive(reference, ops)
        assert _session_state(recovered) == _session_state(reference)
        recovered.close(remove_journal=True)
        reference.close()


class TestHostileStateDir:
    def test_scan_ignores_everything_but_live_journals(self, tmp_path):
        sessions = tmp_path / "sessions"
        sessions.mkdir(parents=True)
        live = session_journal_path(tmp_path, "s1")
        live.write_text("x\n")
        (sessions / "s2.jsonl.broken").write_text("x\n")
        (sessions / "s3.ckpt").write_bytes(b"x")
        (sessions / "s4.jsonl.tmp").write_text("x\n")
        (sessions / "s5.ckpt.tmp").write_bytes(b"x")
        (sessions / "notes.txt").write_text("hello")
        (sessions / "dir.jsonl").mkdir()  # a directory wearing the name
        archive = sessions / "s9.evicted"
        archive.mkdir()
        (archive / "s9.jsonl").write_text("x\n")
        assert scan_state_dir(tmp_path) == [live]

    def test_scan_of_missing_dir_is_empty(self, tmp_path):
        assert scan_state_dir(tmp_path / "nope") == []

    def test_hostile_entries_never_crash_boot(self, tmp_path):
        """Boot over a state dir full of wreckage: torn tails recover,
        everything unrecoverable is skipped with a typed warning, and the
        healthy sessions come up."""
        sessions = tmp_path / "sessions"
        sessions.mkdir(parents=True)
        # One healthy session with a journaled op.
        good = SessionJournal.create(
            session_journal_path(tmp_path, "good"), session="good",
            scenario=SCENARIO, overrides=None, seed=1, max_pending=32,
        )
        good.record_op(1, "probe", {"player": 0, "objects": [0]})
        good.close()
        # A torn tail: the half-written op is dropped, the session lives.
        torn = SessionJournal.create(
            session_journal_path(tmp_path, "torn"), session="torn",
            scenario=SCENARIO, overrides=None, seed=2, max_pending=32,
        )
        torn.close()
        with open(session_journal_path(tmp_path, "torn"), "a") as handle:
            handle.write('{"kind": "op", "seq": 1, "op"')
        (sessions / "empty.jsonl").write_text("")
        (sessions / "garbage.jsonl").write_text("not json at all\n")
        (sessions / "wrongkind.jsonl").write_text('{"kind": "op", "seq": 1}\n')
        (sessions / "badscenario.jsonl").write_text(json.dumps({
            "kind": "header", "version": 1, "session": "badscenario",
            "scenario": "no-such-scenario", "overrides": {}, "seed": 0,
            "max_pending": 4,
        }) + "\n")
        (sessions / "dir.jsonl").mkdir()

        server = PreferenceServer(state_dir=tmp_path)
        with pytest.warns(DurabilityWarning):
            server._recover_sessions()
        assert sorted(server.sessions) == ["good", "torn"]
        assert server.recovery_stats["sessions_recovered"] == 2
        assert server.recovery_stats["sessions_skipped"] == 4
        assert server.recovery_stats["ops_replayed"] == 1
        for session in server.sessions.values():
            _settle(session)
            assert not session.replaying
            session.close(remove_journal=True)


class TestArchiveLifecycle:
    def test_evict_archives_journal_and_checkpoint(self, tmp_path):
        server = PreferenceServer(state_dir=tmp_path, checkpoint_every=1)
        name = server._op_open({"scenario": SCENARIO, "seed": 1})["session"]
        session = server.sessions[name]
        session.submit_op("probe", {"player": 0, "objects": [0]}).result()
        assert session_checkpoint_path(tmp_path, name).is_file()

        server._evict(session, reason="closed")
        archive = session_archive_dir(tmp_path, name)
        assert (archive / f"{name}.jsonl").is_file()
        assert (archive / f"{name}.ckpt").is_file()
        assert not session_journal_path(tmp_path, name).exists()
        # The recovery scan skips archives: no restart resurrects it.
        assert scan_state_dir(tmp_path) == []
        reboot = PreferenceServer(state_dir=tmp_path)
        reboot._recover_sessions()
        assert reboot.sessions == {}
        assert reboot.recovery_stats["sessions_recovered"] == 0

    def test_archive_of_nothing_returns_none(self, tmp_path):
        assert archive_session_state(tmp_path, "ghost") is None


class TestAdmissionControl:
    def test_quota_bucket_spends_and_refills_at_rate(self):
        quota = _OpQuota(rate=10.0, burst=2)
        assert quota.try_acquire() == 0.0
        assert quota.try_acquire() == 0.0
        wait = quota.try_acquire()
        assert 0.0 < wait <= 0.1 + 1e-6  # one token at 10/s

    def test_quota_rejects_nonpositive_rate(self):
        with pytest.raises(ServeError, match="positive"):
            _OpQuota(rate=0.0)

    def test_quota_exceeded_is_typed_and_pre_execution(self):
        session = Session(
            "s1", build_spec(SCENARIO), 3, ops_per_s=5.0, ops_burst=1
        )
        try:
            _settle(session)
            session.submit_op("probe", {"player": 0, "objects": [0]}).result()
            used = int(session.prepared.context.oracle.probes_used()[0])
            with pytest.raises(QuotaExceeded) as err:
                session.submit_op("probe", {"player": 0, "objects": [1]})
            assert err.value.code == "quota-exceeded"
            assert err.value.retryable is True
            assert 0.05 <= err.value.retry_after_s <= 5.0
            # Refused before journaling or queueing: nothing changed.
            assert int(session.prepared.context.oracle.probes_used()[0]) == used
            # The hinted wait is exact: honouring it succeeds.
            time.sleep(err.value.retry_after_s + 0.05)
            session.submit_op("probe", {"player": 0, "objects": [1]}).result()
        finally:
            session.close()

    def test_reads_bypass_the_quota(self):
        session = Session(
            "s1", build_spec(SCENARIO), 3, ops_per_s=0.1, ops_burst=1
        )
        try:
            _settle(session)
            session.submit_op("report", {
                "channel": "c", "player": 0, "objects": [0], "values": [1],
            }).result()  # spends the whole burst
            for _ in range(3):  # reads are never quota-limited
                session.submit_op("board", {"channel": "c"}).result()
            with pytest.raises(QuotaExceeded):  # mutations still are
                session.submit_op("report", {
                    "channel": "c", "player": 1, "objects": [0], "values": [1],
                })
        finally:
            session.close()

    def test_max_sessions_cap_on_open(self):
        server = PreferenceServer(max_sessions=1)
        name = server._op_open({"scenario": SCENARIO, "seed": 0})["session"]
        with pytest.raises(QuotaExceeded) as err:
            server._op_open({"scenario": SCENARIO, "seed": 1})
        assert err.value.code == "quota-exceeded"
        assert err.value.retry_after_s == 1.0
        assert len(server.sessions) == 1  # no half-created state
        # Closing frees the slot for the retry the hint promised.
        server._evict(server.sessions[name], reason="closed")
        reopened = server._op_open({"scenario": SCENARIO, "seed": 2})
        assert reopened["session"] != name
        server.sessions[reopened["session"]].close()

    def test_clients_honour_quota_sheds_end_to_end(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        srv, thread = _boot(
            sock, None, session_ops_per_s=2.0, session_ops_burst=1,
            max_sessions=2,
        )
        client = PreferenceClient(sock)
        try:
            assert client.ping()["max_sessions"] == 2
            session = client.open_session(SCENARIO, seed=0)
            # The default client sleeps the retry_after_s hint and
            # re-issues; every op lands despite the 1-op burst.
            for n in range(3):
                result = client.probe(session, player=0, objects=[n])
                assert result["values"] is not None
            assert client.stats["sheds"] >= 1
            listing = client.call("sessions")
            assert "recovery" in listing
            (desc,) = [
                s for s in listing["sessions"] if s["session"] == session
            ]
            assert desc["quota"] is True
            assert desc["checkpoint_seq"] == 0  # ephemeral: no checkpoints
            assert desc["durability_degraded"] is False
            # A zero-budget client surfaces the typed refusal instead.
            strict = PreferenceClient(sock, shed_retries=0)
            try:
                with pytest.raises(ServerSideError) as err:
                    for n in range(10):
                        strict.probe(session, player=1, objects=[n])
                assert err.value.code == "quota-exceeded"
                assert err.value.retryable is True
                assert err.value.retry_after_s is not None
                assert err.value.retry_after_s > 0
            finally:
                strict.close()
            client.call("close", session=session)
            srv.request_shutdown()
            thread.join(timeout=30)
        finally:
            client.close()


class TestCheckpointedRestartEndToEnd:
    def test_restart_resumes_from_checkpoint_and_reports_recovery(self, tmp_path):
        """Across a real server restart: the journal is compacted to the
        post-checkpoint tail, recovery loads the checkpoint, ping/serve
        surface the recovery stats, and oracle accounting carries over."""
        sock = str(tmp_path / "repro.sock")
        state = tmp_path / "state"
        srv, thread = _boot(sock, state, checkpoint_every=2)
        client = PreferenceClient(
            sock, reconnect_attempts=40, backoff_base_s=0.02, backoff_cap_s=0.2
        )
        try:
            session = client.open_session(SCENARIO, seed=2)
            for n in range(5):
                client.probe(session, player=0, objects=[n])
            before = client.probe(session, player=1, objects=[0, 1])
            # 6 journaled ops at checkpoint_every=2: compacted at seq 6.
            srv.request_shutdown()
            thread.join(timeout=30)
            assert session_checkpoint_path(state, session).is_file()
            journal = SessionJournal.load(session_journal_path(state, session))
            assert journal.compacted_at_seq == 6
            assert journal.recovered_ops == []  # the whole log compacted away
            journal.close()

            srv2, thread2 = _boot(sock, state, checkpoint_every=2)
            pong = client.ping()
            assert pong["recovery"] == {
                "sessions_recovered": 1, "ops_replayed": 0,
                "checkpoint_loads": 1, "checkpoint_fallbacks": 0,
                "sessions_skipped": 0,
            }
            # Restored oracle memo: the re-probe answers identically and
            # is still charged only once.
            again = client.probe(session, player=1, objects=[0, 1])
            assert again["values"] == before["values"]
            assert again["probes_used"] == before["probes_used"]
            client.call("close", session=session)
            srv2.request_shutdown()
            thread2.join(timeout=30)
        finally:
            client.close()
