"""Tests for session durability: journals, replay rings, crash recovery.

The load-bearing properties from the durability acceptance criteria:

* **Write-ahead recovery** — after a crash at an *arbitrary* prefix of the
  journaled op sequence (including a torn final record), restart + replay
  rebuilds a session whose board, oracle accounting and subsequent op
  results are bit-identical to a never-crashed session that executed the
  same prefix.
* **Replayable streams** — every published event carries a monotonic
  ``(session, seq)`` cursor; ``subscribe(from_seq=)`` backfills retained
  frames, and a cursor that fell off the ring yields one typed ``gap``
  event (never silent loss) after which a resnapshot restores full state.
* **Reconnecting clients** — connection loss is a typed
  :class:`~repro.errors.ConnectionLost` (with last-seen cursors), never a
  raw ``OSError``; with auto-reconnect the client redials with capped
  backoff, resumes subscriptions from its cursors, and retries idempotent
  ops transparently across a server restart on the same UNIX socket.
* **Restart hygiene** — a stale socket file from a killed server is
  cleared at boot, a live server's socket is never stolen, and graceful
  shutdown broadcasts ``server-shutdown`` and keeps journals recoverable.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import ConnectionLost, ExperimentError
from repro.serve.client import PreferenceClient
from repro.serve.durability import (
    EventRing,
    SessionJournal,
    clear_stale_socket,
    session_journal_path,
    session_ordinal,
)
from repro.serve.server import PreferenceServer
from repro.serve.session import Session, build_spec

SCENARIO = "zero-radius-exact"

#: A mixed mutating-op script against SCENARIO; every entry is journaled.
OP_SCRIPT = [
    ("probe", {"player": 0, "objects": [0, 1, 2]}),
    ("report", {"channel": "c1", "player": 1, "objects": [0, 1], "values": [1, 0]}),
    ("probe", {"player": 2, "objects": [3, 7]}),
    ("election", {"seed": 5}),
    ("report", {"channel": "c2", "player": 0, "objects": [2, 4], "values": [1, 1]}),
    ("probe", {"player": 0, "objects": [0, 3]}),
]


def _drive(session: Session, ops) -> list:
    """Apply ops through the journaling entry point, returning results."""
    return [session.submit_op(op, dict(params)).result() for op, params in ops]


def _settle(session: Session) -> None:
    """Barrier: wait until prepare + any queued replay have run."""
    session.submit(lambda: None).result()


def _session_state(session: Session) -> tuple:
    """The observable state a recovered session must reproduce exactly."""
    _settle(session)
    context = session.prepared.context
    return (
        context.board.channel_stats(),
        context.oracle.probes_used().tolist(),
    )


class TestEventRing:
    def test_stamp_assigns_monotonic_seqs(self):
        ring = EventRing(capacity=8)
        frames = [ring.stamp({"event": "e", "n": n}) for n in range(5)]
        assert [f["seq"] for f in frames] == [1, 2, 3, 4, 5]
        assert ring.next_seq == 6
        assert ring.oldest_seq == 1
        assert len(ring) == 5

    def test_capacity_trims_oldest_and_counts_drops(self):
        ring = EventRing(capacity=3)
        for n in range(7):
            ring.stamp({"event": "e", "n": n})
        assert len(ring) == 3
        assert ring.dropped == 4
        assert ring.oldest_seq == 5

    def test_replay_honours_retained_cursor(self):
        ring = EventRing(capacity=8)
        for n in range(5):
            ring.stamp({"event": "e", "n": n})
        frames, resume = ring.replay(3)
        assert resume is None
        assert [f["seq"] for f in frames] == [3, 4, 5]
        # A cursor at next_seq is fully honoured: nothing to replay yet.
        frames, resume = ring.replay(ring.next_seq)
        assert (frames, resume) == ([], None)

    def test_replay_gap_when_cursor_fell_off_the_ring(self):
        ring = EventRing(capacity=3)
        for n in range(7):
            ring.stamp({"event": "e", "n": n})
        frames, resume = ring.replay(1)
        assert resume == ring.oldest_seq == 5
        assert [f["seq"] for f in frames] == [5, 6, 7]

    def test_replay_gap_for_future_cursor(self):
        # A pre-crash cursor beyond the recovered high-water mark: the ring
        # restarts empty at a lower next_seq than the client has seen.
        ring = EventRing(capacity=8, next_seq=4)
        frames, resume = ring.replay(9)
        assert frames == []
        assert resume == 4


class TestSessionJournal:
    def test_create_load_roundtrip(self, tmp_path):
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides={"population.n_players": 16}, seed=7, max_pending=4,
        )
        journal.record_op(1, "probe", {"player": 0, "objects": [0]})
        journal.record_op(2, "report", {"channel": "c", "player": 1,
                                        "objects": [0], "values": [1]})
        journal.record_events_mark(5)
        journal.close()

        loaded = SessionJournal.load(path)
        assert loaded.header["scenario"] == SCENARIO
        assert loaded.header["overrides"] == {"population.n_players": 16}
        assert loaded.header["seed"] == 7
        assert [op for _seq, op, _p in loaded.recovered_ops] == ["probe", "report"]
        assert loaded.next_op_seq == 3
        assert loaded.events_next_seq == 5
        loaded.close()

    def test_torn_tail_mid_op_record_is_dropped(self, tmp_path):
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides=None, seed=0, max_pending=32,
        )
        journal.record_op(1, "probe", {"player": 0, "objects": [0]})
        journal.record_op(2, "probe", {"player": 1, "objects": [1]})
        journal.close()
        # Simulate the crash landing mid-append of op 3.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "op", "seq": 3, "op": "pro')

        loaded = SessionJournal.load(path)
        assert [seq for seq, _op, _p in loaded.recovered_ops] == [1, 2]
        assert loaded.next_op_seq == 3
        loaded.close()

    def test_file_without_header_is_rejected(self, tmp_path):
        path = tmp_path / "sessions" / "bad.jsonl"
        path.parent.mkdir(parents=True)
        path.write_text('{"kind": "op", "seq": 1, "op": "probe", "params": {}}\n')
        with pytest.raises(ExperimentError):
            SessionJournal.load(path)

    def test_events_mark_is_idempotent_per_value(self, tmp_path):
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides=None, seed=0, max_pending=32,
        )
        for mark in (4, 4, 3, 4, 6):
            journal.record_events_mark(mark)
        journal.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + marks 4 and 6 only
        assert SessionJournal.load(path).events_next_seq == 6

    def test_session_ordinal(self):
        assert session_ordinal("s12") == 12
        assert session_ordinal("custom") == 0


class TestCrashRecoveryProperty:
    @pytest.mark.parametrize("prefix", [0, 1, 3, len(OP_SCRIPT)])
    def test_replay_after_crash_prefix_is_bit_identical(self, tmp_path, prefix):
        """Crash after any prefix of journaled ops → replay rebuilds the
        exact session: board, oracle accounting, and every subsequent op
        (including a full run's rows) bit-identical to a never-crashed
        twin that executed the same prefix."""
        spec = build_spec(SCENARIO)
        ops = OP_SCRIPT[:prefix]

        # The "crashed" session: journal everything, then drop it on the
        # floor without closing the journal cleanly (a close would only
        # flush, and every record is already flushed per-line).
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides=None, seed=3, max_pending=32,
        )
        crashed = Session("s1", spec, 3, journal=journal)
        _drive(crashed, ops)
        _settle(crashed)
        crashed._executor.shutdown(wait=True)  # the "crash": no close()

        # The never-crashed twin.
        reference = Session("ref", spec, 3)
        reference_results = _drive(reference, ops)

        # Restart: load the journal, let the new session replay it.
        recovered = Session("s1", spec, 3, journal=SessionJournal.load(path))
        _settle(recovered)
        assert not recovered.replaying
        assert recovered.replayed_ops == len(ops)
        assert _session_state(recovered) == _session_state(reference)
        assert recovered.op_seq == len(ops) + 1  # seq continues, no reuse

        # Replay re-executes the script; spot-check it got the same answers.
        if ops and ops[0][0] == "probe":
            again = recovered.submit_op("probe", dict(OP_SCRIPT[0][1])).result()
            expected = reference.submit_op("probe", dict(OP_SCRIPT[0][1])).result()
            assert again == expected
            assert reference_results[0]["values"] == again["values"]

        # The decisive check: full-run rows are bit-identical.
        run_a = recovered.submit_op("run", {"trials": 2}).result()
        run_b = reference.submit_op("run", {"trials": 2}).result()
        assert run_a["rows"] == run_b["rows"]

        recovered.close(remove_journal=True)
        reference.close()

    def test_replay_applies_dotted_path_overrides(self, tmp_path):
        """The journal header carries the open-time overrides; recovery
        rebuilds the overridden spec, not the registry default."""
        overrides = {"population.n_players": 24}
        path = session_journal_path(tmp_path, "s1")
        journal = SessionJournal.create(
            path, session="s1", scenario=SCENARIO,
            overrides=overrides, seed=1, max_pending=32,
        )
        original = Session("s1", build_spec(SCENARIO, overrides), 1, journal=journal)
        _drive(original, [("probe", {"player": 5, "objects": [0, 1]})])
        _settle(original)
        original._executor.shutdown(wait=True)

        server = PreferenceServer(state_dir=tmp_path)
        server._recover_sessions()
        assert server.recovered_sessions == 1
        recovered = server.sessions["s1"]
        assert int(recovered.spec.population.n_players) == 24
        _settle(recovered)
        assert recovered.replayed_ops == 1
        assert recovered.prepared.context.oracle.probes_used()[5] == 2
        recovered.close(remove_journal=True)


class TestStaleSocket:
    def test_absent_path(self, tmp_path):
        assert clear_stale_socket(tmp_path / "none.sock") == "absent"

    def test_dead_socket_file_is_removed(self, tmp_path):
        path = tmp_path / "dead.sock"
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
        listener.close()  # the file outlives the (SIGKILLed) listener
        assert clear_stale_socket(path) == "removed"
        assert not path.exists()

    def test_live_socket_is_never_stolen(self, tmp_path):
        path = tmp_path / "live.sock"
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
        listener.listen(1)
        try:
            with pytest.raises(OSError):
                clear_stale_socket(path)
            assert path.exists()
        finally:
            listener.close()


def _boot(socket_path, state_dir, **kwargs):
    srv = PreferenceServer(
        socket_path=socket_path, state_dir=state_dir,
        publish_interval_s=0.05, **kwargs,
    )
    thread = threading.Thread(target=srv.run, daemon=True)
    thread.start()
    assert srv.ready.wait(timeout=30)
    return srv, thread


class TestServerRestartAndReconnect:
    def test_restart_recovers_sessions_and_client_resumes(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        state = tmp_path / "state"
        srv, thread = _boot(sock, state)
        client = PreferenceClient(
            sock, reconnect_attempts=40, backoff_base_s=0.02, backoff_cap_s=0.2
        )
        try:
            session = client.open_session(SCENARIO, seed=2)
            client.subscribe(session)
            probe = client.probe(session, player=4, objects=[0, 1, 2])
            client.report(session, "live", 4, [0, 1], [1, 0])
            delta = client.wait_event("board-delta", timeout_s=30)
            assert delta["session"] == session and delta["seq"] >= 1
            pre_cursor = client.last_seen[session]
            assert pre_cursor >= delta["seq"]

            # Graceful stop: subscribers hear about it, journals survive.
            srv.request_shutdown()
            shutdown = client.wait_event("server-shutdown", timeout_s=30)
            assert shutdown["reason"] == "shutdown"
            thread.join(timeout=30)
            assert state.exists()

            # Restart on the same socket + state dir; the next idempotent
            # call rides the reconnect transparently.
            srv2, thread2 = _boot(sock, state)
            pong = client.ping()
            assert pong["durable"] is True
            assert pong["recovered_sessions"] == 1
            assert client.stats["reconnects"] == 1
            assert client.stats["resubscribes"] == 1

            # Oracle accounting carried over: re-probing the pre-crash
            # objects answers identically and is still charged only once
            # (the replay restored them as already-probed), so fresh
            # objects land on top of the pre-crash count, not on zero.
            again = client.probe(session, player=4, objects=[0, 1, 2])
            assert again["values"] == probe["values"]
            assert again["probes_used"] == probe["probes_used"]
            fresh = client.probe(session, player=4, objects=[5, 6])
            assert fresh["probes_used"] == probe["probes_used"] + 2

            # New sessions never collide with recovered names.
            other = client.open_session(SCENARIO, seed=9)
            assert other != session
            assert session_ordinal(other) > session_ordinal(session)

            client.call("close", session=session)
            client.call("close", session=other)
            srv2.request_shutdown()
            thread2.join(timeout=30)
        finally:
            client.close()

    def test_connection_lost_is_typed_without_reconnect(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        srv, thread = _boot(sock, None)
        client = PreferenceClient(sock, auto_reconnect=False)
        try:
            assert client.ping()["durable"] is False
            srv.request_shutdown()
            thread.join(timeout=30)
            with pytest.raises(ConnectionLost) as err:
                for _ in range(3):  # first reads may still drain the farewell
                    client.ping()
            assert isinstance(err.value.last_seen, dict)
        finally:
            client.close()

    def test_subscribe_from_fallen_cursor_gets_typed_gap(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        srv, thread = _boot(sock, None, ring_size=3)
        client = PreferenceClient(sock)
        try:
            session = client.open_session(SCENARIO, seed=0)
            ring = srv.sessions[session].ring
            for n in range(8):  # overflow the 3-deep ring deterministically
                ring.stamp({"event": "telemetry", "session": session, "n": n})

            result = client.subscribe(session, from_seq=1)
            assert result["replayed"] == 3
            assert result["next_seq"] == 9
            gap = client.wait_event("gap", timeout_s=30)
            assert gap["requested_seq"] == 1
            assert gap["resume_seq"] == 6
            assert client.stats["gaps"] == 1
            replayed = [client.wait_event("telemetry", timeout_s=30)["seq"]
                        for _ in range(3)]
            assert replayed == [6, 7, 8]
            assert client.last_seen[session] == 8
            # The documented client response to a gap: resnapshot.
            snap = client.snapshot(session)
            assert snap["session"] == session

            client.call("close", session=session)
            srv.request_shutdown()
            thread.join(timeout=30)
        finally:
            client.close()

    def test_heartbeat_probes_keep_idle_waits_live(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        srv, thread = _boot(sock, None)
        client = PreferenceClient(sock, heartbeat_s=0.1)
        try:
            session = client.open_session(SCENARIO, seed=0)
            client.subscribe(session)
            with pytest.raises(TimeoutError):
                client.wait_event("never-happens", timeout_s=0.8)
            assert client.stats["heartbeats"] >= 1
            assert client.stats["reconnects"] == 0  # server answered them
            client.call("close", session=session)
            srv.request_shutdown()
            thread.join(timeout=30)
        finally:
            client.close()
