"""Tests for deterministic fault injection and the resilient trial engine.

The load-bearing properties from the robustness acceptance criteria:

* **Chaos determinism** — a faulted-and-retried run (worker crashes, slow
  workers, transient oracle timeouts, duplicated board posts) is
  bit-identical to a clean ``n_workers=1`` run, for every worker count.
* **Crash-safe resume** — a journal truncated at *every* prefix length
  (including mid-record byte tears) resumes to exactly the full results.
* **Journal dedup** — duplicate records for one point resolve last-wins.
* **Failure semantics** — a failing trial cancels pending siblings and
  raises :class:`ExperimentError` naming the point and arguments (chained);
  a non-picklable trial is rejected at submit time with a clear message.
* **Graceful degradation** — ``robust_calculate_preferences(degrade=True)``
  returns a typed partial result instead of raising when the probe budget
  or fault channel exhausts.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.analysis.runner import run_trials, resume_trials
from repro.core.robust import robust_calculate_preferences
from repro.errors import (
    BudgetExceededError,
    ConfigurationError,
    ExperimentError,
    InjectedCrash,
    OracleTimeout,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    PlannedFault,
    TrialJournal,
    fault_stats_note,
    installed,
    make_fault_plan,
    plan_from_spec,
    point_key,
)
from repro.preferences.generators import planted_clusters_instance
from repro.protocols.context import make_context
from repro.scenarios import FaultsSpec, apply_override, get_scenario, scenario_names
from repro.scenarios.engine import run_scenario
from repro.simulation.board import BulletinBoard
from repro.simulation.oracle import ProbeOracle


# ---------------------------------------------------------------------------
# Module-level trial functions (pool workers need picklable callables)
# ---------------------------------------------------------------------------
def _record(x):
    return {"x": x, "y": 2 * x + 1}


def _boom(x):
    if x == 3:
        raise ValueError("kaboom at three")
    return {"x": x}


def _tiny_spec():
    """A small planted scenario: structure of the chaos families, test cost."""
    spec = get_scenario("crashy-workers")
    spec = apply_override(spec, "population.n_players", 48)
    spec = apply_override(spec, "population.n_objects", 64)
    return spec


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_make_fault_plan_is_deterministic_and_picklable(self):
        a = make_fault_plan(8, seed=7, worker_crashes=2, oracle_timeouts=3,
                            board_duplicates=1, board_drops=1)
        b = make_fault_plan(8, seed=7, worker_crashes=2, oracle_timeouts=3,
                            board_duplicates=1, board_drops=1)
        assert a == b
        assert pickle.loads(pickle.dumps(a)) == a
        assert a.n_faults == 7 and bool(a)
        assert all(0 <= f.point < 8 for f in a.faults)

    def test_lookup_addresses_exact_coordinates(self):
        plan = FaultPlan(faults=(
            PlannedFault(site="oracle.probe", point=2, attempt=0, occurrence=3),
        ))
        assert plan.lookup("oracle.probe", 2, 0, 3) is not None
        assert plan.lookup("oracle.probe", 2, 0, 2) is None
        assert plan.lookup("oracle.probe", 2, 1, 3) is None  # retry runs clean
        assert plan.lookup("board.post", 2, 0, 3) is None

    def test_disrupts_flags_crash_and_stall_points_only(self):
        plan = FaultPlan(faults=(
            PlannedFault(site="worker.crash", point=1),
            PlannedFault(site="worker.stall", point=4, param=0.5),
            PlannedFault(site="oracle.probe", point=5),
        ))
        assert plan.disrupts(1, 0) and plan.disrupts(4, 0)
        assert not plan.disrupts(5, 0)  # oracle faults cannot break a pool
        assert not plan.disrupts(1, 1)  # consumed on attempt 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlannedFault(site="nope", point=0)
        with pytest.raises(ConfigurationError):
            PlannedFault(site="oracle.probe", point=-1)
        with pytest.raises(ConfigurationError):
            PlannedFault(site="worker.stall", point=0)  # needs param > 0
        with pytest.raises(ConfigurationError):
            PlannedFault(site="board.post", point=0, action="timeout")
        with pytest.raises(ConfigurationError):
            make_fault_plan(0, seed=1)

    def test_plan_from_spec_reads_counts_duck_typed(self):
        faults = FaultsSpec(worker_crashes=1, oracle_timeouts=2, board_drops=1)
        plan = plan_from_spec(faults, n_points=5, seed=11)
        sites = sorted(f.site for f in plan.faults)
        assert sites == ["board.post", "oracle.probe", "oracle.probe", "worker.crash"]
        assert plan == plan_from_spec(faults, n_points=5, seed=11)


# ---------------------------------------------------------------------------
# Runtime gates: oracle and board under an installed injector
# ---------------------------------------------------------------------------
class TestRuntimeGates:
    def _truth(self):
        rng = np.random.default_rng(0)
        return rng.integers(0, 2, size=(6, 16)).astype(np.uint8)

    def test_oracle_timeout_fires_before_any_state_mutation(self):
        truth = self._truth()
        oracle = ProbeOracle(truth)
        plan = FaultPlan(faults=(PlannedFault(site="oracle.probe", point=0),))
        with installed(FaultInjector(plan, point=0, attempt=0)):
            with pytest.raises(OracleTimeout):
                oracle.probe_objects(1, np.arange(4))
        # The faulted probe left no trace: charging equals a fresh oracle's.
        assert oracle.probes_used().sum() == 0
        clean = ProbeOracle(truth)
        assert np.array_equal(
            oracle.probe_objects(1, np.arange(4)),
            clean.probe_objects(1, np.arange(4)),
        )
        assert np.array_equal(clean.probes_used(), oracle.probes_used())

    def test_oracle_occurrence_counting_targets_the_nth_call(self):
        oracle = ProbeOracle(self._truth())
        plan = FaultPlan(faults=(
            PlannedFault(site="oracle.probe", point=0, occurrence=2),
        ))
        with installed(FaultInjector(plan, point=0, attempt=0)):
            oracle.probe_objects(0, np.arange(2))      # occurrence 0
            oracle.probe_pairs(np.array([1]), np.array([3]))  # occurrence 1
            with pytest.raises(OracleTimeout):
                oracle.probe_block(np.arange(2), np.arange(2))  # occurrence 2

    def test_board_duplicate_post_is_idempotent(self):
        clean = BulletinBoard(n_players=6, n_objects=10)
        chaotic = BulletinBoard(n_players=6, n_objects=10)
        objects = np.array([1, 4, 7])
        values = np.array([1, 0, 1], dtype=np.uint8)
        clean.post_reports("c", 2, objects, values)
        plan = FaultPlan(faults=(
            PlannedFault(site="board.post", point=0, action="duplicate"),
        ))
        with installed(FaultInjector(plan, point=0, attempt=0)):
            chaotic.post_reports("c", 2, objects, values)
        for board_pair in zip(clean.report_matrix("c"), chaotic.report_matrix("c")):
            assert np.array_equal(*board_pair)

    def test_board_drop_silently_discards_the_post(self):
        board = BulletinBoard(n_players=6, n_objects=10)
        plan = FaultPlan(faults=(
            PlannedFault(site="board.post", point=0, action="drop"),
        ))
        with installed(FaultInjector(plan, point=0, attempt=0)):
            board.post_reports("c", 2, np.array([1]), np.array([1], dtype=np.uint8))
        values, posted = board.report_matrix("c")
        assert posted.sum() == 0 and values.sum() == 0

    def test_gates_are_inert_without_an_installed_injector(self):
        oracle = ProbeOracle(self._truth())
        board = BulletinBoard(n_players=6, n_objects=10)
        oracle.probe_objects(0, np.arange(3))
        board.post_reports("c", 0, np.array([0]), np.array([1], dtype=np.uint8))
        assert oracle.probes_used()[0] == 3
        assert board.report_matrix("c")[1].sum() == 1

    def test_injector_events_record_fired_faults(self):
        plan = FaultPlan(faults=(
            PlannedFault(site="board.post", point=3, occurrence=1, action="duplicate"),
        ))
        injector = FaultInjector(plan, point=3, attempt=0)
        assert injector.record("board.post") is None        # occurrence 0
        assert injector.record("board.post") is not None    # occurrence 1
        (event,) = injector.events
        assert event.as_record() == {
            "site": "board.post", "action": "duplicate",
            "point": 3, "attempt": 0, "occurrence": 1,
        }


# ---------------------------------------------------------------------------
# Chaos determinism: faulted + retried == clean serial, bit for bit
# ---------------------------------------------------------------------------
class TestChaosDeterminism:
    N_TRIALS = 5

    def _points(self):
        spec = _tiny_spec()
        from repro.analysis.runner import spawn_seeds

        seeds = spawn_seeds(13, self.N_TRIALS)
        return [(spec, seeds[t], t) for t in range(self.N_TRIALS)]

    def _chaos_plan(self):
        # >=1 worker crash and >=1 transient oracle fault, as the acceptance
        # criterion requires, plus a stall and an idempotent duplicate post.
        return FaultPlan(faults=(
            PlannedFault(site="worker.crash", point=1),
            PlannedFault(site="oracle.probe", point=3, occurrence=2),
            PlannedFault(site="worker.stall", point=0, param=0.05),
            PlannedFault(site="board.post", point=2, occurrence=1,
                         action="duplicate"),
        ))

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_faulted_parallel_equals_clean_serial(self, n_workers, tmp_path):
        points = self._points()
        reference = run_trials(run_scenario, [p[:2] for p in points])
        stats: dict[str, int] = {}
        chaotic = run_trials(
            run_scenario,
            [p[:2] for p in points],
            n_workers=n_workers,
            retries=2,
            fault_plan=self._chaos_plan(),
            journal=tmp_path / f"chaos{n_workers}.jsonl",
            stats=stats,
        )
        assert chaotic == reference
        assert stats["injected"] >= 2 and stats["retried"] >= 2
        assert stats["pool_restarts"] >= 1

    def test_faulted_serial_equals_clean_serial(self):
        points = [p[:2] for p in self._points()]
        reference = run_trials(run_scenario, points)
        chaotic = run_trials(
            run_scenario,
            points,
            retries=2,
            fault_plan=self._chaos_plan(),
        )
        assert chaotic == reference

    def test_duplicate_board_posts_do_not_change_a_full_execution(self):
        spec, seed = self._points()[0][:2]
        reference = run_scenario(spec, seed)
        plan = FaultPlan(faults=tuple(
            PlannedFault(site="board.post", point=0, occurrence=o,
                         action="duplicate")
            for o in (0, 2, 5)
        ))
        with installed(FaultInjector(plan, point=0, attempt=0)):
            chaotic = run_scenario(spec, seed)
        # Row equality covers predictions, probe counts and probe requests.
        assert chaotic == reference


# ---------------------------------------------------------------------------
# Journal: checkpoint, resume, dedup
# ---------------------------------------------------------------------------
class TestJournal:
    def test_resume_from_every_prefix_length(self, tmp_path):
        points = list(range(6))
        clean = run_trials(_record, points)
        full = tmp_path / "full.jsonl"
        assert run_trials(_record, points, journal=full) == clean
        lines = full.read_text().splitlines()
        assert len(lines) == 1 + len(points)  # header + one result per point
        for prefix in range(1, len(lines) + 1):
            partial = tmp_path / f"prefix{prefix}.jsonl"
            partial.write_text("\n".join(lines[:prefix]) + "\n")
            assert resume_trials(partial, trial=_record) == clean

    def test_resume_tolerates_a_torn_final_line(self, tmp_path):
        points = list(range(4))
        clean = run_trials(_record, points)
        full = tmp_path / "full.jsonl"
        run_trials(_record, points, journal=full)
        text = full.read_text()
        for cut in (1, 7, 19):
            torn = tmp_path / f"torn{cut}.jsonl"
            torn.write_text(text[:-cut])
            assert resume_trials(torn, trial=_record) == clean

    def test_resume_resolves_trial_and_points_from_header(self, tmp_path):
        spec = _tiny_spec()
        points = [(spec, 101), (spec, 202)]
        clean = run_trials(run_scenario, points)
        journal = tmp_path / "scenario.jsonl"
        run_trials(run_scenario, points, journal=journal)
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:2]) + "\n")  # header + 1 result
        # No trial, no points: both come back from the header.
        assert resume_trials(journal) == clean

    def test_duplicate_records_resolve_last_wins(self, tmp_path):
        tasks = [(0,), (1,)]
        journal = tmp_path / "dup.jsonl"
        with TrialJournal.attach(journal, _record, tasks) as j:
            key = point_key((0,))
            j.record_result(0, 0, key, {"x": 0, "y": -999})
            j.record_result(0, 0, key, _record(0))
        reopened = TrialJournal.attach(journal, _record, tasks)
        assert reopened.completed == {0: _record(0)}
        reopened.close()
        # And through the engine: the deduped value is returned verbatim.
        assert run_trials(_record, [0, 1], journal=journal) == [
            _record(0), _record(1),
        ]

    def test_journal_of_another_sweep_is_rejected(self, tmp_path):
        journal = tmp_path / "other.jsonl"
        run_trials(_record, [10, 20], journal=journal)
        with pytest.raises(ExperimentError, match="another sweep"):
            run_trials(_record, [11, 21], journal=journal)
        with pytest.raises(ExperimentError, match="refusing to resume"):
            run_trials(_record, [1, 2, 3], journal=journal)  # n_points mismatch

    def test_journal_records_are_results_json_compatible(self, tmp_path):
        journal = tmp_path / "fmt.jsonl"
        run_trials(_record, [5], journal=journal)
        header, result = [json.loads(line) for line in
                          journal.read_text().splitlines()]
        assert header["kind"] == "header" and header["n_points"] == 1
        assert result["kind"] == "result"
        assert result["index"] == 0 and result["result"] == _record(5)
        assert result["key"] == point_key((5,))


# ---------------------------------------------------------------------------
# Failure semantics (satellites 1 and 2)
# ---------------------------------------------------------------------------
class TestFailureSemantics:
    def test_pool_failure_names_point_and_args_and_chains(self):
        with pytest.raises(ExperimentError) as info:
            run_trials(_boom, list(range(6)), n_workers=2)
        assert "point 3" in str(info.value)
        assert "(3,)" in str(info.value)
        assert isinstance(info.value.__cause__, ValueError)

    def test_serial_plain_path_propagates_the_raw_exception(self):
        # Historical contract: no resilience features -> the trial's own
        # exception type, not ExperimentError.
        with pytest.raises(ValueError, match="kaboom"):
            run_trials(_boom, list(range(6)))

    def test_serial_with_retries_wraps_after_exhaustion(self):
        with pytest.raises(ExperimentError, match="point 3"):
            run_trials(_boom, list(range(6)), retries=1)

    def test_non_picklable_trial_rejected_at_submit_time(self):
        with pytest.raises(ExperimentError, match="module-level callable"):
            run_trials(lambda x: x, list(range(4)), n_workers=2)

    def test_retries_absorb_transient_failures(self):
        plan = FaultPlan(faults=(PlannedFault(site="worker.crash", point=2),))
        stats: dict[str, int] = {}
        out = run_trials(_record, list(range(4)), retries=1,
                         fault_plan=plan, stats=stats)
        assert out == [_record(x) for x in range(4)]
        assert stats["injected"] == 1 and stats["retried"] == 1

    def test_retries_zero_still_fails_on_injected_crash(self):
        plan = FaultPlan(faults=(PlannedFault(site="worker.crash", point=2),))
        with pytest.raises(ExperimentError, match="point 2") as info:
            run_trials(_record, list(range(4)), fault_plan=plan)
        assert isinstance(info.value.__cause__, InjectedCrash)

    def test_timeout_resubmits_and_matches_clean_run(self):
        clean = [_record(x) for x in range(4)]
        plan = FaultPlan(faults=(
            PlannedFault(site="worker.stall", point=1, param=5.0),
        ))
        stats: dict[str, int] = {}
        out = run_trials(_record, list(range(4)), n_workers=2, retries=1,
                         timeout_s=0.5, fault_plan=plan, stats=stats)
        assert out == clean
        assert stats["timeouts"] >= 1

    def test_argument_validation(self):
        with pytest.raises(ExperimentError):
            run_trials(_record, [1], retries=-1)
        with pytest.raises(ExperimentError):
            run_trials(_record, [1], timeout_s=0.0)

    def test_stats_note_format(self):
        note = fault_stats_note({"injected": 2, "retried": 3,
                                 "pool_restarts": 1, "timeouts": 0})
        assert note == "faults: injected=2 retried=3 pool_restarts=1 timeouts=0"


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------
class TestGracefulDegradation:
    def _context(self, probe_limit=None):
        instance = planted_clusters_instance(32, 48, seed=5, n_clusters=4,
                                             diameter=8)
        return make_context(instance, budget=4, seed=9,
                            probe_limits=probe_limit)

    def test_budget_exhaustion_raises_without_degrade(self):
        ctx = self._context(probe_limit=2)
        with pytest.raises(BudgetExceededError):
            robust_calculate_preferences(ctx, iterations=2)

    def test_budget_exhaustion_degrades_to_typed_partial_result(self):
        ctx = self._context(probe_limit=2)
        result = robust_calculate_preferences(ctx, iterations=2, degrade=True)
        assert result.partial
        assert result.resolved_players is not None
        assert result.resolved_players.size == 0  # nothing completed
        assert result.predictions.shape == (32, 48)
        assert result.predictions.sum() == 0
        assert len(result.failures) == 2
        assert {f.stage for f in result.failures} == {"iteration"}
        assert all(f.reason == "BudgetExceededError" for f in result.failures)
        assert result.iteration_results == ()

    def test_transient_oracle_fault_degrades_one_iteration(self):
        ctx = self._context()
        plan = FaultPlan(faults=(PlannedFault(site="oracle.probe", point=0),))
        with installed(FaultInjector(plan, point=0, attempt=0)):
            result = robust_calculate_preferences(ctx, iterations=2,
                                                  degrade=True)
        assert result.partial
        assert len(result.iteration_results) == 1  # iteration 0 was dropped
        (failure,) = result.failures
        assert failure.stage == "iteration" and failure.iteration == 0
        assert failure.reason == "OracleTimeout"
        assert np.asarray(result.resolved_players).size == 32
        assert result.predictions.shape == (32, 48)

    def test_clean_run_keeps_backward_compatible_defaults(self):
        ctx = self._context()
        result = robust_calculate_preferences(ctx, iterations=1)
        assert not result.partial
        assert result.failures == ()
        assert result.resolved_players is None


# ---------------------------------------------------------------------------
# Scenario vocabulary
# ---------------------------------------------------------------------------
class TestFaultsSpec:
    def test_registry_gained_the_chaos_families(self):
        names = scenario_names()
        assert len(names) >= 17
        assert "crashy-workers" in names and "flaky-oracle" in names
        assert get_scenario("crashy-workers").faults.worker_crashes == 1
        assert get_scenario("flaky-oracle").faults.oracle_timeouts == 2

    def test_faults_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultsSpec(worker_crashes=-1)
        with pytest.raises(ConfigurationError):
            FaultsSpec(stalls=1, stall_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultsSpec(timeout_s=0.0)
        assert not FaultsSpec().any_faults
        assert FaultsSpec(board_duplicates=1).any_faults

    def test_faults_spec_pickles_and_overrides(self):
        spec = get_scenario("flaky-oracle")
        assert pickle.loads(pickle.dumps(spec)) == spec
        bumped = apply_override(spec, "faults.oracle_timeouts", 5)
        assert bumped.faults.oracle_timeouts == 5
        assert spec.faults.oracle_timeouts == 2


# ---------------------------------------------------------------------------
# Disk-fault plans and gates: the durability sites
# ---------------------------------------------------------------------------


class TestDiskFaultPlansAndGates:
    def test_disk_sites_are_registered_with_their_actions(self):
        from repro.faults import DISK_FAULT_SITES, FAULT_ACTIONS, FAULT_SITES

        assert set(DISK_FAULT_SITES) <= set(FAULT_SITES)
        assert set(DISK_FAULT_SITES) == {
            "journal.append", "journal.fsync", "checkpoint.write",
        }
        assert FAULT_ACTIONS["journal.append"] == ("error", "enospc", "short-write")
        assert FAULT_ACTIONS["journal.fsync"] == ("error",)
        assert "corrupt" in FAULT_ACTIONS["checkpoint.write"]

    def test_planned_fault_validates_actions_per_site(self):
        assert PlannedFault(site="checkpoint.write", point=0).action == "error"
        assert (
            PlannedFault(site="journal.append", point=0, action="enospc").action
            == "enospc"
        )
        with pytest.raises(ConfigurationError, match="not valid"):
            PlannedFault(site="journal.fsync", point=0, action="corrupt")
        with pytest.raises(ConfigurationError, match="not valid"):
            PlannedFault(site="journal.append", point=0, action="drop")

    def test_make_fault_plan_draws_deterministic_disk_faults(self):
        from repro.faults import DISK_FAULT_SITES, FAULT_ACTIONS

        plan_a = make_fault_plan(n_points=4, seed=11, disk_faults=6)
        plan_b = make_fault_plan(n_points=4, seed=11, disk_faults=6)
        assert plan_a == plan_b
        assert plan_a.n_faults == 6
        for fault in plan_a.faults:
            assert fault.site in DISK_FAULT_SITES
            assert fault.action in FAULT_ACTIONS[fault.site]
            assert 0 <= fault.point < 4
        assert make_fault_plan(n_points=4, seed=12, disk_faults=6) != plan_a

    def test_gate_is_inert_without_an_injector_and_counts_with_one(self):
        from repro.faults import disk_fault_gate

        assert disk_fault_gate("journal.append") is None
        plan = FaultPlan(faults=(
            PlannedFault(
                site="journal.fsync", point=0, occurrence=1, action="error"
            ),
        ))
        injector = FaultInjector(plan, point=0, attempt=0)
        with installed(injector):
            assert disk_fault_gate("journal.fsync") is None    # occurrence 0
            assert disk_fault_gate("journal.fsync") == "error"  # occurrence 1
            assert disk_fault_gate("journal.fsync") is None    # past it
        (event,) = injector.events
        assert event.as_record()["site"] == "journal.fsync"
        assert disk_fault_gate("journal.fsync") is None  # uninstalled again

    def test_append_short_write_leaves_a_parseable_torn_tail(self, tmp_path):
        from repro.faults import AppendOnlyLog
        from repro.faults.journal import parse_records

        log = AppendOnlyLog(tmp_path / "log.jsonl")
        log.append({"kind": "header", "n": 0})
        plan = FaultPlan(faults=(
            PlannedFault(site="journal.append", point=0, action="short-write"),
        ))
        with installed(FaultInjector(plan, point=0, attempt=0)):
            with pytest.raises(OSError):
                log.append({"kind": "op", "n": 1})
        log.close()
        raw = (tmp_path / "log.jsonl").read_text()
        assert not raw.endswith("\n")  # genuinely torn on disk
        records = parse_records(raw)
        assert records == [{"kind": "header", "n": 0}]  # prefix survives

    @pytest.mark.parametrize("action", ["error", "enospc"])
    def test_append_errors_leave_no_partial_bytes(self, tmp_path, action):
        from repro.faults import AppendOnlyLog
        from repro.faults.journal import parse_records

        log = AppendOnlyLog(tmp_path / "log.jsonl")
        log.append({"kind": "header", "n": 0})
        plan = FaultPlan(faults=(
            PlannedFault(site="journal.append", point=0, action=action),
        ))
        with installed(FaultInjector(plan, point=0, attempt=0)):
            with pytest.raises(OSError):
                log.append({"kind": "op", "n": 1})
        log.close()
        raw = (tmp_path / "log.jsonl").read_text()
        assert raw.endswith("\n")  # the record is simply absent
        assert parse_records(raw) == [{"kind": "header", "n": 0}]

    def test_fsync_gate_fires_on_the_durability_barrier(self, tmp_path):
        from repro.faults import AppendOnlyLog

        log = AppendOnlyLog(tmp_path / "log.jsonl")
        log.append({"kind": "header", "n": 0})
        plan = FaultPlan(faults=(
            PlannedFault(site="journal.fsync", point=0, action="error"),
        ))
        with installed(FaultInjector(plan, point=0, attempt=0)):
            with pytest.raises(OSError):
                log.fsync()
        log.fsync()  # clean once the fault is consumed
        log.close()
