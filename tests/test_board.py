"""Tests for the bulletin board: attribution, integrity, report channels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BoardOwnershipError, ConfigurationError
from repro.simulation.board import BulletinBoard


@pytest.fixture
def board():
    return BulletinBoard(n_players=6, n_objects=10)


class TestScalarPosts:
    def test_post_and_read(self, board):
        board.post("leader", owner=2, key="seed", value=1234)
        assert board.read("leader", "seed") == 1234
        entry = board.read_entry("leader", "seed")
        assert entry.owner == 2

    def test_read_missing_returns_default(self, board):
        assert board.read("leader", "missing", default="d") == "d"
        assert board.read_entry("leader", "missing") is None

    def test_same_owner_may_overwrite(self, board):
        board.post("c", owner=1, key="k", value=1)
        board.post("c", owner=1, key="k", value=2)
        assert board.read("c", "k") == 2

    def test_other_player_cannot_overwrite(self, board):
        board.post("c", owner=1, key="k", value=1)
        with pytest.raises(BoardOwnershipError):
            board.post("c", owner=3, key="k", value=99)
        assert board.read("c", "k") == 1

    def test_invalid_owner_rejected(self, board):
        with pytest.raises(ConfigurationError):
            board.post("c", owner=10, key="k", value=1)

    def test_entries_iteration(self, board):
        board.post("c", owner=0, key="a", value=1)
        board.post("c", owner=1, key="b", value=2)
        owners = sorted(e.owner for e in board.entries("c"))
        assert owners == [0, 1]


class TestReportChannels:
    def test_post_and_read_reports(self, board):
        board.post_reports("probes", player=3, objects=np.asarray([1, 4]), values=np.asarray([1, 0]))
        values, posted = board.report_matrix("probes")
        assert values[3, 1] == 1 and values[3, 4] == 0
        assert posted[3, 1] and posted[3, 4]
        assert not posted[3, 2]

    def test_reporters_of(self, board):
        board.post_reports("probes", 0, np.asarray([2]), np.asarray([1]))
        board.post_reports("probes", 5, np.asarray([2]), np.asarray([0]))
        np.testing.assert_array_equal(board.reporters_of("probes", 2), [0, 5])

    def test_block_post(self, board):
        players = np.asarray([0, 1])
        objects = np.asarray([3, 4, 5])
        values = np.asarray([[1, 0, 1], [0, 0, 1]], dtype=np.uint8)
        board.post_report_block("blk", players, objects, values)
        got, posted = board.report_matrix("blk")
        np.testing.assert_array_equal(got[np.ix_(players, objects)], values)
        assert posted[np.ix_(players, objects)].all()

    def test_non_binary_rejected(self, board):
        with pytest.raises(ConfigurationError):
            board.post_reports("c", 0, np.asarray([0]), np.asarray([2]))

    def test_misaligned_rejected(self, board):
        with pytest.raises(ConfigurationError):
            board.post_reports("c", 0, np.asarray([0, 1]), np.asarray([1]))
        with pytest.raises(ConfigurationError):
            board.post_report_block(
                "c", np.asarray([0]), np.asarray([0, 1]), np.zeros((2, 2), dtype=np.uint8)
            )

    def test_out_of_range_object_rejected(self, board):
        with pytest.raises(ConfigurationError):
            board.post_reports("c", 0, np.asarray([50]), np.asarray([1]))

    def test_empty_post_is_noop(self, board):
        board.post_reports("c", 0, np.asarray([], dtype=np.int64), np.asarray([], dtype=np.uint8))
        _, posted = board.report_matrix("c")
        assert not posted.any()


class TestChannels:
    def test_channels_listing_and_clear(self, board):
        board.post("a", 0, "k", 1)
        board.post_reports("b", 0, np.asarray([0]), np.asarray([1]))
        assert board.channels() == ["a", "b"]
        board.clear_channel("a")
        assert board.channels() == ["b"]

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            BulletinBoard(0, 5)
        with pytest.raises(ConfigurationError):
            BulletinBoard(5, 0)
