"""Tests for the declarative scenario engine (specs, registry, engine, sweep).

Covers the acceptance criteria of the scenario subsystem: registry
completeness (≥ 10 families, ≥ 4 novel), spec→trial determinism across
worker counts, the churn/noise dynamics hooks, and a pickle round-trip for
every registered spec.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.players.adversaries import AdaptiveStrategy, build_coalition
from repro.scenarios import (
    CoalitionSpec,
    DynamicsSpec,
    PopulationSpec,
    ProtocolSpec,
    ScenarioSpec,
    apply_override,
    all_scenarios,
    execute,
    get_scenario,
    run_scenario,
    scenario_names,
    sweep_scenario,
)
from repro.scenarios.engine import RESULT_COLUMNS
from repro.scenarios.sweep import expand_grid
from repro.simulation.oracle import ProbeOracle
from repro.simulation.rounds import ChurnTimeline


def _small(spec: ScenarioSpec) -> ScenarioSpec:
    """Shrink a registered spec to test size (keep structure, cut runtime)."""
    spec = apply_override(spec, "population.n_players", 48)
    spec = apply_override(spec, "population.n_objects", 64)
    params = dict(spec.population.params)
    if "diameter" in params:
        params["diameter"] = 4
    if "cluster_sizes" in params:
        params["cluster_sizes"] = [24, 12, 6, 6]
        params["cluster_diameters"] = [4, 8, 16, 2]
    spec = apply_override(spec, "population.params", params)
    if spec.dynamics.initially_active is not None:
        spec = apply_override(spec, "dynamics.initially_active", 40)
        spec = apply_override(spec, "dynamics.arrivals", 4)
        spec = apply_override(spec, "dynamics.departures", 4)
    if spec.protocol.diameter is not None:
        spec = apply_override(spec, "protocol.diameter", 4.0)
    return spec


class TestSpecs:
    def test_validation_rejects_unknowns(self):
        with pytest.raises(ConfigurationError):
            PopulationSpec(generator="bogus")
        with pytest.raises(ConfigurationError):
            ProtocolSpec(name="bogus")
        with pytest.raises(ConfigurationError):
            CoalitionSpec(strategy="bogus", size=2)

    def test_coalition_needs_exactly_one_sizing(self):
        with pytest.raises(ConfigurationError):
            CoalitionSpec(strategy="random")
        with pytest.raises(ConfigurationError):
            CoalitionSpec(strategy="random", size=2, fraction_of_tolerance=1.0)
        assert CoalitionSpec(strategy="random", size=2).resolve_size(100, 8) == 2
        assert (
            CoalitionSpec(strategy="random", fraction_of_tolerance=0.5).resolve_size(
                100, 8
            )
            == 4
        )
        assert (
            CoalitionSpec(strategy="random", fraction_of_players=0.25).resolve_size(
                100, 8
            )
            == 25
        )

    def test_majority_coalition_rejected_at_spec_level(self):
        with pytest.raises(ConfigurationError):
            CoalitionSpec(strategy="invert", fraction_of_players=0.5)

    def test_churn_requires_subset_protocol(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="bad",
                description="churn under a full-population protocol",
                protocol=ProtocolSpec(name="calculate-preferences"),
                dynamics=DynamicsSpec(repetitions=2, departures=2, arrivals=2),
            )

    def test_apply_override_nested_and_tuple_paths(self):
        spec = get_scenario("mixed-coalitions")
        changed = apply_override(spec, "population.n_players", 99)
        assert changed.population.n_players == 99
        changed = apply_override(spec, "coalitions.1.strategy", "random")
        assert changed.coalitions[1].strategy == "random"
        assert spec.coalitions[1].strategy == "hijack"  # original untouched
        with pytest.raises(ConfigurationError):
            apply_override(spec, "population.bogus", 1)
        with pytest.raises(ConfigurationError):
            apply_override(spec, "coalitions.9.size", 1)


class TestRegistry:
    def test_catalog_is_complete(self):
        names = scenario_names()
        assert len(names) >= 10
        novel = [spec for spec in all_scenarios() if spec.novel]
        assert len(novel) >= 4
        # The novel families the issue calls out by name must be present.
        for required in (
            "mixed-coalitions",
            "adaptive-switch",
            "churn-small-radius",
            "noisy-oracle",
            "adversarial-majority",
        ):
            assert required in names
        assert get_scenario("mixed-coalitions").novel

    def test_unknown_scenario_is_a_clear_error(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("does-not-exist")

    def test_every_spec_pickle_round_trips(self):
        for spec in all_scenarios():
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            # The round-tripped spec must also drive the engine: re-validate
            # by applying a no-op override (rebuilds every dataclass).
            rebuilt = apply_override(clone, "population.n_players", clone.population.n_players)
            assert rebuilt == spec

    def test_mixed_coalitions_are_disjoint_and_multi_strategy(self):
        spec = _small(get_scenario("mixed-coalitions"))
        run = execute(spec, seed=11)
        assert run.row["n_coalitions"] == 3
        assert run.row["n_dishonest"] >= 3
        # merged plan members are unique (disjoint coalitions)
        assert np.unique(run.plan.members).size == run.plan.members.size
        assert "+" in run.plan.strategy_name


class TestEngine:
    def test_rows_have_declared_columns(self):
        row = run_scenario(_small(get_scenario("honest-planted")), seed=0)
        assert set(row) == set(RESULT_COLUMNS)

    def test_same_seed_same_row(self):
        spec = _small(get_scenario("noisy-oracle"))
        assert run_scenario(spec, seed=5) == run_scenario(spec, seed=5)

    def test_different_seed_different_instance(self):
        spec = _small(get_scenario("honest-planted"))
        a = execute(spec, seed=0)
        b = execute(spec, seed=1)
        assert not np.array_equal(a.instance.preferences, b.instance.preferences)

    def test_protocol_change_keeps_instance_and_coalition(self):
        # The engine derives instance/coalition streams independently of the
        # protocol field — the property E6 relies on to compare robust vs alon
        # under an identical attack.
        spec = _small(get_scenario("strange-coalition"))
        robust = execute(spec, seed=3)
        baseline = execute(
            apply_override(spec, "protocol.name", "alon"), seed=3
        )
        assert np.array_equal(
            robust.instance.preferences, baseline.instance.preferences
        )
        assert np.array_equal(robust.plan.members, baseline.plan.members)

    def test_adversarial_majority_runs_beyond_tolerance(self):
        spec = _small(get_scenario("adversarial-majority"))
        row = run_scenario(spec, seed=2)
        tolerance = 48 // (3 * spec.protocol.budget)
        assert row["n_dishonest"] > tolerance
        assert 2 * row["n_dishonest"] < 48  # still a strict minority

    def test_adaptive_switch_scenario_runs(self):
        spec = _small(get_scenario("adaptive-switch"))
        row = run_scenario(spec, seed=4)
        assert row["n_dishonest"] >= 1
        assert row["honest_leader_iterations"] is not None


class TestDynamicsHooks:
    def test_noise_flips_observed_but_not_ground_truth(self):
        truth = np.zeros((8, 200), dtype=np.uint8)
        oracle = ProbeOracle(truth, noise_rate=0.2, noise_seed=7)
        observed = oracle.probe_block(
            np.arange(8), np.arange(200, dtype=np.int64)
        )
        assert observed.sum() > 0  # some answers flipped
        assert oracle.ground_truth().sum() == 0  # scoring matrix untouched
        # Re-probing returns the identical (noisy) answers: the channel is a
        # fixed corruption, not fresh randomness per request.
        again = oracle.probe_block(np.arange(8), np.arange(200, dtype=np.int64))
        assert np.array_equal(observed, again)

    def test_noise_is_deterministic_in_seed(self):
        truth = np.zeros((4, 100), dtype=np.uint8)
        a = ProbeOracle(truth, noise_rate=0.1, noise_seed=3)
        b = ProbeOracle(truth, noise_rate=0.1, noise_seed=3)
        objs = np.arange(100, dtype=np.int64)
        assert np.array_equal(a.probe_objects(0, objs), b.probe_objects(0, objs))

    def test_noise_rate_validation(self):
        truth = np.zeros((2, 4), dtype=np.uint8)
        with pytest.raises(ConfigurationError):
            ProbeOracle(truth, noise_rate=0.5)
        with pytest.raises(ConfigurationError):
            ProbeOracle(truth, noise_rate=-0.1)

    def test_churn_timeline_is_deterministic_and_bounded(self):
        a = ChurnTimeline(32, departures=4, arrivals=4, seed=9, initially_active=24)
        b = ChurnTimeline(32, departures=4, arrivals=4, seed=9, initially_active=24)
        assert np.array_equal(a.active_players(), b.active_players())
        for _ in range(5):
            assert np.array_equal(a.step(), b.step())
            assert a.n_active == 24
        # departures capped so the population never collapses
        tiny = ChurnTimeline(4, departures=10, arrivals=0, seed=0)
        tiny.step()
        assert tiny.n_active >= 2

    def test_churn_timeline_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnTimeline(8, departures=-1)
        with pytest.raises(ConfigurationError):
            ChurnTimeline(8, initially_active=0)
        with pytest.raises(ConfigurationError):
            ChurnTimeline(8, initially_active=9)

    def test_churn_scenario_rotates_population(self):
        spec = _small(get_scenario("churn-small-radius"))
        first = execute(spec, seed=1)
        assert first.row["repetitions"] == 3
        assert first.active_players.size == spec.dynamics.initially_active
        # final active set differs from the initial one with overwhelming
        # probability (8 swaps over 2 steps of a 48-player universe)
        no_churn = apply_override(
            apply_override(spec, "dynamics.departures", 0), "dynamics.arrivals", 0
        )
        second = execute(no_churn, seed=1)
        assert not np.array_equal(first.active_players, second.active_players)


class TestAdaptiveStrategy:
    def test_blends_then_attacks(self):
        truth = np.random.default_rng(0).integers(0, 2, size=(6, 32), dtype=np.uint8)
        from repro.players.base import PlayerPool

        pool = PlayerPool(truth)
        strategy = AdaptiveStrategy(switch_after=32, seed=1)
        objects = np.arange(32, dtype=np.int64)
        honest_phase = strategy.report(0, objects, truth[0], pool)
        assert np.array_equal(honest_phase, truth[0])  # blending
        attack_phase = strategy.report(0, objects, truth[0], pool)
        assert np.array_equal(attack_phase, 1 - truth[0])  # inverting attack

    def test_switch_after_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveStrategy(switch_after=-1)


class TestCoalitionValidation:
    def test_majority_coalition_raises(self):
        truth = np.zeros((10, 16), dtype=np.uint8)
        truth[:, 0] = 1
        with pytest.raises(ConfigurationError, match="strict minority"):
            build_coalition(truth, 5, strategy="random", seed=0)
        strategies, plan = build_coalition(truth, 4, strategy="random", seed=0)
        assert len(strategies) == 4

    def test_exclude_keeps_coalitions_disjoint(self):
        rng = np.random.default_rng(0)
        truth = rng.integers(0, 2, size=(40, 32), dtype=np.uint8)
        _, first = build_coalition(truth, 6, strategy="random", seed=1)
        _, second = build_coalition(
            truth, 6, strategy="invert", seed=2, exclude=first.members
        )
        assert np.intersect1d(first.members, second.members).size == 0

    def test_generator_seeds_accepted_uniformly(self):
        truth = np.random.default_rng(3).integers(0, 2, size=(24, 32), dtype=np.uint8)
        for strategy in ("random", "invert", "promote", "smear", "hijack", "strange", "adaptive"):
            gen = np.random.default_rng(42)
            strategies, plan = build_coalition(truth, 3, strategy=strategy, seed=gen)
            assert len(strategies) == 3


class TestSweep:
    def test_expand_grid_order_and_product(self):
        base = get_scenario("honest-planted")
        points = expand_grid(
            base,
            {"population.n_players": [48, 64], "protocol.budget": [2, 4]},
        )
        assert len(points) == 4
        labels = [p[0] for p in points]
        assert labels[0] == {"population.n_players": 48, "protocol.budget": 2}
        assert labels[1] == {"population.n_players": 48, "protocol.budget": 4}
        assert points[0][1].population.n_players == 48
        assert points[3][1].protocol.budget == 4

    def test_sweep_is_deterministic_across_worker_counts(self):
        base = _small(get_scenario("small-radius-planted"))
        grid = {"dynamics.noise_rate": [0.0, 0.1]}
        serial = sweep_scenario(base, grid, trials=2, seed=9, n_workers=1)
        parallel = sweep_scenario(base, grid, trials=2, seed=9, n_workers=3)
        assert serial.rows == parallel.rows
        assert len(serial.rows) == 4

    def test_sweep_grid_validation(self):
        base = _small(get_scenario("honest-planted"))
        with pytest.raises(ConfigurationError):
            sweep_scenario(base, {"population.n_players": []})
        with pytest.raises(ConfigurationError):
            sweep_scenario(base, {}, trials=0)


class TestCliDeterminism:
    def test_run_command_rows_identical_across_workers(self, capsys):
        from repro.scenarios.cli import main

        argv = ["run", "zero-radius-exact", "--seed", "3", "--trials", "2"]
        assert main(argv + ["--workers", "1"]) == 0
        out_serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        out_parallel = capsys.readouterr().out
        assert out_serial == out_parallel

    def test_list_and_describe(self, capsys):
        from repro.scenarios.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mixed-coalitions" in out
        assert main(["describe", "noisy-oracle"]) == 0
        out = capsys.readouterr().out
        assert "noise_rate = 0.02" in out

    def test_describe_surfaces_faults_and_probe_limits(self, capsys):
        from repro.scenarios.cli import main

        assert main(["describe", "zero-radius-exact"]) == 0
        out = capsys.readouterr().out
        # The fault envelope is part of the spec; describe must print it.
        assert "faults:" in out
        assert "worker_crashes = 0" in out
        assert "degrade = False" in out
        # Hard probe caps surface alongside the rest of the protocol block.
        assert "probe_limit = None" in out
        assert "probe_limit_factors = ()" in out

    def test_sweep_command_writes_results_json(self, tmp_path, capsys):
        import json

        from repro.scenarios.cli import main

        code = main([
            "sweep", "zero-radius-exact",
            "--set", "population.n_players=32,48",
            "--seed", "1", "--workers", "1",
            "--json", str(tmp_path), "--slug", "mini",
        ])
        assert code == 0
        payload = json.loads((tmp_path / "mini.json").read_text())
        # Same results-JSON shape the benchmark harness writes (PR 7 added
        # the structured metrics block to the single shared writer).
        assert set(payload) == {
            "slug", "experiment_id", "title", "wall_time_s", "n_rows",
            "columns", "rows", "notes", "recorded_unix_time", "metrics",
        }
        assert payload["n_rows"] == 2

    def test_unknown_scenario_exits_nonzero(self, capsys):
        from repro.scenarios.cli import main

        assert main(["run", "nope"]) == 2

    def test_sweep_grid_file_and_set_merge(self, tmp_path, capsys):
        import json

        from repro.scenarios.cli import main

        grid_path = tmp_path / "grid.json"
        # --set overrides the file's entry for the same dotted path.
        grid_path.write_text(json.dumps({"population.n_players": [64, 96]}))
        code = main([
            "sweep", "zero-radius-exact",
            "--grid", str(grid_path),
            "--set", "population.n_players=32",
            "--seed", "1", "--workers", "1",
            "--json", str(tmp_path), "--slug", "merged",
        ])
        assert code == 0
        payload = json.loads((tmp_path / "merged.json").read_text())
        assert payload["n_rows"] == 1  # the --set value won
        assert any(
            note.startswith("grid: ") and '"population.n_players": [32]' in note
            for note in payload["notes"]
        )

    def test_sweep_without_any_grid_exits(self, tmp_path):
        from repro.scenarios.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "zero-radius-exact"])
        with pytest.raises(SystemExit):
            main(["sweep", "zero-radius-exact", "--grid", str(tmp_path / "missing.json")])

    def test_compare_scenarios_shares_trial_seeds(self, capsys):
        from repro.scenarios.cli import main

        code = main([
            "compare", "zero-radius-exact", "noisy-oracle",
            "--trials", "2", "--seed", "3", "--workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[COMPARE] zero-radius-exact vs noisy-oracle" in out
        # Identical per-trial seeds -> the trial_seed rows diff to zero.
        seed_lines = [l for l in out.splitlines() if "trial_seed" in l]
        assert len(seed_lines) == 2
        assert all(line.rstrip().endswith("0") for line in seed_lines)

    def test_compare_results_json_files(self, tmp_path, capsys):
        import json

        from repro.scenarios.cli import main

        assert main([
            "run", "zero-radius-exact", "--seed", "1", "--workers", "1",
            "--json", str(tmp_path), "--slug", "lhs",
        ]) == 0
        capsys.readouterr()
        code = main([
            "compare", str(tmp_path / "lhs.json"), str(tmp_path / "lhs.json"),
            "--json", str(tmp_path), "--slug", "diff", "--workers", "1",
        ])
        assert code == 0
        payload = json.loads((tmp_path / "diff.json").read_text())
        assert payload["columns"] == ["row", "column", "a", "b", "delta"]
        deltas = {row["delta"] for row in payload["rows"]}
        assert deltas <= {0, 0.0, ""}  # a file diffed against itself
