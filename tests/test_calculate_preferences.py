"""Integration tests for the full CalculatePreferences protocol (honest case)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ProtocolConstants,
    make_context,
    planted_clusters_instance,
    zero_radius_instance,
)
from repro.core.calculate_preferences import (
    calculate_preferences,
    calculate_preferences_for_diameter,
    default_diameter_schedule,
    efficient_diameter_schedule,
)
from repro.errors import ProtocolError
from repro.preferences.metrics import prediction_errors


class TestDiameterSchedules:
    def test_default_schedule_doubles_and_covers_n(self):
        schedule = default_diameter_schedule(100)
        assert schedule[0] == 1
        assert schedule[-1] >= 100
        assert all(b == 2 * a for a, b in zip(schedule, schedule[1:]))

    def test_default_schedule_invalid(self):
        with pytest.raises(ProtocolError):
            default_diameter_schedule(0)

    def test_efficient_schedule_is_subset_of_default(self, constants):
        full = set(default_diameter_schedule(256))
        efficient = efficient_diameter_schedule(256, 256, constants)
        assert set(int(d) for d in efficient).issubset(full)
        assert len(efficient) >= 1
        minimum = constants.sample_prob_factor * constants.log_n(256)
        assert all(d >= minimum for d in efficient)

    def test_efficient_schedule_never_empty(self, constants):
        assert efficient_diameter_schedule(4, 4, constants)


class TestEasyCases:
    def test_probe_everything_when_budget_large(self, constants):
        instance = planted_clusters_instance(16, 16, 2, 2, seed=0)
        ctx = make_context(instance, budget=16, constants=constants, seed=0)
        result = calculate_preferences(ctx)
        assert result.probed_everything
        assert prediction_errors(result.predictions, instance.preferences).max() == 0

    def test_small_diameter_guess_uses_small_radius_directly(self, constants):
        instance = planted_clusters_instance(64, 64, 4, 2, seed=1)
        ctx = make_context(instance, budget=4, constants=constants, seed=1)
        result = calculate_preferences(ctx, diameters=[2.0])
        assert result.traces[0].used_small_radius_directly
        errors = prediction_errors(result.predictions, instance.preferences)
        assert errors.max() <= 5 * 2 + 3


class TestFullProtocol:
    def test_invalid_schedules_rejected(self, ctx_planted):
        with pytest.raises(ProtocolError):
            calculate_preferences(ctx_planted, diameters=[])
        with pytest.raises(ProtocolError):
            calculate_preferences(ctx_planted, diameters=[-1.0])

    def test_error_is_order_planted_diameter(self, constants):
        n, m, budget, diameter = 128, 256, 4, 40
        instance = planted_clusters_instance(n, m, n_clusters=budget, diameter=diameter, seed=2)
        ctx = make_context(instance, budget=budget, constants=constants, seed=2)
        schedule = efficient_diameter_schedule(n, m, constants)
        result = calculate_preferences(ctx, diameters=schedule)
        errors = prediction_errors(result.predictions, instance.preferences)
        assert errors.max() <= 2 * diameter
        assert errors.mean() <= diameter

    def test_clusters_found_at_appropriate_guess(self, constants):
        n, m, budget, diameter = 128, 256, 4, 40
        instance = planted_clusters_instance(n, m, n_clusters=budget, diameter=diameter, seed=3)
        ctx = make_context(instance, budget=budget, constants=constants, seed=3)
        schedule = efficient_diameter_schedule(n, m, constants)
        result = calculate_preferences(ctx, diameters=schedule)
        cluster_counts = [t.n_clusters for t in result.traces if not t.used_small_radius_directly]
        assert max(cluster_counts, default=0) == budget

    def test_candidate_stack_shape(self, constants):
        n, m = 64, 64
        instance = planted_clusters_instance(n, m, 4, 8, seed=4)
        ctx = make_context(instance, budget=4, constants=constants, seed=4)
        schedule = [16.0, 32.0]
        result = calculate_preferences(ctx, diameters=schedule)
        assert result.candidate_stack.shape == (n, 2, m)
        assert result.diameters == (16.0, 32.0)
        assert len(result.traces) == 2

    def test_probe_usage_below_probe_everything_at_scale(self, constants):
        n, m, budget = 256, 512, 8
        instance = planted_clusters_instance(n, m, budget, diameter=n // 4, seed=5)
        ctx = make_context(instance, budget=budget, constants=constants, seed=5)
        schedule = efficient_diameter_schedule(n, m, constants)
        result = calculate_preferences(ctx, diameters=schedule)
        errors = prediction_errors(result.predictions, instance.preferences)
        assert errors.max() <= 2 * (n // 4)
        assert ctx.oracle.max_probes() < m  # strictly cheaper than probing everything

    def test_single_guess_skips_final_rselect(self, constants):
        instance = planted_clusters_instance(64, 64, 4, 8, seed=6)
        ctx = make_context(instance, budget=4, constants=constants, seed=6)
        result = calculate_preferences(ctx, diameters=[32.0])
        np.testing.assert_array_equal(result.predictions, result.candidate_stack[:, 0, :])

    def test_single_iteration_trace_contents(self, constants):
        instance = planted_clusters_instance(96, 96, 4, 24, seed=7)
        ctx = make_context(instance, budget=4, constants=constants, seed=7)
        predictions, trace = calculate_preferences_for_diameter(ctx, 24.0)
        assert predictions.shape == (96, 96)
        assert trace.sample_size >= 1
        assert trace.n_clusters >= 1
        assert sum(trace.cluster_sizes) == 96


class TestZeroDiameterEnd2End:
    def test_identical_clusters_recovered_with_full_schedule(self, constants):
        # Identical-preference clusters have a tiny optimal diameter, which the
        # *full* doubling schedule handles through its small-D guesses (the
        # D < log n SmallRadius dispatch).  The restricted efficient schedule
        # intentionally trades this regime away (documented in
        # efficient_diameter_schedule), so this test uses the default schedule.
        instance = zero_radius_instance(96, 96, n_clusters=4, seed=8)
        ctx = make_context(instance, budget=4, constants=constants, seed=8)
        result = calculate_preferences(ctx, diameters=[1.0, 2.0, 4.0])
        errors = prediction_errors(result.predictions, instance.preferences)
        # With zero-diameter clusters the protocol should be near-exact.
        assert errors.mean() <= 2
