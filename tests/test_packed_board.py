"""Property tests for the packed bulletin board and the packed dataflow.

The board stores report channels bit-packed (object-major rows, eight
players per byte).  Everything here asserts **bit-for-bit** equality with a
dense reference board on random posting histories — values, posted mask,
duplicate-pair resolution, ownership/integrity errors — plus the packed
board-side kernels, the oracle's packed outputs and per-player budgets, and
the worker-count determinism of the parallel diameter search.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BudgetExceededError, ConfigurationError
from repro.perf import (
    PackedBits,
    bit_cover,
    pack_bits,
    packed_gather_columns,
    packed_masked_majority,
    packed_scatter_columns,
    packed_unique_rows,
)
from repro.core.calculate_preferences import (
    calculate_preferences,
    efficient_diameter_schedule,
)
from repro.core.clustering import Clustering, build_neighbor_graph
from repro.core.work_sharing import share_work
from repro.preferences.generators import planted_clusters_instance
from repro.protocols.context import make_context
from repro.scenarios.engine import _resolve_probe_limits, run_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import PopulationSpec, ProtocolSpec, ScenarioSpec
from repro.simulation.board import BulletinBoard
from repro.simulation.oracle import ProbeOracle


class DenseReferenceBoard:
    """The pre-packed board semantics, kept as the property-test reference."""

    def __init__(self, n_players: int, n_objects: int) -> None:
        self.values = np.zeros((n_players, n_objects), dtype=np.uint8)
        self.posted = np.zeros((n_players, n_objects), dtype=bool)

    def post_reports(self, player, objects, values):
        for obj, value in zip(objects, values):
            self.values[player, obj] = value
            self.posted[player, obj] = True

    def post_pairs(self, players, objects, values):
        for player, obj, value in zip(players, objects, values):
            self.values[player, obj] = value
            self.posted[player, obj] = True

    def post_block(self, players, objects, values):
        for i, player in enumerate(players):
            self.post_reports(player, objects, values[i])


# Widths deliberately not multiples of eight: pad bits must never leak.
SHAPES = [(13, 21), (8, 8), (29, 50), (64, 17)]


@pytest.mark.parametrize("n_players,n_objects", SHAPES)
def test_random_posting_history_matches_dense_reference(n_players, n_objects):
    rng = np.random.default_rng(100 * n_players + n_objects)
    board = BulletinBoard(n_players, n_objects)
    reference = DenseReferenceBoard(n_players, n_objects)
    for step in range(30):
        kind = rng.integers(0, 3)
        if kind == 0:
            player = int(rng.integers(0, n_players))
            m = int(rng.integers(1, n_objects + 1))
            objects = rng.integers(0, n_objects, size=m)  # duplicates allowed
            values = rng.integers(0, 2, size=m, dtype=np.uint8)
            board.post_reports("ch", player, objects, values)
            reference.post_reports(player, objects, values)
        elif kind == 1:
            m = int(rng.integers(1, 3 * n_objects))
            players = rng.integers(0, n_players, size=m)
            objects = rng.integers(0, n_objects, size=m)
            values = rng.integers(0, 2, size=m, dtype=np.uint8)
            board.post_report_pairs("ch", players, objects, values)
            reference.post_pairs(players, objects, values)
        else:
            if rng.random() < 0.5:
                players = np.arange(n_players, dtype=np.int64)
            else:
                count = int(rng.integers(1, n_players + 1))
                players = np.sort(rng.choice(n_players, size=count, replace=False))
            count = int(rng.integers(1, n_objects + 1))
            objects = np.sort(rng.choice(n_objects, size=count, replace=False))
            values = rng.integers(0, 2, size=(players.size, objects.size), dtype=np.uint8)
            if rng.random() < 0.5:
                board.post_report_block("ch", players, objects, values)
            else:
                board.post_report_block_packed("ch", players, objects, pack_bits(values))
            reference.post_block(players, objects, values)
        got_values, got_posted = board.report_matrix("ch")
        np.testing.assert_array_equal(got_values, reference.values, err_msg=f"step {step}")
        np.testing.assert_array_equal(got_posted, reference.posted, err_msg=f"step {step}")


def test_duplicate_pairs_resolve_last_wins_like_a_loop():
    board = BulletinBoard(6, 10)
    loop_board = BulletinBoard(6, 10)
    players = np.asarray([2, 2, 3, 2, 3, 2])
    objects = np.asarray([4, 4, 4, 4, 7, 4])
    values = np.asarray([1, 0, 1, 1, 0, 0], dtype=np.uint8)
    board.post_report_pairs("ch", players, objects, values)
    for player, obj, value in zip(players, objects, values):
        loop_board.post_reports("ch", int(player), np.asarray([obj]), np.asarray([value]))
    for got, want in zip(board.report_matrix("ch"), loop_board.report_matrix("ch")):
        np.testing.assert_array_equal(got, want)
    # The final duplicate (2, 4) carries 0 — last wins.
    assert board.report_matrix("ch")[0][2, 4] == 0


def test_consistent_flag_matches_dedup_for_equal_valued_duplicates():
    rng = np.random.default_rng(0)
    truth = rng.integers(0, 2, size=(9, 15), dtype=np.uint8)
    players = rng.integers(0, 9, size=60)
    objects = rng.integers(0, 15, size=60)
    values = truth[players, objects]  # pure function of the cell
    fast, slow = BulletinBoard(9, 15), BulletinBoard(9, 15)
    fast.post_report_pairs("ch", players, objects, values, consistent=True)
    slow.post_report_pairs("ch", players, objects, values)
    for got, want in zip(fast.report_matrix("ch"), slow.report_matrix("ch")):
        np.testing.assert_array_equal(got, want)


class TestOwnershipAndIntegrity:
    def test_out_of_range_indices_rejected_everywhere(self):
        board = BulletinBoard(4, 6)
        with pytest.raises(ConfigurationError):
            board.post_reports("ch", 9, np.asarray([0]), np.asarray([1]))
        with pytest.raises(ConfigurationError):
            board.post_reports("ch", 0, np.asarray([6]), np.asarray([1]))
        with pytest.raises(ConfigurationError):
            board.post_report_pairs("ch", np.asarray([4]), np.asarray([0]), np.asarray([1]))
        with pytest.raises(ConfigurationError):
            board.post_report_block(
                "ch", np.asarray([0]), np.asarray([9]), np.zeros((1, 1), dtype=np.uint8)
            )
        with pytest.raises(ConfigurationError):
            board.post_report_block_packed(
                "ch", np.asarray([7]), np.asarray([0]),
                pack_bits(np.zeros((1, 1), dtype=np.uint8)),
            )

    def test_non_binary_and_misaligned_rejected(self):
        board = BulletinBoard(4, 6)
        with pytest.raises(ConfigurationError):
            board.post_report_pairs("ch", np.asarray([0]), np.asarray([0]), np.asarray([5]))
        with pytest.raises(ConfigurationError):
            board.post_report_block(
                "ch", np.asarray([0, 1]), np.asarray([0]), np.zeros((1, 1), dtype=np.uint8)
            )
        with pytest.raises(ConfigurationError):
            board.post_report_block_packed(
                "ch", np.asarray([0]), np.asarray([0]),
                np.zeros((1, 1), dtype=np.uint8),  # not PackedBits
            )

    def test_scalar_ownership_still_enforced(self):
        from repro.errors import BoardOwnershipError

        board = BulletinBoard(4, 6)
        board.post("leader", owner=1, key="seed", value=7)
        with pytest.raises(BoardOwnershipError):
            board.post("leader", owner=2, key="seed", value=8)


class TestDenseViews:
    def test_copy_false_returns_readonly_cached_views(self):
        board = BulletinBoard(5, 9)
        board.post_reports("ch", 1, np.asarray([0, 3]), np.asarray([1, 0]))
        values, posted = board.report_matrix("ch", copy=False)
        assert not values.flags.writeable and not posted.flags.writeable
        again = board.report_matrix("ch", copy=False)
        assert again[0] is values and again[1] is posted  # cache hit
        with pytest.raises(ValueError):
            values[0, 0] = 1

    def test_cache_invalidated_by_posts(self):
        board = BulletinBoard(5, 9)
        board.post_reports("ch", 0, np.asarray([2]), np.asarray([1]))
        before, _ = board.report_matrix("ch", copy=False)
        board.post_reports("ch", 0, np.asarray([2]), np.asarray([0]))
        after, _ = board.report_matrix("ch", copy=False)
        assert before[0, 2] == 1 and after[0, 2] == 0

    def test_copy_true_returns_private_mutable_arrays(self):
        board = BulletinBoard(5, 9)
        board.post_reports("ch", 0, np.asarray([2]), np.asarray([1]))
        values, posted = board.report_matrix("ch")
        values[0, 2] = 0
        posted[0, 2] = False
        fresh_values, fresh_posted = board.report_matrix("ch")
        assert fresh_values[0, 2] == 1 and fresh_posted[0, 2]

    def test_packed_view_is_live_and_readonly(self):
        board = BulletinBoard(11, 7)
        packed_values, packed_posted = board.report_matrix_packed("ch")
        board.post_reports("ch", 10, np.asarray([3]), np.asarray([1]))
        assert packed_posted.unpack()[3, 10] == 1  # object-major rows
        np.testing.assert_array_equal(
            packed_values.unpack().T, board.report_matrix("ch")[0]
        )
        with pytest.raises(ValueError):
            packed_values.data[0, 0] = 1


class TestBoardReductions:
    def test_reporters_support_and_masked_majority_match_dense(self):
        rng = np.random.default_rng(3)
        n_players, n_objects = 21, 33
        board = BulletinBoard(n_players, n_objects)
        reference = DenseReferenceBoard(n_players, n_objects)
        for _ in range(12):
            m = int(rng.integers(1, 40))
            players = rng.integers(0, n_players, size=m)
            objects = rng.integers(0, n_objects, size=m)
            values = rng.integers(0, 2, size=m, dtype=np.uint8)
            board.post_report_pairs("ch", players, objects, values)
            reference.post_pairs(players, objects, values)
        for obj in range(n_objects):
            np.testing.assert_array_equal(
                board.reporters_of("ch", obj), np.flatnonzero(reference.posted[:, obj])
            )
        np.testing.assert_array_equal(
            board.support_counts("ch"), reference.posted.sum(axis=0)
        )
        majority, support = board.masked_majority("ch")
        likes = (reference.values * reference.posted).sum(axis=0)
        votes = reference.posted.sum(axis=0)
        expected = np.where(votes > 0, 2 * likes >= votes, 1).astype(np.uint8)
        np.testing.assert_array_equal(majority, expected)
        np.testing.assert_array_equal(support, votes)


class TestPackedKernels:
    @pytest.mark.parametrize("n_bits", [1, 7, 8, 9, 64, 65])
    def test_bit_cover_matches_packbits_of_ones(self, n_bits):
        np.testing.assert_array_equal(
            bit_cover(n_bits), np.packbits(np.ones(n_bits, dtype=np.uint8))
        )

    def test_scatter_then_gather_roundtrip(self):
        rng = np.random.default_rng(5)
        rows, width = 17, 43
        dense = rng.integers(0, 2, size=(rows, width), dtype=np.uint8)
        dest = np.packbits(dense, axis=1)
        columns = np.sort(rng.choice(width, size=19, replace=False))
        bits = rng.integers(0, 2, size=(rows, columns.size), dtype=np.uint8)
        packed_scatter_columns(dest, columns, bits)
        dense[:, columns] = bits
        np.testing.assert_array_equal(np.unpackbits(dest, axis=1, count=width), dense)
        np.testing.assert_array_equal(packed_gather_columns(dest, columns), bits)

    def test_scatter_row_subset(self):
        rng = np.random.default_rng(6)
        rows, width = 12, 30
        dense = rng.integers(0, 2, size=(rows, width), dtype=np.uint8)
        dest = np.packbits(dense, axis=1)
        subset = np.asarray([2, 5, 9])
        columns = np.asarray([0, 7, 8, 29])
        bits = rng.integers(0, 2, size=(subset.size, columns.size), dtype=np.uint8)
        packed_scatter_columns(dest, columns, bits, rows=subset)
        dense[subset[:, None], columns[None, :]] = bits
        np.testing.assert_array_equal(np.unpackbits(dest, axis=1, count=width), dense)

    def test_scatter_rejects_unsorted_columns(self):
        from repro.errors import ProtocolError

        dest = np.zeros((2, 2), dtype=np.uint8)
        with pytest.raises(ProtocolError):
            packed_scatter_columns(
                dest, np.asarray([3, 1]), np.zeros((2, 2), dtype=np.uint8)
            )

    def test_masked_majority_kernel_matches_dense(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2, size=(25, 37), dtype=np.uint8)
        posted = rng.integers(0, 2, size=(25, 37), dtype=np.uint8)
        majority, support = packed_masked_majority(pack_bits(values), pack_bits(posted))
        likes = (values & posted).sum(axis=1)
        votes = posted.sum(axis=1)
        np.testing.assert_array_equal(support, votes)
        np.testing.assert_array_equal(
            majority, np.where(votes > 0, 2 * likes >= votes, 1).astype(np.uint8)
        )

    def test_packed_unique_rows_accepts_packed_input(self):
        rng = np.random.default_rng(8)
        rows = rng.integers(0, 2, size=(40, 19), dtype=np.uint8)[
            rng.integers(0, 6, size=40)
        ]
        ref_rows, ref_counts = np.unique(rows, axis=0, return_counts=True)
        got_rows, got_counts = packed_unique_rows(pack_bits(rows))
        np.testing.assert_array_equal(got_rows, ref_rows)
        np.testing.assert_array_equal(got_counts, ref_counts)

    def test_neighbor_graph_accepts_packed_input(self):
        rng = np.random.default_rng(9)
        rows = rng.integers(0, 2, size=(20, 31), dtype=np.uint8)
        np.testing.assert_array_equal(
            build_neighbor_graph(rows, 7.0), build_neighbor_graph(pack_bits(rows), 7.0)
        )


class TestOraclePackedPaths:
    def test_probe_block_packed_equals_dense(self):
        rng = np.random.default_rng(10)
        truth = rng.integers(0, 2, size=(14, 26), dtype=np.uint8)
        dense_oracle, packed_oracle = ProbeOracle(truth), ProbeOracle(truth)
        players = np.arange(14, dtype=np.int64)
        objects = np.sort(rng.choice(26, size=11, replace=False))
        dense = dense_oracle.probe_block(players, objects)
        packed = packed_oracle.probe_block(players, objects, packed=True)
        assert isinstance(packed, PackedBits)
        np.testing.assert_array_equal(packed.unpack(), dense)
        np.testing.assert_array_equal(
            dense_oracle.probes_used(), packed_oracle.probes_used()
        )

    def test_probe_ragged_packed_equals_padded_dense(self):
        rng = np.random.default_rng(11)
        truth = rng.integers(0, 2, size=(9, 30), dtype=np.uint8)
        flat_oracle, packed_oracle = ProbeOracle(truth), ProbeOracle(truth)
        players = np.asarray([0, 2, 5, 8])
        lists = [rng.choice(30, size=size, replace=False) for size in (4, 0, 9, 2)]
        flat = flat_oracle.probe_ragged(players, lists)
        packed = packed_oracle.probe_ragged(players, lists, packed=True)
        lengths = np.asarray([len(objs) for objs in lists])
        rows = np.zeros((4, 9), dtype=np.uint8)
        rows[np.arange(9)[None, :] < lengths[:, None]] = flat
        np.testing.assert_array_equal(packed.unpack(), rows)
        np.testing.assert_array_equal(
            flat_oracle.probes_used(), packed_oracle.probes_used()
        )
        np.testing.assert_array_equal(
            flat_oracle.requests_used(), packed_oracle.requests_used()
        )

    def test_per_player_budget_enforced_for_the_right_player(self):
        truth = np.ones((4, 10), dtype=np.uint8)
        limits = np.asarray([10, 2, 10, 10])
        oracle = ProbeOracle(truth, budget=limits, enforce_budget=True)
        oracle.probe_objects(1, np.asarray([0, 1]))  # exactly at the cap
        with pytest.raises(BudgetExceededError) as info:
            oracle.probe_objects(1, np.asarray([5]))
        assert info.value.player == 1
        # Other players keep probing under their own caps.
        oracle.probe_objects(0, np.arange(10))

    def test_per_player_budget_enforced_on_pair_paths(self):
        truth = np.ones((4, 10), dtype=np.uint8)
        oracle = ProbeOracle(
            truth, budget=np.asarray([1, 8, 8, 8]), enforce_budget=True
        )
        with pytest.raises(BudgetExceededError) as info:
            oracle.probe_pairs(np.asarray([0, 0]), np.asarray([1, 2]))
        assert info.value.player == 0

    def test_per_player_budget_validation(self):
        truth = np.ones((3, 4), dtype=np.uint8)
        with pytest.raises(ConfigurationError):
            ProbeOracle(truth, budget=np.asarray([1, 2]))  # wrong shape
        with pytest.raises(ConfigurationError):
            ProbeOracle(truth, budget=np.asarray([1, 0, 2]))  # non-positive


class TestShareWorkBatching:
    def test_batched_share_work_bit_identical_to_cluster_loop(self):
        instance = planted_clusters_instance(48, 60, n_clusters=3, diameter=6, seed=2)
        clusters = [
            np.flatnonzero(instance.cluster_of == cid) for cid in range(3)
        ]
        assignment = instance.cluster_of.copy()
        clustering = Clustering(assignment=assignment, clusters=clusters)

        def run(batch):
            ctx = make_context(instance, budget=4, seed=77)
            preds = share_work(ctx, clustering, batch_clusters=batch)
            return preds, ctx

        batched, ctx_b = run(True)
        looped, ctx_l = run(False)
        np.testing.assert_array_equal(batched, looped)
        np.testing.assert_array_equal(
            ctx_b.oracle.probes_used(), ctx_l.oracle.probes_used()
        )
        np.testing.assert_array_equal(
            ctx_b.oracle.requests_used(), ctx_l.oracle.requests_used()
        )
        assert ctx_b.board.channels() == ctx_l.board.channels()
        for channel in ctx_b.board.channels():
            for got, want in zip(
                ctx_b.board.report_matrix(channel), ctx_l.board.report_matrix(channel)
            ):
                np.testing.assert_array_equal(got, want)


class TestParallelDiameterSearch:
    @staticmethod
    def _run(instance, schedule, n_workers):
        ctx = make_context(instance, budget=8, seed=11)
        result = calculate_preferences(ctx, diameters=schedule, n_workers=n_workers)
        return result, ctx

    def test_worker_counts_one_and_four_are_bit_identical(self):
        instance = planted_clusters_instance(96, 192, n_clusters=8, diameter=24, seed=5)
        ctx = make_context(instance, budget=8, seed=0)
        schedule = efficient_diameter_schedule(96, 192, ctx.constants)
        serial, ctx1 = self._run(instance, schedule, n_workers=1)
        fanned, ctx4 = self._run(instance, schedule, n_workers=4)
        np.testing.assert_array_equal(serial.predictions, fanned.predictions)
        np.testing.assert_array_equal(serial.candidate_stack, fanned.candidate_stack)
        assert serial.traces == fanned.traces
        # Probe accounting and board state merge back exactly as serial.
        np.testing.assert_array_equal(
            ctx1.oracle.probes_used(), ctx4.oracle.probes_used()
        )
        np.testing.assert_array_equal(
            ctx1.oracle.requests_used(), ctx4.oracle.requests_used()
        )
        assert ctx1.board.channels() == ctx4.board.channels()
        for channel in ctx1.board.channels():
            for got, want in zip(
                ctx1.board.report_matrix(channel), ctx4.board.report_matrix(channel)
            ):
                np.testing.assert_array_equal(got, want)
        # The main shared stream advanced identically (next draw agrees).
        assert int(ctx1.randomness.generator.integers(0, 2**63 - 1)) == int(
            ctx4.randomness.generator.integers(0, 2**63 - 1)
        )


class TestScenarioProbeLimits:
    def test_factors_resolve_per_cluster(self):
        spec = ScenarioSpec(
            name="x",
            description="d",
            population=PopulationSpec(
                n_players=12, n_objects=16, generator="zero-radius",
                params={"n_clusters": 2},
            ),
            protocol=ProtocolSpec(
                name="zero-radius", budget=4,
                probe_limit=10, probe_limit_factors=(2.0, 0.5),
            ),
        )
        instance = planted_clusters_instance(12, 16, n_clusters=2, diameter=2, seed=0)
        limits = _resolve_probe_limits(spec, instance)
        np.testing.assert_array_equal(
            np.unique(limits[instance.cluster_of == 0]), [20]
        )
        np.testing.assert_array_equal(
            np.unique(limits[instance.cluster_of == 1]), [5]
        )

    def test_factors_require_limit_and_positive_values(self):
        with pytest.raises(ConfigurationError):
            ProtocolSpec(probe_limit_factors=(1.0,))
        with pytest.raises(ConfigurationError):
            ProtocolSpec(probe_limit=5, probe_limit_factors=(0.0,))
        with pytest.raises(ConfigurationError):
            ProtocolSpec(probe_limit=0)

    def test_registry_family_runs_inside_its_caps(self):
        row = run_scenario(get_scenario("rationed-budgets"), seed=3)
        assert row["max_probes"] <= int(round(64 * 1.5))
        assert row["max_error"] == 0  # zero-radius clusters are exact

    def test_tight_caps_actually_bite(self):
        spec = get_scenario("rationed-budgets")
        from repro.scenarios.spec import apply_override

        strangled = apply_override(spec, "protocol.probe_limit", 2)
        strangled = apply_override(strangled, "protocol.probe_limit_factors", ())
        with pytest.raises(BudgetExceededError):
            run_scenario(strangled, seed=3)
