"""Tests for Hamming/diameter/optimality metrics, with property-based checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.preferences.metrics import (
    distance_matrix,
    hamming_distance,
    kth_nearest_distance,
    optimal_diameters,
    prediction_errors,
    set_diameter,
)

binary_matrix = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(2, 12), st.integers(1, 24)),
    elements=st.integers(0, 1),
)


class TestHammingDistance:
    def test_simple(self):
        assert hamming_distance(np.asarray([0, 1, 1]), np.asarray([1, 1, 0])) == 2

    def test_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            hamming_distance(np.zeros(3), np.zeros(4))

    @settings(max_examples=30, deadline=None)
    @given(matrix=binary_matrix)
    def test_matches_naive(self, matrix):
        naive = np.asarray(
            [[(matrix[i] != matrix[j]).sum() for j in range(matrix.shape[0])] for i in range(matrix.shape[0])]
        )
        np.testing.assert_array_equal(distance_matrix(matrix), naive)


class TestDistanceMatrix:
    def test_diagonal_zero_and_symmetric(self, rng):
        matrix = rng.integers(0, 2, size=(10, 20), dtype=np.uint8)
        distances = distance_matrix(matrix)
        assert (np.diag(distances) == 0).all()
        np.testing.assert_array_equal(distances, distances.T)

    def test_rejects_one_dimensional(self):
        with pytest.raises(ConfigurationError):
            distance_matrix(np.zeros(5))

    @settings(max_examples=30, deadline=None)
    @given(matrix=binary_matrix)
    def test_triangle_inequality(self, matrix):
        distances = distance_matrix(matrix)
        n = distances.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert distances[i, j] <= distances[i, k] + distances[k, j]


class TestSetDiameter:
    def test_known_value(self):
        matrix = np.asarray([[0, 0, 0], [1, 1, 0], [0, 0, 1]], dtype=np.uint8)
        assert set_diameter(matrix, np.asarray([0, 1])) == 2
        assert set_diameter(matrix, np.asarray([0, 1, 2])) == 3

    def test_singleton_is_zero(self):
        matrix = np.asarray([[0, 1]], dtype=np.uint8)
        assert set_diameter(matrix, np.asarray([0])) == 0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            set_diameter(np.zeros((2, 2)), np.asarray([], dtype=np.int64))


class TestKthNearest:
    def test_k_zero_is_zero(self, rng):
        matrix = rng.integers(0, 2, size=(6, 8), dtype=np.uint8)
        assert (kth_nearest_distance(matrix, 0) == 0).all()

    def test_identical_players_have_zero_first_neighbor(self):
        matrix = np.asarray([[0, 1, 0], [0, 1, 0], [1, 0, 1]], dtype=np.uint8)
        assert kth_nearest_distance(matrix, 1)[0] == 0
        assert kth_nearest_distance(matrix, 1)[2] == 3

    def test_out_of_range_k(self, rng):
        matrix = rng.integers(0, 2, size=(4, 4), dtype=np.uint8)
        with pytest.raises(ConfigurationError):
            kth_nearest_distance(matrix, 4)


class TestOptimalDiameters:
    def test_planted_passthrough(self, rng):
        matrix = rng.integers(0, 2, size=(8, 8), dtype=np.uint8)
        planted = np.arange(8)
        np.testing.assert_array_equal(optimal_diameters(matrix, 2, planted), planted)

    def test_upper_bounds_true_optimum_for_identical_clusters(self):
        # Two identical clusters of size 4: D_opt = 0 for every player with
        # budget 2 (set size 4); the 2-approximation must report 0 too.
        base = np.asarray([0, 1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        other = 1 - base
        matrix = np.vstack([base] * 4 + [other] * 4)
        result = optimal_diameters(matrix, budget=2)
        np.testing.assert_array_equal(result, np.zeros(8))

    def test_invalid_budget(self, rng):
        with pytest.raises(ConfigurationError):
            optimal_diameters(rng.integers(0, 2, size=(4, 4)), 0)

    def test_planted_length_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            optimal_diameters(rng.integers(0, 2, size=(4, 4)), 2, np.zeros(3))

    @settings(max_examples=25, deadline=None)
    @given(matrix=binary_matrix, budget=st.integers(1, 6))
    def test_property_twice_knn_radius_upper_bounds_knn_radius(self, matrix, budget):
        n = matrix.shape[0]
        cluster = int(np.ceil(n / budget))
        k = max(0, min(n - 1, cluster - 1))
        radii = kth_nearest_distance(matrix, k)
        result = optimal_diameters(matrix, budget)
        assert (result >= radii).all()


class TestPredictionErrors:
    def test_counts_differences(self, rng):
        truth = rng.integers(0, 2, size=(5, 10), dtype=np.uint8)
        predictions = truth.copy()
        predictions[2, :4] ^= 1
        errors = prediction_errors(predictions, truth)
        assert errors[2] == 4
        assert errors.sum() == 4

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            prediction_errors(np.zeros((2, 2)), np.zeros((2, 3)))
