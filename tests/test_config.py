"""Tests for protocol constants and experiment configuration objects."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.simulation.config import (
    ExperimentConfig,
    ProtocolConstants,
    SimulationParameters,
)


class TestProtocolConstantsProfiles:
    def test_paper_profile_matches_paper_constants(self):
        paper = ProtocolConstants.paper()
        assert paper.sample_prob_factor == 10.0
        assert paper.sample_agreement_factor == 20.0
        assert paper.small_radius_error_factor == 100.0
        assert paper.edge_threshold_factor == 220.0
        assert paper.separation_factor == 84.0
        assert paper.cluster_diameter_factor == 336.0
        assert paper.dishonest_budget_divisor == 3.0

    def test_practical_profile_preserves_lemma7_inequality(self):
        # Edge threshold must be at least 2 * SmallRadius error + in-cluster
        # sample disagreement (Lemma 7 part 1) in both profiles.
        for constants in (ProtocolConstants.paper(), ProtocolConstants.practical()):
            assert constants.edge_threshold_factor >= (
                2 * constants.small_radius_error_factor
                + constants.sample_agreement_factor * 0.99
            ) * 0.99

    def test_practical_profile_separation_consistency(self):
        # Separation: far pairs (>= separation * D) must land above the edge
        # threshold: 5 * separation >= threshold + 2 * error (paper's Lemma 7
        # part 2 shape, scaled).
        for constants in (ProtocolConstants.paper(), ProtocolConstants.practical()):
            lhs = (constants.sample_prob_factor / 2) * constants.separation_factor
            rhs = constants.edge_threshold_factor / 10
            assert lhs > rhs

    def test_invalid_majority_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolConstants(rselect_majority=0.4)
        with pytest.raises(ConfigurationError):
            ProtocolConstants(rselect_majority=1.0)

    def test_negative_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolConstants(sample_prob_factor=-1.0)
        with pytest.raises(ConfigurationError):
            ProtocolConstants(vote_redundancy_factor=0.0)

    def test_with_overrides_returns_new_instance(self):
        base = ProtocolConstants.practical()
        changed = base.with_overrides(edge_threshold_factor=99.0)
        assert changed.edge_threshold_factor == 99.0
        assert base.edge_threshold_factor != 99.0


class TestDerivedQuantities:
    def test_log_n_clamped(self):
        constants = ProtocolConstants.practical()
        assert constants.log_n(1) >= 1.0
        assert constants.log_n(0) >= 1.0
        assert constants.log_n(1000) == pytest.approx(math.log(1000))

    def test_sample_probability_formula_and_cap(self):
        constants = ProtocolConstants.practical()
        n = 256
        expected = constants.sample_prob_factor * math.log(n) / 200.0
        assert constants.sample_probability(n, 200.0) == pytest.approx(expected)
        assert constants.sample_probability(n, 1.0) == 1.0  # capped

    def test_sample_probability_rejects_nonpositive_diameter(self):
        with pytest.raises(ConfigurationError):
            ProtocolConstants.practical().sample_probability(64, 0.0)

    def test_edge_threshold_monotone_in_n(self):
        constants = ProtocolConstants.practical()
        assert constants.edge_threshold(1024) > constants.edge_threshold(64)

    def test_vote_redundancy_at_least_three(self):
        constants = ProtocolConstants.practical()
        assert constants.vote_redundancy(4) >= 3
        assert constants.vote_redundancy(10**6) >= 3

    def test_small_radius_partitions_capped_by_objects(self):
        constants = ProtocolConstants.practical()
        assert constants.small_radius_partitions(10**6, 10) <= 10
        assert constants.small_radius_partitions(1, 100) >= 1

    def test_max_dishonest_formula(self):
        constants = ProtocolConstants.practical()
        assert constants.max_dishonest(300, 10) == int(300 / (3 * 10))
        with pytest.raises(ConfigurationError):
            constants.max_dishonest(300, 0)

    def test_zero_radius_base_size_positive(self):
        constants = ProtocolConstants.practical()
        assert constants.zero_radius_base_size(256, 4) >= 2

    def test_robust_iterations_at_least_two(self):
        assert ProtocolConstants.practical().robust_iterations(4) >= 2


class TestSimulationParameters:
    def test_valid(self):
        params = SimulationParameters(n_players=10, n_objects=20, budget=2, n_dishonest=3)
        assert params.honest_players == 7
        assert params.dishonest_fraction == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_players=0, n_objects=1, budget=1),
            dict(n_players=1, n_objects=0, budget=1),
            dict(n_players=1, n_objects=1, budget=0),
            dict(n_players=1, n_objects=1, budget=1, n_dishonest=-1),
            dict(n_players=4, n_objects=4, budget=1, n_dishonest=4),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationParameters(**kwargs)

    def test_within_tolerance(self):
        constants = ProtocolConstants.practical()
        ok = SimulationParameters(n_players=90, n_objects=90, budget=3, n_dishonest=10)
        too_many = SimulationParameters(n_players=90, n_objects=90, budget=3, n_dishonest=11)
        assert ok.within_tolerance(constants)
        assert not too_many.within_tolerance(constants)


class TestExperimentConfig:
    def test_practical_constructor(self):
        config = ExperimentConfig.practical(n_players=32, budget=4, label="x")
        assert config.parameters.n_objects == 32
        assert config.constants_profile == "practical"
        assert config.label == "x"

    def test_invalid_profile_rejected(self):
        params = SimulationParameters(n_players=4, n_objects=4, budget=2)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(parameters=params, constants_profile="bogus")
