#!/usr/bin/env python
"""Adversarial showdown: every coalition strategy vs the robust protocol.

Sweeps the adversary strategy library (random reporters, inverters, paper
promoters, cluster hijackers, strange-object vote flippers) at the paper's
tolerance ``n/(3B)`` and reports the worst honest-player error for:

* the Byzantine-robust protocol of §7 (leader election + repetition + RSelect),
* the plain CalculatePreferences protocol run with honest shared randomness
  but no robust wrapper,
* the prior state of the art (Alon et al. [2,3]) which has no defence at all.

Run with::

    python examples/adversarial_showdown.py [--players 192] [--objects 384]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    ProtocolConstants,
    build_coalition,
    calculate_preferences,
    efficient_diameter_schedule,
    make_context,
    planted_clusters_instance,
    robust_calculate_preferences,
)
from repro.baselines.alon import alon_awerbuch_azar_patt_shamir
from repro.preferences.metrics import prediction_errors

STRATEGIES = ("random", "invert", "promote", "smear", "hijack", "strange")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--players", type=int, default=192)
    parser.add_argument("--objects", type=int, default=384)
    parser.add_argument("--budget", type=int, default=4)
    parser.add_argument("--diameter", type=int, default=48)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    constants = ProtocolConstants.practical()
    instance = planted_clusters_instance(
        args.players, args.objects, n_clusters=args.budget, diameter=args.diameter, seed=args.seed
    )
    schedule = efficient_diameter_schedule(args.players, args.objects, constants)
    tolerance = constants.max_dishonest(args.players, args.budget)
    victim = instance.cluster_members(0)

    print(f"n={args.players}, objects={args.objects}, B={args.budget}, planted D={args.diameter}")
    print(f"coalition size = tolerance n/(3B) = {tolerance}\n")
    header = f"{'strategy':<10} {'robust §7':>12} {'non-robust':>12} {'Alon et al.':>12}"
    print(header)
    print("-" * len(header))

    for strategy in STRATEGIES:
        strategies, plan = build_coalition(
            instance.preferences,
            tolerance,
            strategy=strategy,  # type: ignore[arg-type]
            victim_cluster=victim,
            seed=args.seed,
        )
        honest = np.ones(args.players, dtype=bool)
        honest[plan.members] = False

        results = {}
        ctx = make_context(instance, budget=args.budget, constants=constants,
                           strategies=strategies, seed=args.seed)
        robust = robust_calculate_preferences(ctx, coalition=plan, iterations=2, diameters=schedule)
        results["robust"] = prediction_errors(robust.predictions, ctx.oracle.ground_truth())[honest].max()

        ctx = make_context(instance, budget=args.budget, constants=constants,
                           strategies=strategies, seed=args.seed)
        plain = calculate_preferences(ctx, diameters=schedule)
        results["plain"] = prediction_errors(plain.predictions, ctx.oracle.ground_truth())[honest].max()

        ctx = make_context(instance, budget=args.budget, constants=constants,
                           strategies=strategies, seed=args.seed)
        alon = alon_awerbuch_azar_patt_shamir(ctx, diameters=schedule)
        results["alon"] = prediction_errors(alon.predictions, ctx.oracle.ground_truth())[honest].max()

        print(f"{strategy:<10} {results['robust']:>12} {results['plain']:>12} {results['alon']:>12}")

    print(f"\n(worst honest-player Hamming error out of {args.objects} objects; "
          f"planted optimum is ~D/2 = {args.diameter // 2})")


if __name__ == "__main__":
    main()
