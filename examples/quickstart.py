#!/usr/bin/env python
"""Quickstart: collaborative scoring on a planted-cluster instance.

Generates a hidden preference matrix with four clusters of similar players,
runs the paper's CalculatePreferences protocol, and prints the probe cost and
prediction error next to the naive alternatives.

Run with::

    python examples/quickstart.py [--players 256] [--objects 512] [--budget 4]
"""

from __future__ import annotations

import argparse

from repro import (
    ProtocolConstants,
    calculate_preferences,
    efficient_diameter_schedule,
    make_context,
    optimal_diameters,
    planted_clusters_instance,
    protocol_report,
)
from repro.baselines.naive import random_guessing, solo_probing


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--players", type=int, default=256, help="number of players n")
    parser.add_argument("--objects", type=int, default=512, help="number of objects")
    parser.add_argument("--budget", type=int, default=4, help="probe budget B")
    parser.add_argument("--diameter", type=int, default=64, help="planted cluster diameter D")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    constants = ProtocolConstants.practical()
    instance = planted_clusters_instance(
        n_players=args.players,
        n_objects=args.objects,
        n_clusters=args.budget,
        diameter=args.diameter,
        seed=args.seed,
    )
    benchmark = optimal_diameters(instance.preferences, args.budget, instance.planted_diameters)

    print(f"Instance: n={args.players} players, {args.objects} objects, "
          f"{args.budget} clusters of diameter <= {args.diameter}\n")

    # --- The paper's protocol -------------------------------------------------
    ctx = make_context(instance, budget=args.budget, constants=constants, seed=args.seed)
    schedule = efficient_diameter_schedule(args.players, args.objects, constants)
    result = calculate_preferences(ctx, diameters=schedule)
    report = protocol_report(
        "CalculatePreferences", result.predictions, ctx.oracle, args.budget, benchmark
    )
    print("CalculatePreferences (this paper)")
    for key, value in report.summary().items():
        print(f"  {key:>14}: {value:.2f}")
    print(f"  clusters found at the best guess: "
          f"{max((t.n_clusters for t in result.traces), default=0)}\n")

    # --- Naive alternatives ---------------------------------------------------
    for name, algorithm in [
        ("solo probing (B probes, no collaboration)", solo_probing),
        ("random guessing (0 probes)", random_guessing),
    ]:
        ctx = make_context(instance, budget=args.budget, constants=constants, seed=args.seed)
        predictions = algorithm(ctx, seed=args.seed)
        report = protocol_report(name, predictions, ctx.oracle, args.budget, benchmark)
        summary = report.summary()
        print(f"{name}")
        print(f"  max_error: {summary['max_error']:.0f}   mean_error: {summary['mean_error']:.1f}   "
              f"max_probes: {summary['max_probes']:.0f}\n")


if __name__ == "__main__":
    main()
