#!/usr/bin/env python
"""The paper's motivating scenario: a program committee scoring submissions.

A committee of reviewers must decide, for every submission, whether each
reviewer would like it — but nobody has time to read more than a handful of
papers.  Reviewers fall into taste "schools" (theory, systems, ML, ...) whose
members mostly agree; a few reviewers are *dishonest*: they do not read their
assignments and either post random scores or collude to push their friends'
papers.

The example runs the Byzantine-robust protocol of §7 and reports, per school,
how well each honest reviewer's full score sheet was reconstructed, and what
happened to the papers the colluders tried to promote.

Run with::

    python examples/program_committee.py [--reviewers 240] [--papers 480]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    ProtocolConstants,
    build_coalition,
    efficient_diameter_schedule,
    make_context,
    planted_clusters_instance,
    robust_calculate_preferences,
)
from repro.preferences.metrics import prediction_errors


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reviewers", type=int, default=240)
    parser.add_argument("--papers", type=int, default=480)
    parser.add_argument("--schools", type=int, default=4, help="number of taste schools")
    parser.add_argument("--budget", type=int, default=4, help="papers each reviewer can read, up to polylog factors")
    parser.add_argument("--disagreement", type=int, default=60,
                        help="max disagreement (papers) within a school")
    parser.add_argument("--colluders", type=int, default=None,
                        help="number of dishonest reviewers (default: the n/(3B) tolerance)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    constants = ProtocolConstants.practical()
    committee = planted_clusters_instance(
        n_players=args.reviewers,
        n_objects=args.papers,
        n_clusters=args.schools,
        diameter=args.disagreement,
        seed=args.seed,
    )

    tolerance = constants.max_dishonest(args.reviewers, args.budget)
    n_colluders = tolerance if args.colluders is None else args.colluders
    victim_school = committee.cluster_members(0)
    strategies, plan = build_coalition(
        committee.preferences,
        n_colluders,
        strategy="promote",          # always score the target papers "accept"
        victim_cluster=victim_school,
        seed=args.seed,
    )

    print(f"Committee: {args.reviewers} reviewers in {args.schools} schools, "
          f"{args.papers} submissions")
    print(f"Colluders: {n_colluders} (tolerance n/3B = {tolerance}), promoting "
          f"{plan.target_objects.size} target papers\n")

    ctx = make_context(
        committee, budget=args.budget, constants=constants, strategies=strategies, seed=args.seed
    )
    schedule = efficient_diameter_schedule(args.reviewers, args.papers, constants)
    result = robust_calculate_preferences(
        ctx, coalition=plan, iterations=2, diameters=schedule
    )

    truth = ctx.oracle.ground_truth()
    errors = prediction_errors(result.predictions, truth)
    honest = np.ones(args.reviewers, dtype=bool)
    honest[plan.members] = False

    print("Reconstruction quality per school (honest reviewers only):")
    for school in range(args.schools):
        members = committee.cluster_members(school)
        members = members[honest[members]]
        print(f"  school {school}: mean error {errors[members].mean():6.1f} "
              f"/ {args.papers} papers   (worst reviewer {errors[members].max()})")

    # Did the promotion succeed?  Compare predictions on the target papers
    # with what honest reviewers actually think of them.
    targets = plan.target_objects
    honest_truth = truth[honest][:, targets]
    honest_pred = result.predictions[honest][:, targets]
    flipped = (honest_pred != honest_truth).mean()
    print(f"\nPromoted papers: {targets.size}; fraction of honest opinions the "
          f"colluders managed to flip: {flipped:.3f}")
    print(f"Probe cost: max {ctx.oracle.max_probes()} distinct probes per reviewer "
          f"(reading everything would cost {args.papers})")
    print(f"Honest leaders elected in {result.honest_leader_iterations} of "
          f"{len(result.elections)} repetitions")


if __name__ == "__main__":
    main()
