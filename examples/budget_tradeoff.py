#!/usr/bin/env python
"""Budget vs accuracy: the trade-off collaborative scoring is about.

Sweeps the probe budget ``B`` on a fixed population and shows how the
protocol's probe cost and prediction error move: smaller budgets force larger
clusters (size ``n/B``) whose diameter — and therefore the achievable error —
grows, while the probe cost per player shrinks.

Run with::

    python examples/budget_tradeoff.py [--players 256] [--objects 512]
"""

from __future__ import annotations

import argparse

from repro import (
    ProtocolConstants,
    calculate_preferences,
    efficient_diameter_schedule,
    make_context,
    optimal_diameters,
    protocol_report,
)
from repro.preferences.generators import heterogeneous_cluster_instance


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--players", type=int, default=256)
    parser.add_argument("--objects", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    constants = ProtocolConstants.practical()
    # A nested population: tight sub-communities inside looser communities.
    # Small budgets can only exploit the loose structure; large budgets can
    # afford the tight one.
    n = args.players
    sizes = [n // 4] * 4
    sizes[0] += n - sum(sizes)
    diameters = [args.objects // 16] * 4
    instance = heterogeneous_cluster_instance(
        n, args.objects, cluster_sizes=sizes, cluster_diameters=diameters, seed=args.seed
    )

    print(f"n={n} players, {args.objects} objects, 4 planted communities of diameter "
          f"{diameters[0]}\n")
    header = f"{'B':>4} {'cluster size n/B':>17} {'max probes':>11} {'max error':>10} {'mean error':>11}"
    print(header)
    print("-" * len(header))

    for budget in (2, 4, 8, 16):
        ctx = make_context(instance, budget=budget, constants=constants, seed=args.seed)
        schedule = efficient_diameter_schedule(n, args.objects, constants)
        result = calculate_preferences(ctx, diameters=schedule)
        benchmark = optimal_diameters(instance.preferences, budget, instance.planted_diameters)
        report = protocol_report("sweep", result.predictions, ctx.oracle, budget, benchmark)
        summary = report.summary()
        print(
            f"{budget:>4} {n // budget:>17} {summary['max_probes']:>11.0f} "
            f"{summary['max_error']:>10.0f} {summary['mean_error']:>11.1f}"
        )

    print("\nSmaller B ⇒ bigger clusters and fewer probes per player; the error floor "
          "is set by the diameter of the best size-(n/B) cluster around each player "
          "(Definition 1).")


if __name__ == "__main__":
    main()
