"""The observability runtime: ambient, gated, zero-cost when idle.

Modelled directly on :mod:`repro.faults.runtime`: a thread-local slot holds
the installed :class:`~repro.obs.spans.Telemetry` (or ``None``, the default
and every untraced run), and every instrumentation site starts with a single
``is None`` test.  When nothing is installed, :func:`add`/:func:`observe`/
:func:`set_gauge` return immediately, :func:`span` hands back a shared
stateless null context manager, and the :func:`traced`/:func:`timed_kernel`
wrappers fall straight through to the wrapped function — no allocation, no
clock read, no dictionary touch.  The telemetry test suite pins this down
with a call-count spy on :class:`Telemetry`.

Hot sites whose counter *value* is itself a computation (e.g. summing a
charge vector) should guard the computation too::

    if obs._AMBIENT.telemetry is not None:
        obs.add("oracle.probes", int(counts.sum()))

The ambient slot is **thread-local**: worker processes are single-threaded
(so they pay only the attribute read), while the preference server runs one
worker thread per session, each collecting into its own session telemetry
without clobbering its neighbours.  Installation/teardown stays strictly
per-thread; cross-thread *reads* of a live collection go through
:meth:`~repro.obs.spans.Telemetry.snapshot`, which tolerates concurrent
mutation.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.obs.spans import Telemetry

__all__ = [
    "active_telemetry",
    "collecting",
    "span",
    "add",
    "observe",
    "set_gauge",
    "traced",
    "timed_kernel",
]


class _Ambient(threading.local):
    """Per-thread slot holding the installed telemetry collection."""

    telemetry: Telemetry | None = None  # class default = empty slot per thread


#: The per-thread installed telemetry collection (``.telemetry`` is ``None``
#: when the current thread is not collecting).
_AMBIENT = _Ambient()


def active_telemetry() -> Telemetry | None:
    """The currently installed collection (``None`` outside traced runs)."""
    return _AMBIENT.telemetry


@contextmanager
def collecting(telemetry: Telemetry | None = None) -> Iterator[Telemetry]:
    """Install a telemetry collection as the ambient sink for the duration.

    Creates a fresh :class:`Telemetry` when none is passed; yields the
    installed collection so the caller can pull its
    :meth:`~repro.obs.spans.Telemetry.report` afterwards.  Nesting restores
    the previous collection on exit (inner windows shadow outer ones).
    The installation is visible only to the current thread.
    """
    telemetry = Telemetry() if telemetry is None else telemetry
    previous = _AMBIENT.telemetry
    _AMBIENT.telemetry = telemetry
    try:
        yield telemetry
    finally:
        _AMBIENT.telemetry = previous


class _NullSpan:
    """Shared do-nothing context manager returned when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Live span context: times the region and keeps the stack honest."""

    __slots__ = ("_telemetry", "_name", "_node", "_start")

    def __init__(self, telemetry: Telemetry, name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_SpanHandle":
        self._node = self._telemetry.enter(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self._telemetry.exit(self._node, time.perf_counter() - self._start)
        return False


def span(name: str):
    """Context manager opening the span ``name`` (no-op when idle)."""
    telemetry = _AMBIENT.telemetry
    if telemetry is None:
        return _NULL_SPAN
    return _SpanHandle(telemetry, name)


def add(name: str, value: int = 1) -> None:
    """Increment counter ``name`` on the active span stack (no-op when idle)."""
    telemetry = _AMBIENT.telemetry
    if telemetry is None:
        return
    telemetry.add(name, value)


def observe(name: str, value: float) -> None:
    """Add one histogram observation (no-op when idle)."""
    telemetry = _AMBIENT.telemetry
    if telemetry is None:
        return
    telemetry.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Record the latest value of gauge ``name`` (no-op when idle)."""
    telemetry = _AMBIENT.telemetry
    if telemetry is None:
        return
    telemetry.set_gauge(name, value)


def traced(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator wrapping a protocol stage in the span ``name``.

    The disabled path is one global read and one ``is None`` test before the
    call — the protocol layer pays nothing for its instrumentation unless a
    collection is installed.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            telemetry = _AMBIENT.telemetry
            if telemetry is None:
                return fn(*args, **kwargs)
            node = telemetry.enter(name)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                telemetry.exit(node, time.perf_counter() - start)

        return wrapper

    return decorate


def timed_kernel(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap one ``repro.perf`` kernel with a per-call cumulative timer.

    Kernels are leaves, not stages: they feed the ``perf.<name>`` timer
    registry (calls + cumulative seconds, the e13 microbench dimensions)
    rather than opening spans.  Disabled cost is the same single gate as
    :func:`traced`.
    """
    name = f"perf.{fn.__name__}"

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        telemetry = _AMBIENT.telemetry
        if telemetry is None:
            return fn(*args, **kwargs)
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            telemetry.time_kernel(name, time.perf_counter() - start)

    return wrapper
