"""Span trees and the :class:`Telemetry` collection they live in.

A *span* is one named region of protocol execution ("small_radius",
"select.tournament", "diameter"); spans nest, forming a tree rooted at a
synthetic ``run`` node.  Re-entering the same name under the same parent
folds into one node (``n_calls`` accumulates), so a loop of twenty guessed
diameters renders as one ``diameter x20`` line, not twenty siblings.

Counter attribution is **stack-walk inclusive**: every
:meth:`Telemetry.add` increments the counter on *every* node of the active
span stack.  A parent's count therefore includes its descendants' — the
semantics a reader expects of a profile tree — and because the root is
always on the stack, the root's count dictionary doubles as the run-wide
counter registry (increments outside any span still land there).  The
walk-on-add scheme is also what makes re-entrancy trivially correct:
recursion produces distinct child nodes per parent, and no fold-at-exit
step exists that could double-count a twice-entered child.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import TraceReport

__all__ = ["SpanNode", "Telemetry"]


class SpanNode:
    """One node of the span tree: a named region plus its accumulators."""

    __slots__ = ("name", "n_calls", "wall_s", "counts", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.n_calls = 0
        self.wall_s = 0.0
        self.counts: dict[str, int] = {}
        self.children: dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        """The child span named ``name``, created on first entry."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def as_dict(self) -> dict[str, Any]:
        """Plain-data form (what :class:`TraceReport` and workers carry)."""
        return {
            "name": self.name,
            "n_calls": self.n_calls,
            "wall_s": self.wall_s,
            "counts": dict(self.counts),
            "children": [child.as_dict() for child in self.children.values()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanNode({self.name!r}, n_calls={self.n_calls}, "
            f"children={list(self.children)})"
        )


class Telemetry:
    """One telemetry collection: a span stack plus the metrics registry.

    Instances are single-threaded (workers are single-threaded processes,
    matching the fault runtime's design) and are installed ambiently via
    :func:`repro.obs.runtime.collecting`.
    """

    __slots__ = ("root", "_stack", "metrics")

    def __init__(self) -> None:
        self.root = SpanNode("run")
        self._stack: list[SpanNode] = [self.root]
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Span stack
    # ------------------------------------------------------------------
    def enter(self, name: str) -> SpanNode:
        """Open the span ``name`` under the current stack top."""
        node = self._stack[-1].child(name)
        node.n_calls += 1
        self._stack.append(node)
        return node

    def exit(self, node: SpanNode, wall_s: float) -> None:
        """Close the most recently opened span, crediting its wall time."""
        popped = self._stack.pop()
        if popped is not node:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span exit order violated: closing {node.name!r} "
                f"but {popped.name!r} is on top"
            )
        node.wall_s += float(wall_s)

    @property
    def depth(self) -> int:
        """Current span nesting depth (0 = only the root is open)."""
        return len(self._stack) - 1

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def add(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` on every span of the active stack."""
        value = int(value)
        for node in self._stack:
            node.counts[name] = node.counts.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def time_kernel(self, name: str, wall_s: float) -> None:
        self.metrics.time_kernel(name, wall_s)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def absorb(self, report: TraceReport) -> None:
        """Fold a worker's :class:`TraceReport` into this collection.

        The worker's run-wide counters are attributed to every span on the
        *current* stack (exactly as if the worker's increments had happened
        inline here), and the worker root's children graft under the stack
        top — so a pool run's merged tree is structurally identical to the
        serial run's.  Gauges/histograms/timers fold through the registry.
        """
        for name, value in report.counters.items():
            self.add(name, value)
        top = self._stack[-1]
        for child_dict in report.spans.get("children", []):
            _graft(top.child(child_dict["name"]), child_dict)
        self.metrics.absorb(report.gauges, report.histograms, report.timers)

    def report(self) -> TraceReport:
        """Snapshot this collection as a picklable :class:`TraceReport`."""
        return TraceReport(
            spans=self.root.as_dict(),
            gauges=dict(self.metrics.gauges),
            histograms={name: dict(s) for name, s in self.metrics.histograms.items()},
            timers={name: dict(t) for name, t in self.metrics.timers.items()},
        )

    def snapshot(self) -> TraceReport:
        """A :class:`TraceReport` that is safe to take **mid-run** from
        another thread/task.

        :meth:`report` assumes the collection is quiescent (it is consumed
        at window exit); ``snapshot`` is the live-read form the preference
        server's publisher uses to stream telemetry while a session worker
        is still executing inside the collection.  Every container copy is
        a single C-level ``dict()``/``list()`` operation (atomic under the
        GIL), so a concurrent :meth:`add`/:meth:`enter` can never make the
        snapshot raise; the trade-off is *tearing* — counters touched while
        the walk is in flight may appear in a parent but not yet in a child.
        Monotonicity still holds per node: counts only grow, so successive
        snapshots never go backwards.
        """
        spans = _snapshot_span(self.root)
        gauges, histograms, timers = self.metrics.snapshot()
        return TraceReport(
            spans=spans, gauges=gauges, histograms=histograms, timers=timers
        )


def _snapshot_span(node: SpanNode) -> dict[str, Any]:
    """Tear-tolerant copy of one span node and its subtree.

    ``dict(...)`` and ``list(...)`` on live dicts are single C-level calls
    (no Python-visible iteration), so copying never races a concurrent
    writer into an exception — unlike :meth:`SpanNode.as_dict`, whose
    comprehension iterates ``children.values()`` step-by-step.
    """
    counts = dict(node.counts)
    children = list(node.children.values())
    return {
        "name": node.name,
        "n_calls": int(node.n_calls),
        "wall_s": float(node.wall_s),
        "counts": counts,
        "children": [_snapshot_span(child) for child in children],
    }


def _graft(node: SpanNode, span_dict: dict[str, Any]) -> None:
    """Fold one dict-form span (and its subtree) into a live node."""
    node.n_calls += int(span_dict["n_calls"])
    node.wall_s += float(span_dict["wall_s"])
    for key, value in span_dict["counts"].items():
        node.counts[key] = node.counts.get(key, 0) + int(value)
    for child_dict in span_dict["children"]:
        _graft(node.child(child_dict["name"]), child_dict)
