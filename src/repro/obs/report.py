"""``TraceReport``: the picklable, mergeable output of one telemetry window.

A report is plain nested ``dict``/``list``/scalar data — no live objects —
so a worker process can return one through the trial engine's pickle channel
and the parent can merge it into its own collection
(:meth:`repro.obs.spans.Telemetry.absorb`).

Two forms matter:

* :meth:`as_payload` — the full JSON form (span tree with wall times,
  counters, gauges, histograms, kernel timers).  This is what
  ``python -m repro trace --json`` prints and what CI schema-validates.
* :meth:`canonical` — the determinism-checked form: span structure,
  call counts, integer counters and histogram summaries only.  Wall times,
  kernel timer durations and gauges are excluded (wall clocks are not
  reproducible), children and counter keys are sorted, so two runs of the
  same ``(spec, seed)`` schedule produce **equal** canonical forms for any
  worker count — the property the telemetry tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.metrics import combine_histograms, combine_timers

__all__ = ["TraceReport", "merge_span_dicts", "render_span_tree"]


def _empty_span(name: str) -> dict[str, Any]:
    return {"name": name, "n_calls": 0, "wall_s": 0.0, "counts": {}, "children": []}


def merge_span_dicts(into: dict[str, Any], other: Mapping[str, Any]) -> None:
    """Merge one span-tree dict into another in place (same-name nodes fold).

    Call counts, wall times and counters add; children merge recursively by
    name, with previously unseen names appended in ``other``'s order.  Merge
    order therefore shapes child *insertion* order — the trial engine merges
    in submission order, and :meth:`TraceReport.canonical` sorts children, so
    neither rendering nor the determinism check depends on scheduling.
    """
    into["n_calls"] = int(into.get("n_calls", 0)) + int(other.get("n_calls", 0))
    into["wall_s"] = float(into.get("wall_s", 0.0)) + float(other.get("wall_s", 0.0))
    counts = into.setdefault("counts", {})
    for key, value in other.get("counts", {}).items():
        counts[key] = int(counts.get(key, 0)) + int(value)
    children = into.setdefault("children", [])
    by_name = {child["name"]: child for child in children}
    for other_child in other.get("children", []):
        mine = by_name.get(other_child["name"])
        if mine is None:
            mine = _empty_span(other_child["name"])
            children.append(mine)
            by_name[other_child["name"]] = mine
        merge_span_dicts(mine, other_child)


def _canonical_span(node: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "name": node["name"],
        "n_calls": int(node["n_calls"]),
        "counts": {key: int(value) for key, value in sorted(node["counts"].items())},
        "children": sorted(
            (_canonical_span(child) for child in node["children"]),
            key=lambda child: child["name"],
        ),
    }


def _exclusive_count(node: Mapping[str, Any], key: str) -> int:
    """A node's count of ``key`` net of its children (self-attributed work).

    Counter increments are attributed to *every* span on the stack, so a
    parent's count is inclusive of its descendants; subtracting the direct
    children recovers the exclusive share, and the exclusive shares of a
    tree sum exactly to the root's inclusive total.
    """
    own = int(node["counts"].get(key, 0))
    return own - sum(int(child["counts"].get(key, 0)) for child in node["children"])


def render_span_tree(root: Mapping[str, Any], keys: Iterable[str] | None = None) -> str:
    """Fixed-width text rendering of a span tree.

    Each line shows the span name, call count, cumulative wall time and its
    counters (inclusive of descendants); pass ``keys`` to restrict which
    counters are printed.
    """
    wanted = None if keys is None else set(keys)
    lines: list[str] = []

    def fmt(node: Mapping[str, Any]) -> str:
        parts = [f"x{int(node['n_calls'])}" if node["n_calls"] else "",
                 f"{float(node['wall_s']):.4f}s" if node["wall_s"] else ""]
        shown = {
            key: value
            for key, value in sorted(node["counts"].items())
            if wanted is None or key in wanted
        }
        if shown:
            parts.append(" ".join(f"{key}={int(value)}" for key, value in shown.items()))
        tail = "  ".join(part for part in parts if part)
        return f"{node['name']}" + (f"  {tail}" if tail else "")

    def walk(node: Mapping[str, Any], prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(fmt(node))
            child_prefix = ""
        else:
            lines.append(prefix + ("`- " if is_last else "|- ") + fmt(node))
            child_prefix = prefix + ("   " if is_last else "|  ")
        children = node["children"]
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(root, "", True, True)
    return "\n".join(lines)


@dataclass
class TraceReport:
    """One telemetry window's complete, picklable output."""

    spans: dict[str, Any] = field(default_factory=lambda: _empty_span("run"))
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    timers: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def counters(self) -> dict[str, int]:
        """Run-wide counters: the root span's (inclusive) count dictionary."""
        return {key: int(value) for key, value in self.spans.get("counts", {}).items()}

    def merge(self, other: "TraceReport") -> "TraceReport":
        """Fold ``other`` into this report in place and return ``self``."""
        merge_span_dicts(self.spans, other.spans)
        self.gauges.update(other.gauges)
        combine_histograms(self.histograms, other.histograms)
        combine_timers(self.timers, other.timers)
        return self

    @staticmethod
    def merged(reports: Iterable["TraceReport"]) -> "TraceReport":
        """Merge many reports left to right into a fresh one."""
        result = TraceReport()
        for report in reports:
            result.merge(report)
        return result

    def canonical(self) -> dict[str, Any]:
        """The determinism-checked form (no wall clocks, sorted structure)."""
        return {
            "spans": _canonical_span(self.spans),
            "histograms": {
                name: {
                    "count": int(summary["count"]),
                    "total": float(summary["total"]),
                    "min": float(summary["min"]),
                    "max": float(summary["max"]),
                }
                for name, summary in sorted(self.histograms.items())
            },
            "timer_calls": {
                name: int(timer["calls"]) for name, timer in sorted(self.timers.items())
            },
        }

    def exclusive_total(self, key: str) -> int:
        """Sum of per-span exclusive counts of ``key`` over the whole tree.

        Equals the root's inclusive count by construction; the telemetry
        tests assert both against the oracle's independent accounting.
        """

        def walk(node: Mapping[str, Any]) -> int:
            return _exclusive_count(node, key) + sum(
                walk(child) for child in node["children"]
            )

        return walk(self.spans)

    def as_payload(self) -> dict[str, Any]:
        """Plain-JSON form carrying every metric family."""
        return {
            "spans": self.spans,
            "counters": self.counters,
            "gauges": dict(self.gauges),
            "histograms": {name: dict(s) for name, s in self.histograms.items()},
            "timers": {name: dict(t) for name, t in self.timers.items()},
        }

    def metrics_block(self) -> dict[str, Any]:
        """The structured ``metrics`` entry for results-JSON tables.

        Everything except the span tree — counters, gauges, histograms and
        kernel timers — shaped for
        :class:`repro.analysis.reporting.ExperimentTable.metrics`.
        """
        return {
            "counters": self.counters,
            "gauges": dict(self.gauges),
            "histograms": {name: dict(s) for name, s in self.histograms.items()},
            "timers": {name: dict(t) for name, t in self.timers.items()},
        }

    def render(self, keys: Iterable[str] | None = None) -> str:
        """Human-readable span tree plus the non-span metric families."""
        lines = [render_span_tree(self.spans, keys)]
        if self.gauges:
            lines.append("")
            lines.extend(
                f"gauge {name} = {value:g}" for name, value in sorted(self.gauges.items())
            )
        if self.histograms:
            lines.append("")
            for name, s in sorted(self.histograms.items()):
                count = int(s["count"])
                mean = float(s["total"]) / count if count else 0.0
                lines.append(
                    f"hist {name}: count={count} mean={mean:g} "
                    f"min={s['min']:g} max={s['max']:g}"
                )
        if self.timers:
            lines.append("")
            for name, t in sorted(self.timers.items()):
                lines.append(
                    f"kernel {name}: calls={int(t['calls'])} total={t['total_s']:.4f}s"
                )
        return "\n".join(lines)
