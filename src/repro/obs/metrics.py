"""The metrics registry: gauges, histograms and kernel timers.

Counters are *not* stored here — a counter increment is attributed to every
span on the active stack (see :class:`repro.obs.spans.Telemetry`), so the
root span's count dictionary **is** the run-wide counter registry.  This
module holds the three remaining metric families:

* **gauges** — last-written float values (e.g. the oracle's memo hit rate at
  the end of a trial).  Merging is last-wins in merge order, which the trial
  engine keeps deterministic (submission order).
* **histograms** — ``{count, total, min, max}`` summaries of observed
  values.  The combine rule (sum counts/totals, min of mins, max of maxes)
  is commutative and associative, so merged histograms are independent of
  merge order by construction.
* **timers** — per-kernel ``{calls, total_s}`` accumulators fed by the
  :func:`repro.obs.runtime.timed_kernel` wrapper around the ``repro.perf``
  hot kernels.  ``calls`` is deterministic; ``total_s`` is wall time and is
  therefore excluded from the canonical (determinism-checked) report form.

Everything is plain ``dict``/``float`` state so a registry crosses process
boundaries inside a :class:`~repro.obs.report.TraceReport` without custom
pickling.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["MetricsRegistry", "combine_histograms", "combine_timers"]


def combine_histograms(
    into: dict[str, dict[str, float]], other: Mapping[str, Mapping[str, float]]
) -> None:
    """Merge histogram summaries in place (order-independent combine)."""
    for name, summary in other.items():
        mine = into.get(name)
        if mine is None:
            into[name] = {
                "count": int(summary["count"]),
                "total": float(summary["total"]),
                "min": float(summary["min"]),
                "max": float(summary["max"]),
            }
        else:
            mine["count"] = int(mine["count"]) + int(summary["count"])
            mine["total"] = float(mine["total"]) + float(summary["total"])
            mine["min"] = min(float(mine["min"]), float(summary["min"]))
            mine["max"] = max(float(mine["max"]), float(summary["max"]))


def combine_timers(
    into: dict[str, dict[str, float]], other: Mapping[str, Mapping[str, float]]
) -> None:
    """Merge kernel timers in place (sums, order-independent)."""
    for name, timer in other.items():
        mine = into.get(name)
        if mine is None:
            into[name] = {"calls": int(timer["calls"]), "total_s": float(timer["total_s"])}
        else:
            mine["calls"] = int(mine["calls"]) + int(timer["calls"])
            mine["total_s"] = float(mine["total_s"]) + float(timer["total_s"])


class MetricsRegistry:
    """Gauges, histograms and kernel timers for one telemetry collection."""

    __slots__ = ("gauges", "histograms", "timers")

    def __init__(self) -> None:
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, float]] = {}
        self.timers: dict[str, dict[str, float]] = {}

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of ``name`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to the ``name`` histogram summary."""
        value = float(value)
        summary = self.histograms.get(name)
        if summary is None:
            self.histograms[name] = {
                "count": 1,
                "total": value,
                "min": value,
                "max": value,
            }
        else:
            summary["count"] = int(summary["count"]) + 1
            summary["total"] = float(summary["total"]) + value
            summary["min"] = min(float(summary["min"]), value)
            summary["max"] = max(float(summary["max"]), value)

    def time_kernel(self, name: str, wall_s: float) -> None:
        """Account one kernel invocation of ``wall_s`` seconds to ``name``."""
        timer = self.timers.get(name)
        if timer is None:
            self.timers[name] = {"calls": 1, "total_s": float(wall_s)}
        else:
            timer["calls"] = int(timer["calls"]) + 1
            timer["total_s"] = float(timer["total_s"]) + float(wall_s)

    def absorb(
        self,
        gauges: Mapping[str, float],
        histograms: Mapping[str, Mapping[str, float]],
        timers: Mapping[str, Mapping[str, float]],
    ) -> None:
        """Fold another collection's metric families into this registry."""
        self.gauges.update({name: float(value) for name, value in gauges.items()})
        combine_histograms(self.histograms, histograms)
        combine_timers(self.timers, timers)

    def snapshot(self) -> tuple[
        dict[str, float],
        dict[str, dict[str, float]],
        dict[str, dict[str, float]],
    ]:
        """Copy ``(gauges, histograms, timers)`` safely mid-run.

        Unlike ad-hoc ``.items()`` loops, every copy here is a single
        C-level ``dict()``/``list()`` call, which CPython executes without
        releasing the GIL — so the snapshot never raises
        ``RuntimeError: dictionary changed size during iteration`` even
        while another thread is writing.  Individual families may be
        mutually torn (a gauge written between two copies lands in one
        family's view but not another's); each family on its own is a
        consistent point-in-time copy.
        """
        gauges = dict(self.gauges)
        histograms = {name: dict(s) for name, s in list(self.histograms.items())}
        timers = {name: dict(t) for name, t in list(self.timers.items())}
        return gauges, histograms, timers
