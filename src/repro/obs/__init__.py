"""Observability: span tracing, a metrics registry, and trace transport.

``repro.obs`` is the measurement substrate of the repository: an ambient,
zero-overhead-when-off layer (the :mod:`repro.faults.runtime` pattern — a
single ``is None`` gate at every site) that the protocol stack, the
simulation layer, the perf kernels and the trial engine all report into
when a collection window is open.

Three pieces:

* **Span tracing** (:mod:`repro.obs.spans`) — ``span("select.tournament")``
  context managers and the :func:`~repro.obs.runtime.traced` decorator wire
  a hierarchical profile through CalculatePreferences, the guessed-diameter
  iterations, the Select/RSelect/SmallRadius recursions and the board/oracle
  bulk calls.  Counter attribution is stack-walk inclusive, so every span
  shows the probes charged, board posts/reads and packed bytes moved on its
  watch.
* **Metrics registry** (:mod:`repro.obs.metrics`) — counters (the root
  span's dictionary), gauges, histograms and per-kernel timers.
* **Trace transport** (:mod:`repro.obs.report`) — workers return picklable
  :class:`TraceReport`\\ s that :func:`repro.analysis.runner.run_trials`
  merges in submission order, so aggregated telemetry is bit-identical for
  any worker count (property-tested like everything else here).

Surfaces: ``python -m repro trace <scenario>`` renders the span tree,
``run``/``sweep`` ``--metrics`` embed the structured metrics block in
results-JSON, and ``compare`` diffs metrics blocks.

The serving layer reports into the same substrate: a durable session's
recovery replay runs under its telemetry collection and adds the
``serve.replayed_ops`` / ``serve.replay_errors`` counters, so a recovered
session's metrics block accounts for the replay exactly like live traffic
(the counters are the one visible difference from a never-crashed twin).
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import TraceReport, render_span_tree
from repro.obs.runtime import (
    active_telemetry,
    add,
    collecting,
    observe,
    set_gauge,
    span,
    timed_kernel,
    traced,
)
from repro.obs.spans import SpanNode, Telemetry

__all__ = [
    "MetricsRegistry",
    "SpanNode",
    "Telemetry",
    "TraceReport",
    "active_telemetry",
    "add",
    "collecting",
    "observe",
    "render_span_tree",
    "set_gauge",
    "span",
    "timed_kernel",
    "traced",
]
