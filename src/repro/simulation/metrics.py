"""Outcome metrics: probe reports and prediction-error reports.

Every experiment reduces to two questions the paper's theorems quantify:

* **How many probes did each player spend?** (Lemmas 10–11, the
  ``O(B polylog n)`` budget claims.)
* **How far is each player's prediction from its true preference vector?**
  (Definition 1, Lemma 12, Theorem 14 — error measured in Hamming distance
  and compared against the per-player optimal diameter ``D_opt(p)``.)

The dataclasses here package those answers in a form shared by tests,
benchmarks and EXPERIMENTS.md generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import CountVector, PreferenceMatrix
from repro.errors import ConfigurationError
from repro.simulation.oracle import ProbeOracle

__all__ = ["ProbeReport", "ErrorReport", "protocol_report", "ProtocolReport"]


@dataclass(frozen=True)
class ProbeReport:
    """Summary of probe usage for one protocol execution.

    ``per_player`` counts *distinct* probes (what a player can ever learn,
    capped at ``n_objects``); ``requests_per_player`` counts raw probe
    requests including repeats, which tracks the algorithmic probe complexity
    of the paper's lemmas even when a small instance saturates the distinct
    count.
    """

    per_player: CountVector
    budget: int
    requests_per_player: CountVector | None = None

    @classmethod
    def from_oracle(cls, oracle: ProbeOracle, budget: int) -> "ProbeReport":
        """Build a report from an oracle's counters."""
        return cls(
            per_player=oracle.probes_used(),
            budget=int(budget),
            requests_per_player=oracle.requests_used(),
        )

    @property
    def max_probes(self) -> int:
        """Maximum distinct probes used by any player."""
        return int(self.per_player.max(initial=0))

    @property
    def mean_probes(self) -> float:
        """Mean distinct probes per player."""
        return float(self.per_player.mean()) if self.per_player.size else 0.0

    @property
    def total_probes(self) -> int:
        """Total distinct probes across all players."""
        return int(self.per_player.sum())

    @property
    def max_requests(self) -> int:
        """Maximum probe requests issued by any player (repeats included)."""
        if self.requests_per_player is None:
            return self.max_probes
        return int(self.requests_per_player.max(initial=0))

    @property
    def mean_requests(self) -> float:
        """Mean probe requests per player (repeats included)."""
        if self.requests_per_player is None:
            return self.mean_probes
        if self.requests_per_player.size == 0:
            return 0.0
        return float(self.requests_per_player.mean())

    def augmentation_factor(self) -> float:
        """Measured probes relative to the raw budget ``B``.

        The paper's claim is that this stays ``O(polylog n)``; benchmarks plot
        it against ``log^c n`` curves.
        """
        if self.budget <= 0:
            raise ConfigurationError("budget must be positive to compute augmentation")
        return self.max_probes / self.budget


@dataclass(frozen=True)
class ErrorReport:
    """Summary of prediction error for one protocol execution."""

    per_player: CountVector
    optimal_per_player: np.ndarray
    honest_mask: np.ndarray

    @property
    def max_error(self) -> int:
        """Worst-case Hamming error over honest players (the paper's "rate of
        error"); dishonest players' own predictions are irrelevant."""
        honest_errors = self.per_player[self.honest_mask]
        return int(honest_errors.max(initial=0))

    @property
    def mean_error(self) -> float:
        """Mean Hamming error over honest players."""
        honest_errors = self.per_player[self.honest_mask]
        return float(honest_errors.mean()) if honest_errors.size else 0.0

    @property
    def median_error(self) -> float:
        """Median Hamming error over honest players."""
        honest_errors = self.per_player[self.honest_mask]
        return float(np.median(honest_errors)) if honest_errors.size else 0.0

    def approximation_ratios(self) -> np.ndarray:
        """Per-honest-player ratio ``error(p) / max(1, D_opt(p))``.

        Definition 1 asks for this to be bounded by a constant ``c``.
        """
        denom = np.maximum(1.0, self.optimal_per_player[self.honest_mask].astype(float))
        return self.per_player[self.honest_mask] / denom

    @property
    def max_approximation_ratio(self) -> float:
        """Worst approximation ratio over honest players."""
        ratios = self.approximation_ratios()
        return float(ratios.max(initial=0.0))

    @property
    def mean_approximation_ratio(self) -> float:
        """Average approximation ratio over honest players."""
        ratios = self.approximation_ratios()
        return float(ratios.mean()) if ratios.size else 0.0


@dataclass(frozen=True)
class ProtocolReport:
    """Probe + error report for one protocol execution, plus metadata."""

    label: str
    probes: ProbeReport
    errors: ErrorReport

    def summary(self) -> dict[str, float]:
        """A flat dict of headline numbers, convenient for table rows."""
        return {
            "max_probes": float(self.probes.max_probes),
            "mean_probes": float(self.probes.mean_probes),
            "max_requests": float(self.probes.max_requests),
            "augmentation": float(self.probes.augmentation_factor()),
            "max_error": float(self.errors.max_error),
            "mean_error": float(self.errors.mean_error),
            "max_ratio": float(self.errors.max_approximation_ratio),
            "mean_ratio": float(self.errors.mean_approximation_ratio),
        }


def hamming_errors(predictions: PreferenceMatrix, truth: PreferenceMatrix) -> CountVector:
    """Per-player Hamming distance between predictions and the truth."""
    predictions = np.asarray(predictions)
    truth = np.asarray(truth)
    if predictions.shape != truth.shape:
        raise ConfigurationError(
            f"predictions and truth must align: {predictions.shape} vs {truth.shape}"
        )
    return (predictions != truth).sum(axis=1).astype(np.int64)


def protocol_report(
    label: str,
    predictions: PreferenceMatrix,
    oracle: ProbeOracle,
    budget: int,
    optimal_per_player: np.ndarray,
    honest_mask: np.ndarray | None = None,
) -> ProtocolReport:
    """Assemble a :class:`ProtocolReport` from a protocol's raw outputs.

    Parameters
    ----------
    label:
        Human-readable tag (algorithm name, experiment id).
    predictions:
        The protocol output ``W``.
    oracle:
        The probe oracle the protocol ran against (provides both counts and
        the ground truth used for scoring).
    budget:
        The nominal budget ``B``.
    optimal_per_player:
        ``D_opt(p)`` for each player (Definition 1 benchmark), usually from
        :func:`repro.preferences.metrics.optimal_diameters`.
    honest_mask:
        Boolean mask of honest players; defaults to all-honest.
    """
    truth = oracle.ground_truth()
    if honest_mask is None:
        honest_mask = np.ones(truth.shape[0], dtype=bool)
    honest_mask = np.asarray(honest_mask, dtype=bool)
    if honest_mask.shape[0] != truth.shape[0]:
        raise ConfigurationError("honest_mask length must equal the number of players")
    errors = ErrorReport(
        per_player=hamming_errors(predictions, truth),
        optimal_per_player=np.asarray(optimal_per_player),
        honest_mask=honest_mask,
    )
    probes = ProbeReport.from_oracle(oracle, budget)
    return ProtocolReport(label=label, probes=probes, errors=errors)
