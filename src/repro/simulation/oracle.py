"""The probe oracle: the only gateway to the hidden preference matrix.

The paper's model gives each player probe access to *its own* preference for
one object per round.  Every protocol in this library learns about hidden
preferences exclusively through :class:`ProbeOracle`, which

* returns the true value ``v(p)_o`` when player ``p`` probes object ``o``
  (dishonest players also learn the truth — lying happens at the bulletin
  board, not at the oracle);
* charges exactly one probe per *new* (player, object) pair and memoises
  repeated probes (a player that already knows an answer does not pay twice,
  matching the paper's accounting where probe complexity counts distinct
  evaluations);
* optionally enforces a hard probe budget — a single cap or a **per-player**
  vector of caps (heterogeneous budgets, §8 discussion; off by default: the
  theorems are statements about measured probe counts, not about a cut-off
  mechanism);
* optionally answers through a *noisy channel* (``noise_rate``): each
  (player, object) cell is flipped i.i.d. with the given probability, but the
  flip pattern is fixed at construction, so re-probing the same cell returns
  the same (possibly wrong) answer — the memoisation semantics survive, only
  the observed matrix differs from the ground truth used for scoring.

All access paths are vectorised so that a "collective" protocol step — e.g.
*every* player probing the same random sample of objects — costs one NumPy
fancy-indexing operation rather than a Python loop.  The memoisation mask is
stored **bit-packed** (one bit per cell, ``repro.perf.bitset`` words), so
the block paths test and mark whole probe blocks with byte-wide traffic,
and the block paths can return their answers as :class:`PackedBits` rows
(``packed=True``) for consumers on the packed dataflow — the Select
estimators and the collective tournament feed them straight into XOR+popcount
kernels without a repack.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import CountVector, ObjectIndices, PreferenceMatrix, SeedLike, as_generator
from repro.errors import BudgetExceededError, ConfigurationError
from repro.faults.runtime import oracle_fault_gate
from repro.obs import runtime as obs
from repro.perf import PackedBits, column_plan, popcount

__all__ = ["ProbeOracle"]


class ProbeOracle:
    """Probe-counting access to a hidden binary preference matrix.

    Parameters
    ----------
    truth:
        Array of shape ``(n_players, n_objects)`` with entries in ``{0, 1}``.
        A copy is stored read-only so later mutation by the caller cannot
        corrupt an experiment.
    budget:
        Optional probe budget: a scalar applied to every player, or a vector
        of per-player caps (shape ``(n_players,)``) for heterogeneous-budget
        scenarios.  Only used for reporting unless ``enforce_budget`` is set.
    enforce_budget:
        If true, a probe that would push a player past its budget raises
        :class:`~repro.errors.BudgetExceededError`.
    noise_rate:
        Probability (in ``[0, 0.5)``) that a probe answer is flipped.  The
        flips are drawn once from ``noise_seed`` at construction, so answers
        are consistent across repeated probes and deterministic given the
        seed.  ``ground_truth()`` always returns the noise-free matrix.
    noise_seed:
        Seed for the flip pattern (only used when ``noise_rate > 0``).
    """

    def __init__(
        self,
        truth: PreferenceMatrix,
        budget: int | np.ndarray | None = None,
        enforce_budget: bool = False,
        noise_rate: float = 0.0,
        noise_seed: SeedLike = None,
    ) -> None:
        truth = np.asarray(truth)
        if truth.ndim != 2:
            raise ConfigurationError(
                f"truth must be a 2-D matrix, got shape {truth.shape}"
            )
        if truth.size == 0:
            raise ConfigurationError("truth matrix must be non-empty")
        unique = np.unique(truth)
        if not np.all(np.isin(unique, (0, 1))):
            raise ConfigurationError(
                "truth matrix must be binary (0/1); found values "
                f"{unique[:10].tolist()}"
            )
        if enforce_budget and budget is None:
            raise ConfigurationError("enforce_budget=True requires a budget")
        if budget is not None:
            if np.ndim(budget) == 0:
                if budget <= 0:
                    raise ConfigurationError(f"budget must be positive, got {budget}")
            else:
                budget = np.asarray(budget, dtype=np.int64)
                if budget.shape != (truth.shape[0],):
                    raise ConfigurationError(
                        "per-player budget must have shape "
                        f"({truth.shape[0]},), got {budget.shape}"
                    )
                if budget.size and int(budget.min()) <= 0:
                    raise ConfigurationError("per-player budgets must all be positive")
                budget = budget.copy()
                budget.setflags(write=False)

        if not 0.0 <= noise_rate < 0.5:
            raise ConfigurationError(
                f"noise_rate must lie in [0, 0.5), got {noise_rate}"
            )

        self._truth = truth.astype(np.uint8, copy=True)
        self._truth.setflags(write=False)
        self.noise_rate = float(noise_rate)
        if noise_rate > 0.0:
            flips = as_generator(noise_seed).random(self._truth.shape) < noise_rate
            observed = self._truth ^ flips.astype(np.uint8)
            observed.setflags(write=False)
            self._observed = observed
        else:
            self._observed = self._truth
        # Bit-packed memoisation mask: bit ``o`` of player ``p``'s row says
        # whether the (p, o) pair was already charged.
        self._object_bytes = (self._truth.shape[1] + 7) // 8
        self._probed = np.zeros((self._truth.shape[0], self._object_bytes), dtype=np.uint8)
        self._counts = np.zeros(self._truth.shape[0], dtype=np.int64)
        # Raw probe *requests*, counting repeats.  Distinct probes (above) are
        # what a player can ever learn (capped at n_objects); requests follow
        # the paper's round-by-round accounting and keep growing with the
        # algorithmic work, so both are reported.
        self._requests = np.zeros(self._truth.shape[0], dtype=np.int64)
        self.budget = budget
        self.enforce_budget = enforce_budget

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def n_players(self) -> int:
        """Number of players."""
        return self._truth.shape[0]

    @property
    def n_objects(self) -> int:
        """Number of objects."""
        return self._truth.shape[1]

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, player: int, obj: int) -> int:
        """Player ``player`` probes object ``obj``; returns its true preference."""
        values = self.probe_objects(player, np.asarray([obj], dtype=np.int64))
        return int(values[0])

    @obs.traced("oracle.objects")
    def probe_objects(self, player: int, objects: ObjectIndices) -> np.ndarray:
        """One player probes several objects; returns their true preferences.

        Repeated objects (within this call or across calls) are answered but
        charged only once.
        """
        oracle_fault_gate()
        player = int(player)
        if not 0 <= player < self.n_players:
            raise ConfigurationError(f"player index {player} out of range")
        objects = np.asarray(objects, dtype=np.int64)
        if objects.size and (objects.min() < 0 or objects.max() >= self.n_objects):
            raise ConfigurationError("object index out of range in probe_objects")

        row = self._probed[player]
        weights = np.uint8(128) >> (objects & 7).astype(np.uint8)
        already = (row[objects >> 3] & weights) != 0
        new_objects = objects[~already]
        if new_objects.size > 1 and not np.all(new_objects[1:] > new_objects[:-1]):
            new_objects = np.unique(new_objects)
        self._charge(np.asarray([player]), np.asarray([new_objects.size]))
        self._requests[player] += objects.size
        if obs._AMBIENT.telemetry is not None:
            obs.add("oracle.requests", int(objects.size))
        if new_objects.size:
            np.bitwise_or.at(
                row,
                new_objects >> 3,
                np.uint8(128) >> (new_objects & 7).astype(np.uint8),
            )
        return self._observed[player, objects]

    @obs.traced("oracle.ragged")
    def probe_ragged(
        self,
        players: np.ndarray,
        object_lists: Sequence[ObjectIndices],
        packed: bool = False,
    ) -> np.ndarray | PackedBits:
        """Each listed player probes its *own* variable-length object list.

        Equivalent to looping ``probe_objects(players[i], object_lists[i])``
        — identical memoisation, per-player distinct-probe charging, request
        accounting and noise channel — but the whole batch is resolved
        through one flat fancy index, which is what lets a collective
        tournament round (every player probing its own sample) cost one
        oracle call instead of one per player.

        Returns the concatenated answers in **player-major order**: player
        ``i``'s answers occupy ``values[offsets[i]:offsets[i+1]]`` with
        ``offsets = [0] + cumsum(map(len, object_lists))``.  With
        ``packed=True`` the answers come back instead as a
        :class:`PackedBits` stack of zero-padded rows (row ``i`` holds player
        ``i``'s answers on its first ``len(object_lists[i])`` positions, zero
        beyond) — the exact operand shape of
        :func:`repro.perf.packed_pair_vote`.  Like :meth:`probe_pairs`,
        budget enforcement checks the whole batch before charging anything
        (the loop would charge earlier players first); outside the
        enforcement error path the two are bit-identical.
        """
        oracle_fault_gate()
        players = np.asarray(players, dtype=np.int64)
        if players.size != len(object_lists):
            raise ConfigurationError(
                f"probe_ragged got {players.size} players but "
                f"{len(object_lists)} object lists"
            )
        if players.size == 0:
            flat_values = np.zeros(0, dtype=np.uint8)
            lengths = np.zeros(0, dtype=np.int64)
            return self._pad_ragged(flat_values, lengths) if packed else flat_values
        if players.min() < 0 or players.max() >= self.n_players:
            raise ConfigurationError("player index out of range in probe_ragged")
        if players.size > 1 and np.unique(players).size != players.size:
            # Duplicate players would need the call-order memoisation the
            # loop provides; fall back to it (rare, correctness-first).
            flat_values = np.concatenate(
                [
                    self.probe_objects(int(player), object_lists[i])
                    for i, player in enumerate(players)
                ]
            )
            lengths = np.asarray([len(objs) for objs in object_lists], dtype=np.int64)
            return self._pad_ragged(flat_values, lengths) if packed else flat_values
        lengths = np.asarray([len(objs) for objs in object_lists], dtype=np.int64)
        if lengths.sum() == 0:
            flat_values = np.zeros(0, dtype=np.uint8)
            return self._pad_ragged(flat_values, lengths) if packed else flat_values
        objects = np.concatenate(
            [np.asarray(objs, dtype=np.int64) for objs in object_lists]
        )
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in probe_ragged")

        players_rep = np.repeat(players, lengths)
        flat = players_rep * self.n_objects + objects
        # Distinct-probe charging without a sort: OR the requested cells into
        # a per-listed-player scratch mask (duplicates collapse for free),
        # AND out the already-probed bits, and popcount the remainder.
        rows = np.repeat(np.arange(players.size, dtype=np.int64), lengths)
        scratch = np.zeros((players.size, self._object_bytes), dtype=np.uint8)
        np.bitwise_or.at(
            scratch.reshape(-1),
            rows * self._object_bytes + (objects >> 3),
            np.uint8(128) >> (objects & 7).astype(np.uint8),
        )
        probed_rows = self._probed[players]
        counts = popcount(scratch & ~probed_rows).sum(axis=1, dtype=np.int64)
        self._charge(players, counts, unique_players=True)
        self._requests[players] += lengths
        if obs._AMBIENT.telemetry is not None:
            obs.add("oracle.requests", int(lengths.sum()))
        self._probed[players] = probed_rows | scratch
        flat_values = self._observed.reshape(-1)[flat]
        return self._pad_ragged(flat_values, lengths) if packed else flat_values

    @staticmethod
    def _pad_ragged(flat_values: np.ndarray, lengths: np.ndarray) -> PackedBits:
        """Zero-padded packed rows from player-major concatenated answers."""
        max_len = int(lengths.max(initial=0))
        rows = np.zeros((lengths.size, max_len), dtype=np.uint8)
        if flat_values.size:
            mask = np.arange(max_len)[None, :] < lengths[:, None]
            rows[mask] = flat_values
        return PackedBits(
            data=np.packbits(rows, axis=1) if max_len else rows, n_bits=max_len
        )

    @obs.traced("oracle.pairs")
    def probe_pairs(self, players: np.ndarray, objects: np.ndarray) -> np.ndarray:
        """Probe an arbitrary batch of (player, object) pairs.

        ``players`` and ``objects`` must have equal length; the return value
        gives the true preference of each pair in order.  Duplicated pairs are
        charged once.
        """
        oracle_fault_gate()
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        if players.shape != objects.shape:
            raise ConfigurationError(
                "players and objects must have the same shape: "
                f"{players.shape} vs {objects.shape}"
            )
        if players.size == 0:
            return np.zeros(0, dtype=np.uint8)
        if players.min() < 0 or players.max() >= self.n_players:
            raise ConfigurationError("player index out of range in probe_pairs")
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in probe_pairs")

        # Identify pairs not yet probed and charge per player through the
        # packed scratch-mask trick: OR the requested cells into a scratch
        # mask (duplicate pairs collapse for free), drop the already-probed
        # bits, and popcount.  Batches at least as large as the player set
        # (the collective work-sharing shape) sweep the full mask — no sort
        # at all; smaller batches on big instances build the scratch over
        # the involved players' rows only, so the work stays O(batch).
        flat = players * self.n_objects + objects
        weights = np.uint8(128) >> (objects & 7).astype(np.uint8)
        obs.add("oracle.requests", int(players.size))
        if players.size >= self.n_players:
            self._requests += np.bincount(players, minlength=self.n_players)
            scratch = np.zeros_like(self._probed)
            np.bitwise_or.at(
                scratch.reshape(-1),
                players * self._object_bytes + (objects >> 3),
                weights,
            )
            new_bits = scratch & ~self._probed
            counts = popcount(new_bits).sum(axis=1, dtype=np.int64)
            if counts.any():
                self._charge_all(counts)
                self._probed |= new_bits
        else:
            involved, req_counts = np.unique(players, return_counts=True)
            self._requests[involved] += req_counts
            rows = np.searchsorted(involved, players)
            scratch = np.zeros((involved.size, self._object_bytes), dtype=np.uint8)
            np.bitwise_or.at(
                scratch.reshape(-1),
                rows * self._object_bytes + (objects >> 3),
                weights,
            )
            probed_rows = self._probed[involved]
            counts = popcount(scratch & ~probed_rows).sum(axis=1, dtype=np.int64)
            self._charge(involved, counts, unique_players=True)
            self._probed[involved] = probed_rows | scratch
        return self._observed.reshape(-1)[flat]

    @obs.traced("oracle.block")
    def probe_block(
        self, players: np.ndarray, objects: ObjectIndices, packed: bool = False
    ) -> np.ndarray | PackedBits:
        """Every listed player probes every listed object (a dense block).

        Returns the ``(len(players), len(objects))`` block of true values —
        dense ``uint8`` by default, or a :class:`PackedBits` stack of
        player-major rows with ``packed=True`` (what the Select estimators
        feed straight into the XOR+popcount kernels).  This is the hot path
        for collective steps such as "all players probe the RSelect sample";
        it is fully vectorised, and the memoisation test/mark runs on the
        packed probe mask (byte-wide traffic instead of a dense bool block).
        """
        oracle_fault_gate()
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        if players.size == 0 or objects.size == 0:
            block = np.zeros((players.size, objects.size), dtype=np.uint8)
            return PackedBits(data=np.packbits(block, axis=1), n_bits=objects.size) if packed else block
        if players.min() < 0 or players.max() >= self.n_players:
            raise ConfigurationError("player index out of range in probe_block")
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in probe_block")

        # Fast paths: the common callers pass already-unique (usually sorted)
        # object lists — skipping the dedup sort — and very often the *full*
        # player range, where row-sliced indexing beats the open-mesh gather.
        if objects.size == 1 or np.all(objects[1:] > objects[:-1]):
            unique_objects = objects
        else:
            unique_objects = np.unique(objects)
        touched, cover, _, _ = column_plan(unique_objects)
        if obs._AMBIENT.telemetry is not None:
            obs.add("oracle.requests", int(players.size) * int(objects.size))
        all_players = players.size == self.n_players and np.all(
            players == np.arange(self.n_players)
        )
        if all_players:
            block_probed = self._probed[:, touched] & cover
            new_counts = unique_objects.size - popcount(block_probed).sum(
                axis=1, dtype=np.int64
            )
            self._charge(players, new_counts, unique_players=True)
            self._requests += objects.size
            self._probed[:, touched] |= cover
            block = self._observed[:, objects]
        else:
            rows = players[:, None]
            block_probed = self._probed[rows, touched[None, :]] & cover
            new_counts = unique_objects.size - popcount(block_probed).sum(
                axis=1, dtype=np.int64
            )
            unique_players = players.size <= 1 or bool(np.all(players[1:] > players[:-1]))
            self._charge(players, new_counts, unique_players=unique_players)
            self._requests[players] += objects.size
            self._probed[rows, touched[None, :]] |= cover
            block = self._observed[rows, objects[None, :]]
        if packed:
            return PackedBits(data=np.packbits(block, axis=1), n_bits=objects.size)
        return block

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _charge(
        self, players: np.ndarray, counts: np.ndarray, unique_players: bool = False
    ) -> None:
        counts = np.asarray(counts, dtype=np.int64)
        if self.enforce_budget and self.budget is not None:
            limits = (
                self.budget[players] if np.ndim(self.budget) else int(self.budget)
            )
            prospective = self._counts[players] + counts
            over = prospective > limits
            if np.any(over):
                bad = int(players[over][0])
                limit = int(limits[over][0]) if np.ndim(limits) else int(limits)
                raise BudgetExceededError(
                    player=bad,
                    budget=limit,
                    attempted=int(prospective[over][0]),
                )
        if unique_players:
            # Fancy in-place add is much cheaper than np.add.at but only
            # correct when no player index repeats.
            self._counts[players] += counts
        else:
            np.add.at(self._counts, players, counts)
        if obs._AMBIENT.telemetry is not None:
            obs.add("oracle.probes", int(counts.sum()))

    def _charge_all(self, counts: np.ndarray) -> None:
        """Charge a full-length per-player count vector (mostly zeros).

        The bulk pair paths produce their distinct-probe counts as a dense
        vector straight from the packed scratch mask; adding it in place
        skips the per-player grouping a sparse charge would need.
        """
        if self.enforce_budget and self.budget is not None:
            prospective = self._counts + counts
            over = prospective > (
                self.budget if np.ndim(self.budget) else int(self.budget)
            )
            if np.any(over):
                bad = int(np.flatnonzero(over)[0])
                limit = int(self.budget[bad]) if np.ndim(self.budget) else int(self.budget)
                raise BudgetExceededError(
                    player=bad, budget=limit, attempted=int(prospective[bad])
                )
        self._counts += counts
        if obs._AMBIENT.telemetry is not None:
            obs.add("oracle.probes", int(counts.sum()))

    def probes_used(self) -> CountVector:
        """Per-player number of distinct probes performed so far."""
        return self._counts.copy()

    def requests_used(self) -> CountVector:
        """Per-player number of probe *requests* (repeats included).

        Distinct probes are capped at ``n_objects`` per player; requests keep
        counting, so they track the algorithmic probe complexity the paper's
        lemmas are stated in even when small instances saturate the distinct
        count.
        """
        return self._requests.copy()

    def max_requests(self) -> int:
        """Maximum probe requests issued by any single player."""
        return int(self._requests.max(initial=0))

    def max_probes(self) -> int:
        """Maximum probes used by any single player."""
        return int(self._counts.max(initial=0))

    def total_probes(self) -> int:
        """Total probes across all players."""
        return int(self._counts.sum())

    def mean_probes(self) -> float:
        """Average probes per player."""
        return float(self._counts.mean()) if self.n_players else 0.0

    def memo_misses(self) -> int:
        """Requests that hit a not-yet-probed cell (== distinct probes charged)."""
        return int(self._counts.sum())

    def memo_hits(self) -> int:
        """Requests answered from the memoisation mask without a charge.

        Every request either charges a distinct probe (a miss) or is served
        from the packed memo mask for free (a hit), so hits are exactly
        requests minus distinct probes — an identity that holds on any
        execution schedule, which is what keeps the telemetry's hit counts
        worker-count-invariant.
        """
        return int(self._requests.sum() - self._counts.sum())

    def memo_hit_rate(self) -> float:
        """Fraction of probe requests served from the memo mask (0.0 if none)."""
        total = int(self._requests.sum())
        return self.memo_hits() / total if total else 0.0

    def reset_counts(self) -> None:
        """Forget probe history (counts, requests *and* memoisation)."""
        self._counts[:] = 0
        self._requests[:] = 0
        self._probed[:] = 0

    # ------------------------------------------------------------------
    # State transfer (parallel diameter search)
    # ------------------------------------------------------------------
    def probe_state(self) -> tuple[np.ndarray, np.ndarray]:
        """Snapshot ``(packed probe mask, per-player requests)``.

        The mask is the bit-packed memoisation state; together with
        :meth:`absorb_probe_run` it lets independent protocol iterations run
        against forked oracle copies and merge their accounting back
        **exactly as if they had run sequentially**: which pairs an iteration
        probes does not depend on the memoisation state (memoisation only
        affects charging, never answers), so replaying the masks in schedule
        order reproduces the serial distinct-probe counts bit for bit.
        """
        return self._probed.copy(), self._requests.copy()

    def absorb_probe_run(self, probed_after: np.ndarray, request_delta: np.ndarray) -> None:
        """Merge one forked iteration's probe state back, in schedule order.

        ``probed_after`` is the fork's packed mask after its run;
        ``request_delta`` its per-player request increase.  Distinct-probe
        charging replays against the *current* mask, so pairs another
        (earlier-merged) iteration already probed are not charged twice —
        the serial accounting.  Not valid under ``enforce_budget`` (the
        fork would have needed the merged counts to enforce against); the
        parallel diameter search falls back to sequential execution there.
        """
        if probed_after.shape != self._probed.shape:
            raise ConfigurationError(
                f"probe mask shape {probed_after.shape} does not match "
                f"{self._probed.shape}"
            )
        new_bits = probed_after & ~self._probed
        self._counts += popcount(new_bits).sum(axis=1, dtype=np.int64)
        self._probed |= probed_after
        self._requests += np.asarray(request_delta, dtype=np.int64)

    # ------------------------------------------------------------------
    # Ground-truth access for *evaluation only*
    # ------------------------------------------------------------------
    def ground_truth(self) -> PreferenceMatrix:
        """Read-only view of the hidden matrix.

        This is for scoring the protocol output after the fact (computing
        ``|w(p) − v(p)|``) and for adversary strategies, which the model
        allows to know everything.  Protocol code must never call it.
        """
        return self._truth

    def __repr__(self) -> str:
        return (
            f"ProbeOracle(n_players={self.n_players}, n_objects={self.n_objects}, "
            f"max_probes={self.max_probes()}, total_probes={self.total_probes()}, "
            f"memo_hits={self.memo_hits()}, memo_hit_rate={self.memo_hit_rate():.3f})"
        )
