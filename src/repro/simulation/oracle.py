"""The probe oracle: the only gateway to the hidden preference matrix.

The paper's model gives each player probe access to *its own* preference for
one object per round.  Every protocol in this library learns about hidden
preferences exclusively through :class:`ProbeOracle`, which

* returns the true value ``v(p)_o`` when player ``p`` probes object ``o``
  (dishonest players also learn the truth — lying happens at the bulletin
  board, not at the oracle);
* charges exactly one probe per *new* (player, object) pair and memoises
  repeated probes (a player that already knows an answer does not pay twice,
  matching the paper's accounting where probe complexity counts distinct
  evaluations);
* optionally enforces a hard per-player budget (off by default: the theorems
  are statements about measured probe counts, not about a cut-off mechanism);
* optionally answers through a *noisy channel* (``noise_rate``): each
  (player, object) cell is flipped i.i.d. with the given probability, but the
  flip pattern is fixed at construction, so re-probing the same cell returns
  the same (possibly wrong) answer — the memoisation semantics survive, only
  the observed matrix differs from the ground truth used for scoring.

All access paths are vectorised so that a "collective" protocol step — e.g.
*every* player probing the same random sample of objects — costs one NumPy
fancy-indexing operation rather than a Python loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import CountVector, ObjectIndices, PreferenceMatrix, SeedLike, as_generator
from repro.errors import BudgetExceededError, ConfigurationError

__all__ = ["ProbeOracle"]


class ProbeOracle:
    """Probe-counting access to a hidden binary preference matrix.

    Parameters
    ----------
    truth:
        Array of shape ``(n_players, n_objects)`` with entries in ``{0, 1}``.
        A copy is stored read-only so later mutation by the caller cannot
        corrupt an experiment.
    budget:
        Optional per-player probe budget.  Only used for reporting unless
        ``enforce_budget`` is set.
    enforce_budget:
        If true, a probe that would push a player past ``budget`` raises
        :class:`~repro.errors.BudgetExceededError`.
    noise_rate:
        Probability (in ``[0, 0.5)``) that a probe answer is flipped.  The
        flips are drawn once from ``noise_seed`` at construction, so answers
        are consistent across repeated probes and deterministic given the
        seed.  ``ground_truth()`` always returns the noise-free matrix.
    noise_seed:
        Seed for the flip pattern (only used when ``noise_rate > 0``).
    """

    def __init__(
        self,
        truth: PreferenceMatrix,
        budget: int | None = None,
        enforce_budget: bool = False,
        noise_rate: float = 0.0,
        noise_seed: SeedLike = None,
    ) -> None:
        truth = np.asarray(truth)
        if truth.ndim != 2:
            raise ConfigurationError(
                f"truth must be a 2-D matrix, got shape {truth.shape}"
            )
        if truth.size == 0:
            raise ConfigurationError("truth matrix must be non-empty")
        unique = np.unique(truth)
        if not np.all(np.isin(unique, (0, 1))):
            raise ConfigurationError(
                "truth matrix must be binary (0/1); found values "
                f"{unique[:10].tolist()}"
            )
        if enforce_budget and budget is None:
            raise ConfigurationError("enforce_budget=True requires a budget")
        if budget is not None and budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {budget}")

        if not 0.0 <= noise_rate < 0.5:
            raise ConfigurationError(
                f"noise_rate must lie in [0, 0.5), got {noise_rate}"
            )

        self._truth = truth.astype(np.uint8, copy=True)
        self._truth.setflags(write=False)
        self.noise_rate = float(noise_rate)
        if noise_rate > 0.0:
            flips = as_generator(noise_seed).random(self._truth.shape) < noise_rate
            observed = self._truth ^ flips.astype(np.uint8)
            observed.setflags(write=False)
            self._observed = observed
        else:
            self._observed = self._truth
        self._probed = np.zeros(self._truth.shape, dtype=bool)
        self._counts = np.zeros(self._truth.shape[0], dtype=np.int64)
        # Raw probe *requests*, counting repeats.  Distinct probes (above) are
        # what a player can ever learn (capped at n_objects); requests follow
        # the paper's round-by-round accounting and keep growing with the
        # algorithmic work, so both are reported.
        self._requests = np.zeros(self._truth.shape[0], dtype=np.int64)
        self.budget = budget
        self.enforce_budget = enforce_budget

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def n_players(self) -> int:
        """Number of players."""
        return self._truth.shape[0]

    @property
    def n_objects(self) -> int:
        """Number of objects."""
        return self._truth.shape[1]

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, player: int, obj: int) -> int:
        """Player ``player`` probes object ``obj``; returns its true preference."""
        values = self.probe_objects(player, np.asarray([obj], dtype=np.int64))
        return int(values[0])

    def probe_objects(self, player: int, objects: ObjectIndices) -> np.ndarray:
        """One player probes several objects; returns their true preferences.

        Repeated objects (within this call or across calls) are answered but
        charged only once.
        """
        player = int(player)
        if not 0 <= player < self.n_players:
            raise ConfigurationError(f"player index {player} out of range")
        objects = np.asarray(objects, dtype=np.int64)
        if objects.size and (objects.min() < 0 or objects.max() >= self.n_objects):
            raise ConfigurationError("object index out of range in probe_objects")

        already = self._probed[player, objects]
        new_objects = objects[~already]
        if new_objects.size > 1 and not np.all(new_objects[1:] > new_objects[:-1]):
            new_objects = np.unique(new_objects)
        self._charge(np.asarray([player]), np.asarray([new_objects.size]))
        self._requests[player] += objects.size
        self._probed[player, new_objects] = True
        return self._observed[player, objects].copy()

    def probe_ragged(
        self, players: np.ndarray, object_lists: Sequence[ObjectIndices]
    ) -> np.ndarray:
        """Each listed player probes its *own* variable-length object list.

        Equivalent to looping ``probe_objects(players[i], object_lists[i])``
        — identical memoisation, per-player distinct-probe charging, request
        accounting and noise channel — but the whole batch is resolved
        through one flat fancy index, which is what lets a collective
        tournament round (every player probing its own sample) cost one
        oracle call instead of one per player.

        Returns the concatenated answers in **player-major order**: player
        ``i``'s answers occupy ``values[offsets[i]:offsets[i+1]]`` with
        ``offsets = [0] + cumsum(map(len, object_lists))``.  Like
        :meth:`probe_pairs`, budget enforcement checks the whole batch
        before charging anything (the loop would charge earlier players
        first); outside the enforcement error path the two are bit-identical.
        """
        players = np.asarray(players, dtype=np.int64)
        if players.size != len(object_lists):
            raise ConfigurationError(
                f"probe_ragged got {players.size} players but "
                f"{len(object_lists)} object lists"
            )
        if players.size == 0:
            return np.zeros(0, dtype=np.uint8)
        if players.min() < 0 or players.max() >= self.n_players:
            raise ConfigurationError("player index out of range in probe_ragged")
        if players.size > 1 and np.unique(players).size != players.size:
            # Duplicate players would need the call-order memoisation the
            # loop provides; fall back to it (rare, correctness-first).
            return np.concatenate(
                [
                    self.probe_objects(int(player), object_lists[i])
                    for i, player in enumerate(players)
                ]
            )
        lengths = np.asarray([len(objs) for objs in object_lists], dtype=np.int64)
        if lengths.sum() == 0:
            return np.zeros(0, dtype=np.uint8)
        objects = np.concatenate(
            [np.asarray(objs, dtype=np.int64) for objs in object_lists]
        )
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in probe_ragged")

        flat = np.repeat(players, lengths) * self.n_objects + objects
        new_flat = np.unique(flat[~self._probed.reshape(-1)[flat]])
        counts = np.zeros(players.size, dtype=np.int64)
        if new_flat.size:
            order = np.argsort(players, kind="stable")
            positions = order[np.searchsorted(players[order], new_flat // self.n_objects)]
            np.add.at(counts, positions, 1)
        self._charge(players, counts, unique_players=True)
        self._requests[players] += lengths
        if new_flat.size:
            self._probed.reshape(-1)[new_flat] = True
        return self._observed.reshape(-1)[flat].copy()

    def probe_pairs(self, players: np.ndarray, objects: np.ndarray) -> np.ndarray:
        """Probe an arbitrary batch of (player, object) pairs.

        ``players`` and ``objects`` must have equal length; the return value
        gives the true preference of each pair in order.  Duplicated pairs are
        charged once.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        if players.shape != objects.shape:
            raise ConfigurationError(
                "players and objects must have the same shape: "
                f"{players.shape} vs {objects.shape}"
            )
        if players.size == 0:
            return np.zeros(0, dtype=np.uint8)
        if players.min() < 0 or players.max() >= self.n_players:
            raise ConfigurationError("player index out of range in probe_pairs")
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in probe_pairs")

        # Identify pairs not yet probed, dedupe them, and charge per player.
        req_players, req_counts = np.unique(players, return_counts=True)
        np.add.at(self._requests, req_players, req_counts)
        flat = players * self.n_objects + objects
        new_mask = ~self._probed.reshape(-1)[flat]
        new_flat = np.unique(flat[new_mask])
        if new_flat.size:
            new_players = new_flat // self.n_objects
            charge_players, charge_counts = np.unique(new_players, return_counts=True)
            self._charge(charge_players, charge_counts)
            self._probed.reshape(-1)[new_flat] = True
        return self._observed.reshape(-1)[flat].copy()

    def probe_block(self, players: np.ndarray, objects: ObjectIndices) -> np.ndarray:
        """Every listed player probes every listed object (a dense block).

        Returns the ``(len(players), len(objects))`` block of true values.
        This is the hot path for collective steps such as "all players probe
        the RSelect sample"; it is fully vectorised.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        if players.size == 0 or objects.size == 0:
            return np.zeros((players.size, objects.size), dtype=np.uint8)
        if players.min() < 0 or players.max() >= self.n_players:
            raise ConfigurationError("player index out of range in probe_block")
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in probe_block")

        # Fast paths: the common callers pass already-unique (usually sorted)
        # object lists — skipping the dedup sort — and very often the *full*
        # player range, where row-sliced indexing beats the open-mesh gather.
        if objects.size == 1 or np.all(objects[1:] > objects[:-1]):
            unique_objects = objects
        else:
            unique_objects = np.unique(objects)
        all_players = players.size == self.n_players and np.all(
            players == np.arange(self.n_players)
        )
        if all_players:
            block_probed = self._probed[:, unique_objects]
            new_counts = unique_objects.size - block_probed.sum(axis=1)
            self._charge(players, new_counts, unique_players=True)
            self._requests += objects.size
            self._probed[:, unique_objects] = True
            return self._observed[:, objects].copy()
        rows = players[:, None]
        block_probed = self._probed[rows, unique_objects[None, :]]
        new_counts = unique_objects.size - block_probed.sum(axis=1)
        unique_players = players.size <= 1 or bool(np.all(players[1:] > players[:-1]))
        self._charge(players, new_counts, unique_players=unique_players)
        self._requests[players] += objects.size
        self._probed[rows, unique_objects[None, :]] = True
        return self._observed[rows, objects[None, :]].copy()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _charge(
        self, players: np.ndarray, counts: np.ndarray, unique_players: bool = False
    ) -> None:
        counts = np.asarray(counts, dtype=np.int64)
        if self.enforce_budget and self.budget is not None:
            prospective = self._counts[players] + counts
            over = prospective > self.budget
            if np.any(over):
                bad = int(players[over][0])
                raise BudgetExceededError(
                    player=bad,
                    budget=self.budget,
                    attempted=int(prospective[over][0]),
                )
        if unique_players:
            # Fancy in-place add is much cheaper than np.add.at but only
            # correct when no player index repeats.
            self._counts[players] += counts
        else:
            np.add.at(self._counts, players, counts)

    def probes_used(self) -> CountVector:
        """Per-player number of distinct probes performed so far."""
        return self._counts.copy()

    def requests_used(self) -> CountVector:
        """Per-player number of probe *requests* (repeats included).

        Distinct probes are capped at ``n_objects`` per player; requests keep
        counting, so they track the algorithmic probe complexity the paper's
        lemmas are stated in even when small instances saturate the distinct
        count.
        """
        return self._requests.copy()

    def max_requests(self) -> int:
        """Maximum probe requests issued by any single player."""
        return int(self._requests.max(initial=0))

    def max_probes(self) -> int:
        """Maximum probes used by any single player."""
        return int(self._counts.max(initial=0))

    def total_probes(self) -> int:
        """Total probes across all players."""
        return int(self._counts.sum())

    def mean_probes(self) -> float:
        """Average probes per player."""
        return float(self._counts.mean()) if self.n_players else 0.0

    def reset_counts(self) -> None:
        """Forget probe history (counts, requests *and* memoisation)."""
        self._counts[:] = 0
        self._requests[:] = 0
        self._probed[:] = False

    # ------------------------------------------------------------------
    # Ground-truth access for *evaluation only*
    # ------------------------------------------------------------------
    def ground_truth(self) -> PreferenceMatrix:
        """Read-only view of the hidden matrix.

        This is for scoring the protocol output after the fact (computing
        ``|w(p) − v(p)|``) and for adversary strategies, which the model
        allows to know everything.  Protocol code must never call it.
        """
        return self._truth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProbeOracle(n_players={self.n_players}, n_objects={self.n_objects}, "
            f"max_probes={self.max_probes()}, total_probes={self.total_probes()})"
        )
