"""Configuration objects: protocol constants and experiment parameters.

The paper states every bound with explicit-but-asymptotic constants
(``10 ln n / D`` sampling probability, ``220 ln n`` neighbour threshold,
``Θ(log n)`` vote redundancy, ...).  Those literal constants only leave room
for non-trivial behaviour when ``n`` is astronomically large — e.g. the
neighbour-graph threshold ``220 ln n`` exceeds the number of sampled objects
for every ``n`` a laptop can simulate.  We therefore expose every constant in
:class:`ProtocolConstants` and ship two profiles:

* :meth:`ProtocolConstants.paper` — the literal constants from the paper,
  used by the unit tests that check formulas and by the asymptotic-bound
  calculators in :mod:`repro.analysis.bounds`;
* :meth:`ProtocolConstants.practical` — proportionally scaled constants that
  keep every *inequality relationship* from the proofs (sampling bound <
  edge threshold < separation threshold, vote redundancy logarithmic, ...)
  while remaining meaningful at ``n ∈ [64, 4096]``.  Benchmarks use this
  profile and record that fact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["ProtocolConstants", "SimulationParameters", "ExperimentConfig"]


@dataclass(frozen=True)
class ProtocolConstants:
    """Every tunable constant appearing in the paper's protocols.

    Attributes mirror the constants in the order they appear in the paper:

    ``sample_prob_factor``
        ``c`` in the sample-set inclusion probability ``c · ln(n) / D``
        (paper §6.3 uses 10).
    ``sample_agreement_factor``
        ``c`` in the Lemma 6 bound "players at distance < D differ on at most
        ``c · ln n`` sampled objects" (paper: 20).
    ``small_radius_error_factor``
        ``c`` in the Theorem 5 guarantee restricted to the sample:
        ``|v(p) − z(p)| ≤ c · ln n`` (paper: 100, i.e. 5 × the 20 ln n
        diameter passed to SmallRadius).
    ``edge_threshold_factor``
        ``c`` in the neighbour-graph edge rule ``|z(p) − z(q)| ≤ c · ln n``
        (paper: 220 = 2·100 + 20).
    ``separation_factor``
        the distance multiple at which Lemma 7 guarantees *no* edge
        (paper: 84 · D).
    ``cluster_diameter_factor``
        the Lemma 9 bound on a cluster's diameter as a multiple of ``D``
        (paper: 336 = 4 · 84).
    ``vote_redundancy_factor``
        ``c`` in the Step-4 rule "assign ``c · log n`` players per object"
        (paper: Θ(log n)).
    ``rselect_sample_factor``
        ``c`` in RSelect's per-pair sample size ``c · log n`` (paper: Θ(log n)).
    ``rselect_majority``
        the elimination threshold in RSelect (paper: 2/3).
    ``zero_radius_base_factor``
        ``c`` in ZeroRadius' recursion base case
        ``min(|P|, |O|) < c · B' · log n`` (paper: O(B' log n)).
    ``zero_radius_popularity_divisor``
        a vector must be output by at least ``|P''| / (d · B')`` players to be
        considered; paper: d = 2.
    ``small_radius_partition_factor``
        ``c`` in the number of SmallRadius partitions ``s = c · D^{3/2}``.
    ``small_radius_budget_multiplier``
        the budget multiplier handed to ZeroRadius inside SmallRadius
        (paper: 5 · B).
    ``small_radius_popularity_divisor``
        a ZeroRadius output joins ``U_i`` when produced by at least
        ``n / (d · B)`` players; paper: d = 5.
    ``small_radius_repetition_factor``
        ``c`` in the Θ(log n) outer repetitions of SmallRadius.
    ``robust_iteration_factor``
        ``c`` in the Θ(log n) leader-election iterations of the robust wrapper.
    ``dishonest_budget_divisor``
        tolerated dishonest players = ``n / (d · B)``; paper: d = 3.
    ``high_probability_exponent``
        "with high probability" means ``1 − n^{−c}``; used only by the
        analytical bound helpers.
    """

    sample_prob_factor: float = 10.0
    sample_agreement_factor: float = 20.0
    small_radius_error_factor: float = 100.0
    edge_threshold_factor: float = 220.0
    separation_factor: float = 84.0
    cluster_diameter_factor: float = 336.0
    vote_redundancy_factor: float = 3.0
    rselect_sample_factor: float = 4.0
    rselect_majority: float = 2.0 / 3.0
    zero_radius_base_factor: float = 2.0
    zero_radius_popularity_divisor: float = 2.0
    small_radius_partition_factor: float = 1.0
    small_radius_budget_multiplier: float = 5.0
    small_radius_popularity_divisor: float = 5.0
    small_radius_repetition_factor: float = 1.0
    robust_iteration_factor: float = 2.0
    dishonest_budget_divisor: float = 3.0
    high_probability_exponent: float = 1.0

    def __post_init__(self) -> None:
        positive_fields = (
            "sample_prob_factor",
            "sample_agreement_factor",
            "small_radius_error_factor",
            "edge_threshold_factor",
            "separation_factor",
            "cluster_diameter_factor",
            "vote_redundancy_factor",
            "rselect_sample_factor",
            "zero_radius_base_factor",
            "zero_radius_popularity_divisor",
            "small_radius_partition_factor",
            "small_radius_budget_multiplier",
            "small_radius_popularity_divisor",
            "small_radius_repetition_factor",
            "robust_iteration_factor",
            "dishonest_budget_divisor",
            "high_probability_exponent",
        )
        for name in positive_fields:
            value = getattr(self, name)
            if not (value > 0):
                raise ConfigurationError(f"{name} must be positive, got {value!r}")
        if not (0.5 < self.rselect_majority < 1.0):
            raise ConfigurationError(
                "rselect_majority must lie in (0.5, 1.0), got "
                f"{self.rselect_majority!r}"
            )

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "ProtocolConstants":
        """The literal constants from the paper's statements."""
        return cls()

    @classmethod
    def practical(cls) -> "ProtocolConstants":
        """Constants scaled for laptop-sized instances (n ≤ a few thousand).

        The scaling preserves the inequalities the proofs rely on:

        * the in-cluster sample-disagreement bound stays at
          ``2 × sample_prob_factor`` (Lemma 6 part 1 uses a factor-2 Chernoff
          slack);
        * the edge threshold stays at
          ``2 × small_radius_error_factor + sample_agreement_factor``
          (Lemma 7 part 1);
        * the separation factor stays large enough that
          ``5 × separation_factor × (ln n scale) − 2 × error ≥ threshold``
          (Lemma 7 part 2).
        """
        return cls(
            sample_prob_factor=6.0,
            sample_agreement_factor=8.0,
            small_radius_error_factor=3.5,
            edge_threshold_factor=15.0,
            separation_factor=4.0,
            cluster_diameter_factor=16.0,
            vote_redundancy_factor=2.0,
            rselect_sample_factor=2.0,
            rselect_majority=2.0 / 3.0,
            zero_radius_base_factor=2.0,
            zero_radius_popularity_divisor=3.0,
            small_radius_partition_factor=0.5,
            small_radius_budget_multiplier=5.0,
            small_radius_popularity_divisor=5.0,
            small_radius_repetition_factor=0.25,
            robust_iteration_factor=1.0,
            dishonest_budget_divisor=3.0,
            high_probability_exponent=1.0,
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def log_n(self, n: int) -> float:
        """Natural logarithm of ``n`` clamped below by 1 (avoids degenerate
        thresholds for tiny test instances)."""
        return max(1.0, math.log(max(2, int(n))))

    def sample_probability(self, n: int, diameter: float) -> float:
        """Inclusion probability of each object in the sample set S (§6.3)."""
        if diameter <= 0:
            raise ConfigurationError(f"diameter must be positive, got {diameter}")
        return min(1.0, self.sample_prob_factor * self.log_n(n) / diameter)

    def sample_agreement_bound(self, n: int) -> float:
        """Lemma 6 part 1: in-cluster disagreement bound on the sample."""
        return self.sample_agreement_factor * self.log_n(n)

    def edge_threshold(self, n: int) -> float:
        """Lemma 7 / Step 3: neighbour-graph edge threshold on the sample."""
        return self.edge_threshold_factor * self.log_n(n)

    def vote_redundancy(self, n: int) -> int:
        """Step 4: number of players assigned to probe each object."""
        return max(3, int(math.ceil(self.vote_redundancy_factor * self.log_n(n))))

    def rselect_sample_size(self, n: int) -> int:
        """RSelect per-pair probe sample size (Theorem 3)."""
        return max(4, int(math.ceil(self.rselect_sample_factor * self.log_n(n))))

    def zero_radius_base_size(self, n: int, budget: float) -> int:
        """ZeroRadius recursion base-case size ``O(B' log n)``."""
        return max(2, int(math.ceil(self.zero_radius_base_factor * budget * self.log_n(n))))

    def small_radius_partitions(self, diameter: float, n_objects: int) -> int:
        """Number of object partitions ``s = Θ(D^{3/2})`` used by SmallRadius."""
        raw = self.small_radius_partition_factor * max(1.0, diameter) ** 1.5
        return int(min(max(1, math.ceil(raw)), max(1, n_objects)))

    def small_radius_repetitions(self, n: int) -> int:
        """Outer repetitions of SmallRadius (Θ(log n))."""
        return max(1, int(math.ceil(self.small_radius_repetition_factor * math.log2(max(2, n)))))

    def robust_iterations(self, n: int) -> int:
        """Leader-election iterations of the robust wrapper (Θ(log n))."""
        return max(2, int(math.ceil(self.robust_iteration_factor * math.log2(max(2, n)))))

    def max_dishonest(self, n: int, budget: float) -> int:
        """Maximum tolerated number of dishonest players, ``n / (3B)``."""
        if budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {budget}")
        return int(n / (self.dishonest_budget_divisor * budget))

    def with_overrides(self, **overrides: Any) -> "ProtocolConstants":
        """Return a copy with selected fields replaced (ablation helper)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class SimulationParameters:
    """Size and adversary parameters of one simulated instance."""

    n_players: int
    n_objects: int
    budget: int
    n_dishonest: int = 0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_players <= 0:
            raise ConfigurationError(f"n_players must be positive, got {self.n_players}")
        if self.n_objects <= 0:
            raise ConfigurationError(f"n_objects must be positive, got {self.n_objects}")
        if self.budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {self.budget}")
        if self.n_dishonest < 0:
            raise ConfigurationError(
                f"n_dishonest must be non-negative, got {self.n_dishonest}"
            )
        if self.n_dishonest >= self.n_players:
            raise ConfigurationError(
                "n_dishonest must be strictly smaller than n_players "
                f"({self.n_dishonest} >= {self.n_players})"
            )

    @property
    def honest_players(self) -> int:
        """Number of honest players."""
        return self.n_players - self.n_dishonest

    @property
    def dishonest_fraction(self) -> float:
        """Fraction of dishonest players."""
        return self.n_dishonest / self.n_players

    def within_tolerance(self, constants: ProtocolConstants) -> bool:
        """Whether ``n_dishonest`` is within the paper's ``n/(3B)`` bound."""
        return self.n_dishonest <= constants.max_dishonest(self.n_players, self.budget)


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of everything an experiment driver needs.

    ``constants_profile`` is recorded so that EXPERIMENTS.md can state which
    constant profile produced each table.
    """

    parameters: SimulationParameters
    constants: ProtocolConstants = field(default_factory=ProtocolConstants.practical)
    constants_profile: str = "practical"
    label: str = ""

    def __post_init__(self) -> None:
        if self.constants_profile not in {"practical", "paper", "custom"}:
            raise ConfigurationError(
                "constants_profile must be one of 'practical', 'paper', 'custom'; "
                f"got {self.constants_profile!r}"
            )

    @classmethod
    def practical(
        cls,
        n_players: int,
        n_objects: int | None = None,
        budget: int = 8,
        n_dishonest: int = 0,
        seed: int | None = 0,
        label: str = "",
    ) -> "ExperimentConfig":
        """Convenience constructor using the practical constant profile."""
        params = SimulationParameters(
            n_players=n_players,
            n_objects=n_objects if n_objects is not None else n_players,
            budget=budget,
            n_dishonest=n_dishonest,
            seed=seed,
        )
        return cls(parameters=params, constants=ProtocolConstants.practical(), label=label)
