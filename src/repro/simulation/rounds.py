"""Round accounting: reconstructing a synchronous schedule from probe counts.

The paper's model is synchronous — each player probes at most one object per
round, so the number of rounds a protocol needs equals the maximum number of
probes any player performs (plus free bulletin-board accesses).  The
simulator charges probes directly (see :mod:`repro.simulation.oracle`); this
module keeps a per-phase ledger so experiments can report both per-phase and
end-to-end round counts, mirroring how the paper decomposes probe complexity
across phases in Lemma 11.

It also hosts :class:`ChurnTimeline`, the player arrival/departure schedule
used by the scenario engine's dynamics hooks: a protocol repetition runs over
the currently active players, then the timeline steps — some active players
depart, some inactive players (re-)join — before the next repetition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._typing import CountVector, SeedLike, as_generator
from repro.errors import ConfigurationError
from repro.simulation.oracle import ProbeOracle

__all__ = ["PhaseRecord", "RoundLedger", "ChurnTimeline"]


@dataclass(frozen=True)
class PhaseRecord:
    """Probe usage attributable to one named protocol phase."""

    name: str
    probes_per_player: CountVector

    @property
    def rounds(self) -> int:
        """Synchronous rounds needed by this phase (max probes per player)."""
        return int(self.probes_per_player.max(initial=0))

    @property
    def total_probes(self) -> int:
        """Total probes across all players in this phase."""
        return int(self.probes_per_player.sum())

    @property
    def mean_probes(self) -> float:
        """Average probes per player in this phase."""
        size = self.probes_per_player.size
        return float(self.probes_per_player.mean()) if size else 0.0


@dataclass
class RoundLedger:
    """Accumulates per-phase probe deltas against a :class:`ProbeOracle`.

    Usage::

        ledger = RoundLedger(oracle)
        with ledger.phase("sample-probing"):
            ...  # protocol steps that probe
        with ledger.phase("work-sharing"):
            ...
        ledger.total_rounds()
    """

    oracle: ProbeOracle
    phases: list[PhaseRecord] = field(default_factory=list)

    def phase(self, name: str) -> "_PhaseContext":
        """Context manager recording the probes consumed while it is open."""
        if not name:
            raise ConfigurationError("phase name must be non-empty")
        return _PhaseContext(self, name)

    def record_phase(self, name: str, before: CountVector, after: CountVector) -> PhaseRecord:
        """Record a phase given explicit before/after probe snapshots."""
        delta = np.asarray(after, dtype=np.int64) - np.asarray(before, dtype=np.int64)
        if np.any(delta < 0):
            raise ConfigurationError(
                "probe counts decreased within a phase; snapshots are inconsistent"
            )
        record = PhaseRecord(name=name, probes_per_player=delta)
        self.phases.append(record)
        return record

    def total_rounds(self) -> int:
        """Synchronous rounds of the whole execution: phases run sequentially,
        so their per-phase round counts add up."""
        return int(sum(phase.rounds for phase in self.phases))

    def rounds_by_phase(self) -> dict[str, int]:
        """Mapping of phase name to rounds; repeated phase names accumulate."""
        out: dict[str, int] = {}
        for phase in self.phases:
            out[phase.name] = out.get(phase.name, 0) + phase.rounds
        return out

    def probes_by_phase(self) -> dict[str, int]:
        """Mapping of phase name to total probes; repeated names accumulate."""
        out: dict[str, int] = {}
        for phase in self.phases:
            out[phase.name] = out.get(phase.name, 0) + phase.total_probes
        return out


class ChurnTimeline:
    """Deterministic player churn between protocol repetitions.

    The player *universe* is fixed (the oracle's matrix never changes shape);
    churn toggles which players are currently active.  Departing players are
    drawn uniformly from the active set, arriving players uniformly from the
    inactive set, so the whole trajectory is determined by ``seed``.

    Parameters
    ----------
    n_players:
        Size of the player universe.
    departures, arrivals:
        How many players leave / (re-)join at each :meth:`step`.  Departures
        are capped so at least two players always stay active; arrivals are
        capped by the size of the inactive pool.
    seed:
        Randomness for the churn draws.
    initially_active:
        Number of players active before the first repetition (defaults to the
        whole universe, leaving nobody to arrive until someone departs).
    """

    def __init__(
        self,
        n_players: int,
        departures: int = 0,
        arrivals: int = 0,
        seed: SeedLike = None,
        initially_active: int | None = None,
    ) -> None:
        if n_players <= 0:
            raise ConfigurationError(f"n_players must be positive, got {n_players}")
        if departures < 0 or arrivals < 0:
            raise ConfigurationError(
                f"departures and arrivals must be non-negative, got "
                f"{departures}, {arrivals}"
            )
        active_count = n_players if initially_active is None else int(initially_active)
        if not 1 <= active_count <= n_players:
            raise ConfigurationError(
                f"initially_active must lie in [1, n_players]; got {active_count}"
            )
        self.n_players = int(n_players)
        self.departures = int(departures)
        self.arrivals = int(arrivals)
        self._rng = as_generator(seed)
        self._active = np.zeros(n_players, dtype=bool)
        initial = self._rng.choice(n_players, size=active_count, replace=False)
        self._active[initial] = True

    def active_players(self) -> np.ndarray:
        """Sorted indices of currently active players."""
        return np.flatnonzero(self._active)

    @property
    def n_active(self) -> int:
        """Number of currently active players."""
        return int(self._active.sum())

    def step(self) -> np.ndarray:
        """Apply one churn event (departures, then arrivals); returns the new
        active set."""
        active = np.flatnonzero(self._active)
        n_leave = min(self.departures, max(0, active.size - 2))
        if n_leave:
            leavers = self._rng.choice(active, size=n_leave, replace=False)
            self._active[leavers] = False
        inactive = np.flatnonzero(~self._active)
        n_join = min(self.arrivals, inactive.size)
        if n_join:
            joiners = self._rng.choice(inactive, size=n_join, replace=False)
            self._active[joiners] = True
        return self.active_players()


class _PhaseContext:
    def __init__(self, ledger: RoundLedger, name: str) -> None:
        self._ledger = ledger
        self._name = name
        self._before: CountVector | None = None

    def __enter__(self) -> "_PhaseContext":
        self._before = self._ledger.oracle.probes_used()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self._before is not None:
            after = self._ledger.oracle.probes_used()
            self._ledger.record_phase(self._name, self._before, after)
