"""Simulation substrate: probe oracle, bulletin board, shared randomness.

The paper's execution model (§2) is a synchronous shared-memory system:

* ``n`` players and ``n`` objects (we allow ``m != n`` objects);
* in each round every player may *probe* one object and learns its own true
  preference for it;
* a public bulletin board records probe reports — honest players post the
  truth, dishonest players may post anything, but nobody can modify an entry
  posted by someone else;
* protocols rely on shared random bits published by an elected leader.

This sub-package provides those primitives with exact per-player probe
accounting, so every complexity statement in the paper can be *measured* on
the simulator rather than assumed.
"""

from repro.simulation.board import BoardEntry, BulletinBoard
from repro.simulation.config import (
    ExperimentConfig,
    ProtocolConstants,
    SimulationParameters,
)
from repro.simulation.metrics import ErrorReport, ProbeReport, protocol_report
from repro.simulation.oracle import ProbeOracle
from repro.simulation.randomness import AdversarialRandomness, SharedRandomness
from repro.simulation.rounds import RoundLedger

__all__ = [
    "AdversarialRandomness",
    "BoardEntry",
    "BulletinBoard",
    "ErrorReport",
    "ExperimentConfig",
    "ProbeOracle",
    "ProbeReport",
    "ProtocolConstants",
    "RoundLedger",
    "SharedRandomness",
    "SimulationParameters",
    "protocol_report",
]
