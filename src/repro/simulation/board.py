"""Public bulletin board (shared memory) used by all protocols.

The paper (§2) models communication as a public bulletin board: every player
can post the result of its probes and read everything posted by others.  Two
properties matter for the proofs and are enforced here:

* **Attribution** — every entry records which player posted it, so readers
  can count how many *distinct* players support a value.
* **Integrity** — an entry, once posted, cannot be modified by a different
  player (a dishonest player cannot tamper with honest posts).  Re-posting
  by the same owner is allowed and simply overwrites its own entry.

Entries are organised into named *channels* (one per protocol phase), and
each channel holds either scalar posts (e.g. a leader's published random
seed) or per-(player, object) probe reports.  Probe-report channels expose a
vectorised view (``report_matrix``) used by the collective protocol
implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.errors import BoardOwnershipError, ConfigurationError

__all__ = ["BoardEntry", "BulletinBoard"]


def _check_binary(values: np.ndarray, where: str) -> None:
    """Reject non-binary report values (cheaper than ``np.isin`` on hot paths)."""
    if values.dtype == np.uint8:
        ok = values.size == 0 or int(values.max()) <= 1
    else:
        ok = bool(((values == 0) | (values == 1)).all())
    if not ok:
        raise ConfigurationError(f"report values must be binary (0/1) in {where}")


@dataclass(frozen=True)
class BoardEntry:
    """One immutable post: ``owner`` wrote ``value`` under ``key``."""

    owner: int
    key: Any
    value: Any


class BulletinBoard:
    """Append-only shared memory with per-entry ownership.

    Parameters
    ----------
    n_players:
        Number of players allowed to post (owners are ``0 .. n_players-1``).
    n_objects:
        Number of objects; used to size vectorised report views.
    """

    def __init__(self, n_players: int, n_objects: int) -> None:
        if n_players <= 0 or n_objects <= 0:
            raise ConfigurationError(
                f"n_players and n_objects must be positive, got {n_players}, {n_objects}"
            )
        self.n_players = int(n_players)
        self.n_objects = int(n_objects)
        # channel -> key -> BoardEntry  (scalar posts)
        self._scalar: dict[str, dict[Any, BoardEntry]] = {}
        # channel -> (values matrix, posted mask); one row per player.
        self._reports: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Scalar posts (leader announcements, published vectors, ...)
    # ------------------------------------------------------------------
    def post(self, channel: str, owner: int, key: Any, value: Any) -> None:
        """Post ``value`` under ``key`` on ``channel``.

        Raises :class:`~repro.errors.BoardOwnershipError` if a *different*
        player already posted under the same key on this channel.
        """
        self._check_owner(owner)
        entries = self._scalar.setdefault(channel, {})
        existing = entries.get(key)
        if existing is not None and existing.owner != int(owner):
            raise BoardOwnershipError(writer=int(owner), owner=existing.owner, key=(channel, key))
        entries[key] = BoardEntry(owner=int(owner), key=key, value=value)

    def read(self, channel: str, key: Any, default: Any = None) -> Any:
        """Read the value posted under ``key`` on ``channel`` (or ``default``)."""
        entry = self._scalar.get(channel, {}).get(key)
        return default if entry is None else entry.value

    def read_entry(self, channel: str, key: Any) -> BoardEntry | None:
        """Read the full entry (including owner) posted under ``key``."""
        return self._scalar.get(channel, {}).get(key)

    def entries(self, channel: str) -> Iterator[BoardEntry]:
        """Iterate over all scalar entries on ``channel``."""
        return iter(self._scalar.get(channel, {}).values())

    # ------------------------------------------------------------------
    # Probe-report channels (vectorised)
    # ------------------------------------------------------------------
    def _report_channel(self, channel: str) -> tuple[np.ndarray, np.ndarray]:
        if channel not in self._reports:
            values = np.zeros((self.n_players, self.n_objects), dtype=np.uint8)
            posted = np.zeros((self.n_players, self.n_objects), dtype=bool)
            self._reports[channel] = (values, posted)
        return self._reports[channel]

    def post_reports(
        self,
        channel: str,
        player: int,
        objects: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Player ``player`` posts probe reports for ``objects`` on ``channel``.

        ``values`` must be binary and aligned with ``objects``.  A player may
        re-post over its own previous reports (e.g. refining an estimate);
        those cells are owned by the same player so no integrity violation
        occurs.
        """
        self._check_owner(player)
        objects = np.asarray(objects, dtype=np.int64)
        values = np.asarray(values)
        if objects.shape != values.shape:
            raise ConfigurationError(
                f"objects and values must align: {objects.shape} vs {values.shape}"
            )
        if objects.size == 0:
            return
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in post_reports")
        _check_binary(values, "post_reports")
        matrix, posted = self._report_channel(channel)
        matrix[player, objects] = np.asarray(values, dtype=np.uint8)
        posted[player, objects] = True

    def post_report_pairs(
        self,
        channel: str,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Post reports for an arbitrary batch of (player, object) pairs.

        ``values[i]`` is player ``players[i]``'s report for ``objects[i]``.
        This is the bulk path for phases where each object is probed by a
        different subset of players (work sharing): one vectorised call
        replaces a per-player posting loop.  Ownership is enforced the same
        way as :meth:`post_reports` — every pair's cell is attributed to (and
        can only be written by) the player in that pair, and owner indices
        are range-checked.  Duplicate pairs resolve in order (last wins),
        matching a sequential posting loop.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        values = np.asarray(values)
        if not (players.shape == objects.shape == values.shape) or players.ndim != 1:
            raise ConfigurationError(
                "players, objects and values must be aligned 1-D arrays: "
                f"{players.shape}, {objects.shape}, {values.shape}"
            )
        if players.size == 0:
            return
        if players.min() < 0 or players.max() >= self.n_players:
            raise ConfigurationError("player index out of range in post_report_pairs")
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in post_report_pairs")
        _check_binary(values, "post_report_pairs")
        matrix, posted = self._report_channel(channel)
        matrix[players, objects] = np.asarray(values, dtype=np.uint8)
        posted[players, objects] = True

    def post_report_block(
        self,
        channel: str,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Post a dense block of reports: ``values[i, j]`` is player
        ``players[i]``'s report for object ``objects[j]``.

        This is the vectorised bulk path used by collective protocol steps.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        values = np.asarray(values)
        if values.shape != (players.size, objects.size):
            raise ConfigurationError(
                f"values must have shape {(players.size, objects.size)}, got {values.shape}"
            )
        if players.size == 0 or objects.size == 0:
            return
        if players.min() < 0 or players.max() >= self.n_players:
            raise ConfigurationError("player index out of range in post_report_block")
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in post_report_block")
        _check_binary(values, "post_report_block")
        matrix, posted = self._report_channel(channel)
        values = np.asarray(values, dtype=np.uint8)
        if players.size == self.n_players and np.all(
            players == np.arange(self.n_players)
        ):
            # Full-player posts are the common collective case; a row slice
            # avoids the open-mesh scatter.
            matrix[:, objects] = values
            posted[:, objects] = True
            return
        rows = players[:, None]
        cols = objects[None, :]
        matrix[rows, cols] = values
        posted[rows, cols] = True

    def report_matrix(self, channel: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(values, posted)`` copies for a report channel.

        ``values`` is an ``(n_players, n_objects)`` uint8 matrix; ``posted``
        is a boolean mask saying which cells were actually reported.  Cells
        never posted read as 0 in ``values`` — always consult the mask.
        """
        matrix, posted = self._report_channel(channel)
        return matrix.copy(), posted.copy()

    def reporters_of(self, channel: str, obj: int) -> np.ndarray:
        """Indices of players that posted a report for ``obj`` on ``channel``."""
        _, posted = self._report_channel(channel)
        return np.flatnonzero(posted[:, int(obj)])

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_owner(self, owner: int) -> None:
        owner = int(owner)
        if not 0 <= owner < self.n_players:
            raise ConfigurationError(f"owner index {owner} out of range")

    def channels(self) -> list[str]:
        """All channel names seen so far (scalar and report channels)."""
        return sorted(set(self._scalar) | set(self._reports))

    def clear_channel(self, channel: str) -> None:
        """Drop a channel entirely (used between independent protocol runs)."""
        self._scalar.pop(channel, None)
        self._reports.pop(channel, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BulletinBoard(n_players={self.n_players}, n_objects={self.n_objects}, "
            f"channels={self.channels()})"
        )
