"""Public bulletin board (shared memory) used by all protocols.

The paper (§2) models communication as a public bulletin board: every player
can post the result of its probes and read everything posted by others.  Two
properties matter for the proofs and are enforced here:

* **Attribution** — every entry records which player posted it, so readers
  can count how many *distinct* players support a value.
* **Integrity** — an entry, once posted, cannot be modified by a different
  player (a dishonest player cannot tamper with honest posts).  Re-posting
  by the same owner is allowed and simply overwrites its own entry.

Entries are organised into named *channels* (one per protocol phase), and
each channel holds either scalar posts (e.g. a leader's published random
seed) or per-(player, object) probe reports.

Report channels are stored **bit-packed**: one packed row per *object*,
eight players per byte (``repro.perf.bitset`` words), with a parallel packed
posted-mask.  The object-major orientation matches the write pattern of the
collective protocols — a phase posts a full-player block over a column
subset, which lands as contiguous packed rows — and the read pattern of the
board-side reductions (``reporters_of``, ``support_counts``,
``masked_majority`` are per-object row reductions over packed words).  A
post therefore costs one ``packbits`` plus a row scatter of ``m/8``-byte
rows instead of two dense ``(n_players, m)`` strided writes, and the posted
mask costs one eighth of a bool matrix.  The dense
``(n_players, n_objects)`` view survives as a compatibility accessor
(:meth:`report_matrix`), bit-identical to the pre-packed board and cached
per channel between posts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.errors import BoardOwnershipError, ConfigurationError
from repro.faults.runtime import board_fault_gate
from repro.obs import runtime as obs
from repro.perf import (
    PackedBits,
    bit_cover,
    column_plan,
    packed_masked_majority,
    packed_scatter_columns,
    popcount,
)

__all__ = ["BoardEntry", "BulletinBoard"]


def _check_binary(values: np.ndarray, where: str) -> None:
    """Reject non-binary report values (cheaper than ``np.isin`` on hot paths)."""
    if values.dtype == np.uint8:
        ok = values.size == 0 or int(values.max()) <= 1
    else:
        ok = bool(((values == 0) | (values == 1)).all())
    if not ok:
        raise ConfigurationError(f"report values must be binary (0/1) in {where}")


def _readonly_view(array: np.ndarray) -> np.ndarray:
    """A zero-copy view of ``array`` that cannot be written through."""
    view = array.view()
    view.flags.writeable = False
    return view


def _keep_last(keys: np.ndarray) -> np.ndarray:
    """Indices keeping the *last* occurrence of each key, in first-seen order
    of the surviving keys' original positions (ascending index order).

    Mirrors the sequential-overwrite semantics of a posting loop: when the
    same cell appears twice in one bulk call, the later value wins.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    is_last = np.r_[sorted_keys[1:] != sorted_keys[:-1], True]
    return np.sort(order[is_last])


@dataclass(frozen=True)
class BoardEntry:
    """One immutable post: ``owner`` wrote ``value`` under ``key``."""

    owner: int
    key: Any
    value: Any


class BulletinBoard:
    """Append-only shared memory with per-entry ownership.

    Parameters
    ----------
    n_players:
        Number of players allowed to post (owners are ``0 .. n_players-1``).
    n_objects:
        Number of objects; used to size the packed report channels.
    """

    def __init__(self, n_players: int, n_objects: int) -> None:
        if n_players <= 0 or n_objects <= 0:
            raise ConfigurationError(
                f"n_players and n_objects must be positive, got {n_players}, {n_objects}"
            )
        self.n_players = int(n_players)
        self.n_objects = int(n_objects)
        #: Packed width of a report row (eight players per byte).
        self._player_bytes = (self.n_players + 7) // 8
        #: Byte mask of the valid player bits (pad bits always stay zero).
        self._player_cover = bit_cover(self.n_players)
        # channel -> key -> BoardEntry  (scalar posts)
        self._scalar: dict[str, dict[Any, BoardEntry]] = {}
        # channel -> (values, posted); packed (n_objects, player_bytes) each.
        self._reports: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        # channel -> (dense values, dense posted) read-only compatibility
        # views, rebuilt lazily after a post.
        self._dense_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Scalar posts (leader announcements, published vectors, ...)
    # ------------------------------------------------------------------
    def post(self, channel: str, owner: int, key: Any, value: Any) -> None:
        """Post ``value`` under ``key`` on ``channel``.

        Raises :class:`~repro.errors.BoardOwnershipError` if a *different*
        player already posted under the same key on this channel.
        """
        self._check_owner(owner)
        entries = self._scalar.setdefault(channel, {})
        existing = entries.get(key)
        if existing is not None and existing.owner != int(owner):
            raise BoardOwnershipError(writer=int(owner), owner=existing.owner, key=(channel, key))
        entries[key] = BoardEntry(owner=int(owner), key=key, value=value)
        obs.add("board.posts")

    def read(self, channel: str, key: Any, default: Any = None) -> Any:
        """Read the value posted under ``key`` on ``channel`` (or ``default``)."""
        entry = self._scalar.get(channel, {}).get(key)
        return default if entry is None else entry.value

    def read_entry(self, channel: str, key: Any) -> BoardEntry | None:
        """Read the full entry (including owner) posted under ``key``."""
        return self._scalar.get(channel, {}).get(key)

    def entries(self, channel: str) -> Iterator[BoardEntry]:
        """Iterate over all scalar entries on ``channel``."""
        return iter(self._scalar.get(channel, {}).values())

    # ------------------------------------------------------------------
    # Probe-report channels (bit-packed)
    # ------------------------------------------------------------------
    def _report_channel(self, channel: str) -> tuple[np.ndarray, np.ndarray]:
        if channel not in self._reports:
            values = np.zeros((self.n_objects, self._player_bytes), dtype=np.uint8)
            posted = np.zeros((self.n_objects, self._player_bytes), dtype=np.uint8)
            self._reports[channel] = (values, posted)
        return self._reports[channel]

    def _touch(self, channel: str) -> None:
        self._dense_cache.pop(channel, None)

    def post_reports(
        self,
        channel: str,
        player: int,
        objects: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Player ``player`` posts probe reports for ``objects`` on ``channel``.

        ``values`` must be binary and aligned with ``objects``.  A player may
        re-post over its own previous reports (e.g. refining an estimate);
        those cells are owned by the same player so no integrity violation
        occurs.  Duplicate objects within one call resolve in order (last
        wins), as in a sequential posting loop.
        """
        faulted = board_fault_gate()
        if faulted == "drop":
            return  # the post silently vanished in transit
        self._check_owner(player)
        objects = np.asarray(objects, dtype=np.int64)
        values = np.asarray(values)
        if objects.shape != values.shape or objects.ndim != 1:
            raise ConfigurationError(
                f"objects and values must align: {objects.shape} vs {values.shape}"
            )
        if objects.size == 0:
            return
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in post_reports")
        _check_binary(values, "post_reports")
        values = np.asarray(values, dtype=np.uint8)
        if obs._AMBIENT.telemetry is not None:
            obs.add("board.posts")
            obs.add("board.cells", int(objects.size))
        if np.unique(objects).size != objects.size:
            keep = _keep_last(objects)
            if obs._AMBIENT.telemetry is not None:
                obs.add("board.dedup_dropped", int(objects.size - keep.size))
            objects, values = objects[keep], values[keep]
        matrix, posted = self._report_channel(channel)
        byte = int(player) >> 3
        weight = np.uint8(128 >> (int(player) & 7))
        # A duplicated post is delivered twice; the write is idempotent, so
        # the board ends in the same state either way.
        for _ in range(2 if faulted == "duplicate" else 1):
            matrix[objects, byte] = (matrix[objects, byte] & ~weight) | (values * weight)
            posted[objects, byte] |= weight
        self._touch(channel)

    def post_report_pairs(
        self,
        channel: str,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
        consistent: bool = False,
    ) -> None:
        """Post reports for an arbitrary batch of (player, object) pairs.

        ``values[i]`` is player ``players[i]``'s report for ``objects[i]``.
        This is the bulk path for phases where each object is probed by a
        different subset of players (work sharing): one vectorised call
        replaces a per-player posting loop.  Ownership is enforced the same
        way as :meth:`post_reports` — every pair's cell is attributed to (and
        can only be written by) the player in that pair, and owner indices
        are range-checked.  Duplicate pairs resolve in order (last wins),
        matching a sequential posting loop; callers no longer need to
        pre-group pairs by player.  A caller that *knows* duplicate pairs
        always carry equal values (e.g. honest reports, which are a pure
        function of the cell) may pass ``consistent=True`` to skip the
        last-wins deduplication sort — the unbuffered bit updates then land
        the same result in one pass.
        """
        faulted = board_fault_gate()
        if faulted == "drop":
            return
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        values = np.asarray(values)
        if not (players.shape == objects.shape == values.shape) or players.ndim != 1:
            raise ConfigurationError(
                "players, objects and values must be aligned 1-D arrays: "
                f"{players.shape}, {objects.shape}, {values.shape}"
            )
        if players.size == 0:
            return
        if players.min() < 0 or players.max() >= self.n_players:
            raise ConfigurationError("player index out of range in post_report_pairs")
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ConfigurationError("object index out of range in post_report_pairs")
        _check_binary(values, "post_report_pairs")
        values = np.asarray(values, dtype=np.uint8)
        if obs._AMBIENT.telemetry is not None:
            obs.add("board.posts")
            obs.add("board.cells", int(players.size))
        if not consistent:
            cells = objects * self.n_players + players
            order = np.argsort(cells, kind="stable")
            sorted_cells = cells[order]
            if np.any(sorted_cells[1:] == sorted_cells[:-1]):
                is_last = np.r_[sorted_cells[1:] != sorted_cells[:-1], True]
                keep = np.sort(order[is_last])
                if obs._AMBIENT.telemetry is not None:
                    obs.add("board.dedup_dropped", int(players.size - keep.size))
                players, objects, values = players[keep], objects[keep], values[keep]
        matrix, posted = self._report_channel(channel)
        byte_pos = objects * self._player_bytes + (players >> 3)
        weights = np.uint8(128) >> (players & 7).astype(np.uint8)
        # Cells are unique but may share a byte, so the updates must be
        # unbuffered: clear each cell's bit, then OR in its value and mark it
        # posted.  A duplicated delivery repeats the idempotent writes.
        for _ in range(2 if faulted == "duplicate" else 1):
            np.bitwise_and.at(matrix.reshape(-1), byte_pos, ~weights)
            np.bitwise_or.at(matrix.reshape(-1), byte_pos, weights * values)
            np.bitwise_or.at(posted.reshape(-1), byte_pos, weights)
        self._touch(channel)

    def _prepare_block(
        self,
        where: str,
        players: np.ndarray,
        objects: np.ndarray,
        width: tuple[int, int] | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Shared validation/dedup front half of the block posting paths.

        Returns ``(players, objects, player_keep, object_keep)`` where the
        keep arrays select the surviving rows/columns of the values block
        (``None`` when nothing was dropped).  Duplicate players or objects
        keep their *last* occurrence, matching sequential overwrite.
        """
        if width is not None and width != (players.size, objects.size):
            raise ConfigurationError(
                f"values must have shape {(players.size, objects.size)}, got {width}"
            )
        if players.size and (players.min() < 0 or players.max() >= self.n_players):
            raise ConfigurationError(f"player index out of range in {where}")
        if objects.size and (objects.min() < 0 or objects.max() >= self.n_objects):
            raise ConfigurationError(f"object index out of range in {where}")
        player_keep = object_keep = None
        if players.size and np.unique(players).size != players.size:
            player_keep = _keep_last(players)
            if obs._AMBIENT.telemetry is not None:
                obs.add("board.dedup_dropped", int(players.size - player_keep.size))
            players = players[player_keep]
        if objects.size and np.unique(objects).size != objects.size:
            object_keep = _keep_last(objects)
            if obs._AMBIENT.telemetry is not None:
                obs.add("board.dedup_dropped", int(objects.size - object_keep.size))
            objects = objects[object_keep]
        return players, objects, player_keep, object_keep

    def post_report_block(
        self,
        channel: str,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Post a dense block of reports: ``values[i, j]`` is player
        ``players[i]``'s report for object ``objects[j]``.

        This is the vectorised bulk path used by collective protocol steps.
        Full-player posts (the common collective case) reduce to one
        ``packbits`` and a contiguous row scatter of packed rows; posts by a
        player subset scatter single bit columns through
        :func:`repro.perf.packed_scatter_columns`.
        """
        faulted = board_fault_gate()
        if faulted == "drop":
            return
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        values = np.asarray(values)
        players, objects, player_keep, object_keep = self._prepare_block(
            "post_report_block", players, objects, values.shape if values.ndim == 2 else None
        )
        if values.ndim != 2:
            raise ConfigurationError(
                f"values must have shape {(players.size, objects.size)}, got {values.shape}"
            )
        if players.size == 0 or objects.size == 0:
            return
        _check_binary(values, "post_report_block")
        values = np.asarray(values, dtype=np.uint8)
        if player_keep is not None:
            values = values[player_keep]
        if object_keep is not None:
            values = values[:, object_keep]
        if obs._AMBIENT.telemetry is not None:
            obs.add("board.posts")
            obs.add("board.cells", int(players.size) * int(objects.size))
        for _ in range(2 if faulted == "duplicate" else 1):
            self._write_block(channel, players, objects, values)

    def post_report_block_packed(
        self,
        channel: str,
        players: np.ndarray,
        objects: np.ndarray,
        values: PackedBits,
    ) -> None:
        """Post a dense block whose values arrive already bit-packed.

        ``values`` is packed along the *object* axis with logical shape
        ``(len(players), len(objects))`` — exactly what
        ``ProbeOracle.probe_block(..., packed=True)`` returns — so a caller
        on the packed dataflow never materialises a dense report block of
        its own.  The board realigns the bits to its object-major rows with
        one C-level unpack of the block (packing orientation necessarily
        flips between the player-major oracle and the object-major board);
        validation of the bit values is free because packed bits are binary
        by construction.
        """
        faulted = board_fault_gate()
        if faulted == "drop":
            return
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        if not isinstance(values, PackedBits):
            raise ConfigurationError(
                "post_report_block_packed requires a PackedBits value block"
            )
        players, objects, player_keep, object_keep = self._prepare_block(
            "post_report_block_packed", players, objects, values.shape
        )
        if players.size == 0 or objects.size == 0:
            return
        bits = values.unpack()
        if player_keep is not None:
            bits = bits[player_keep]
        if object_keep is not None:
            bits = bits[:, object_keep]
        if obs._AMBIENT.telemetry is not None:
            obs.add("board.posts")
            obs.add("board.cells", int(players.size) * int(objects.size))
        for _ in range(2 if faulted == "duplicate" else 1):
            self._write_block(channel, players, objects, bits)

    def _write_block(
        self, channel: str, players: np.ndarray, objects: np.ndarray, values: np.ndarray
    ) -> None:
        """Scatter a validated, deduplicated 0/1 block into the packed rows."""
        matrix, posted = self._report_channel(channel)
        if players.size == self.n_players and np.all(
            players == np.arange(self.n_players)
        ):
            # Full-player post: every player bit of the touched rows is
            # rewritten, so the packed rows are simply replaced.
            matrix[objects] = np.packbits(values, axis=0).T
            posted[objects] = self._player_cover
            if obs._AMBIENT.telemetry is not None:
                obs.add("board.packed_bytes", int(objects.size) * self._player_bytes)
        else:
            if players.size > 1 and not np.all(players[1:] > players[:-1]):
                order = np.argsort(players, kind="stable")
                players, values = players[order], values[order]
            plan = column_plan(players)
            packed_scatter_columns(matrix, players, values.T, rows=objects, plan=plan)
            touched, cover = plan[0], plan[1]
            posted[objects[:, None], touched[None, :]] |= cover
            if obs._AMBIENT.telemetry is not None:
                obs.add("board.packed_bytes", int(objects.size) * int(touched.size))
        self._touch(channel)

    # ------------------------------------------------------------------
    # Report readers
    # ------------------------------------------------------------------
    def _dense_views(self, channel: str) -> tuple[np.ndarray, np.ndarray]:
        cached = self._dense_cache.get(channel)
        if cached is None:
            matrix, posted = self._report_channel(channel)
            values = np.ascontiguousarray(
                np.unpackbits(matrix, axis=1, count=self.n_players).T
            )
            mask = np.ascontiguousarray(
                np.unpackbits(posted, axis=1, count=self.n_players).T
            ).view(np.bool_)
            values.flags.writeable = False
            mask.flags.writeable = False
            cached = (values, mask)
            self._dense_cache[channel] = cached
        return cached

    def report_matrix(
        self, channel: str, copy: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return the dense ``(values, posted)`` view of a report channel.

        ``values`` is an ``(n_players, n_objects)`` uint8 matrix; ``posted``
        is a boolean mask saying which cells were actually reported.  Cells
        never posted read as 0 in ``values`` — always consult the mask.

        With ``copy=False`` the returned arrays are **read-only**
        (``writeable=False``) and shared with the board's per-channel cache:
        repeat reads between posts cost nothing.  The default ``copy=True``
        hands back private mutable copies, matching the historical contract.
        """
        obs.add("board.reads")
        values, posted = self._dense_views(channel)
        if copy:
            return values.copy(), posted.copy()
        return values, posted

    def report_matrix_packed(self, channel: str) -> tuple[PackedBits, PackedBits]:
        """Zero-copy packed view of a report channel: ``(values, posted)``.

        Rows are **objects**, bits are players (the board's native packed
        orientation); both are read-only views of the live storage, so they
        reflect later posts.  ``unpack()`` yields the transpose of
        :meth:`report_matrix`'s dense arrays.
        """
        obs.add("board.reads")
        matrix, posted = self._report_channel(channel)
        return (
            PackedBits(data=_readonly_view(matrix), n_bits=self.n_players),
            PackedBits(data=_readonly_view(posted), n_bits=self.n_players),
        )

    def reporters_of(self, channel: str, obj: int) -> np.ndarray:
        """Indices of players that posted a report for ``obj`` on ``channel``."""
        obs.add("board.reads")
        _, posted = self._report_channel(channel)
        row = np.unpackbits(posted[int(obj)], count=self.n_players)
        return np.flatnonzero(row)

    def support_counts(self, channel: str, objects: np.ndarray | None = None) -> np.ndarray:
        """Number of *distinct* players that reported each object.

        One popcount reduction over the packed posted rows — the packed
        replacement for ``report_matrix()[1].sum(axis=0)``.  ``objects``
        restricts the count to a subset (default: all objects).
        """
        obs.add("board.reads")
        _, posted = self._report_channel(channel)
        rows = posted if objects is None else posted[np.asarray(objects, dtype=np.int64)]
        return popcount(rows).sum(axis=1, dtype=np.int64)

    def masked_majority(
        self, channel: str, objects: np.ndarray | None = None, default: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-object majority of the posted reports (ties go to 1).

        Counts only cells actually posted; objects nobody reported fall back
        to ``default``.  Returns ``(majority, support)`` — the board-side
        packed kernel behind consensus-style readers (one AND + two popcount
        passes over the packed rows; see
        :func:`repro.perf.packed_masked_majority`).
        """
        obs.add("board.reads")
        matrix, posted = self._report_channel(channel)
        if objects is not None:
            rows = np.asarray(objects, dtype=np.int64)
            matrix, posted = matrix[rows], posted[rows]
        return packed_masked_majority(
            PackedBits(data=matrix, n_bits=self.n_players),
            PackedBits(data=posted, n_bits=self.n_players),
            default=default,
        )

    # ------------------------------------------------------------------
    # State transfer (parallel diameter search)
    # ------------------------------------------------------------------
    def export_channels(self, prefix: str) -> dict[str, Any]:
        """Snapshot every channel whose name starts with ``prefix``.

        Returns a picklable payload for :meth:`absorb_channels`; used by the
        parallel diameter search to ship the board writes of one guessed
        diameter iteration back from a worker process.
        """
        payload: dict[str, Any] = {"scalar": {}, "reports": {}}
        for channel, entries in self._scalar.items():
            if channel.startswith(prefix):
                payload["scalar"][channel] = dict(entries)
        for channel, (matrix, posted) in self._reports.items():
            if channel.startswith(prefix):
                payload["reports"][channel] = (matrix.copy(), posted.copy())
        return payload

    def absorb_channels(self, payload: dict[str, Any]) -> None:
        """Install channels exported by :meth:`export_channels`.

        Channels are installed wholesale (the parallel diameter iterations
        write disjoint channel prefixes, so nothing is merged cell-wise).
        """
        for channel, entries in payload.get("scalar", {}).items():
            self._scalar[channel] = dict(entries)
        for channel, (matrix, posted) in payload.get("reports", {}).items():
            if matrix.shape != (self.n_objects, self._player_bytes):
                raise ConfigurationError(
                    f"absorbed channel {channel!r} has shape {matrix.shape}, "
                    f"expected {(self.n_objects, self._player_bytes)}"
                )
            self._reports[channel] = (matrix.copy(), posted.copy())
            self._touch(channel)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_owner(self, owner: int) -> None:
        owner = int(owner)
        if not 0 <= owner < self.n_players:
            raise ConfigurationError(f"owner index {owner} out of range")

    def channels(self) -> list[str]:
        """All channel names seen so far (scalar and report channels)."""
        return sorted(set(self._scalar) | set(self._reports))

    def channel_stats(self) -> dict[str, dict[str, int]]:
        """Per-channel posting counters: ``{channel: {scalar_posts,
        report_cells}}``.

        ``scalar_posts`` counts live scalar entries (last-write-wins keys);
        ``report_cells`` counts posted cells via one popcount over the packed
        ``posted`` rows, so no dense matrix is materialised.  The preference
        server's publisher diffs successive calls to emit board-delta events;
        both inner reads tolerate a concurrent poster (dict copies are
        C-level, the popcount reads a live array whose cells only ever gain
        bits), so the view may be torn across channels but never raises.
        """
        stats: dict[str, dict[str, int]] = {}
        for channel, entries in list(self._scalar.items()):
            stats[channel] = {"scalar_posts": len(entries), "report_cells": 0}
        for channel, (_, posted) in list(self._reports.items()):
            cells = int(popcount(posted).sum())
            entry = stats.setdefault(
                channel, {"scalar_posts": 0, "report_cells": 0}
            )
            entry["report_cells"] = cells
        return stats

    def clear_channel(self, channel: str) -> None:
        """Drop a channel entirely (used between independent protocol runs)."""
        self._scalar.pop(channel, None)
        self._reports.pop(channel, None)
        self._dense_cache.pop(channel, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BulletinBoard(n_players={self.n_players}, n_objects={self.n_objects}, "
            f"channels={self.channels()})"
        )
