"""Shared randomness: leader-published random bits, honest or adversarial.

The CalculatePreferences protocol relies on random choices agreed upon by
all players (the sample set of §6.3 and the prober assignment of §6.6).  In
the dishonest setting (§7.1) those bits are published by an elected leader:
an honest leader publishes unbiased bits, a dishonest leader may publish
bits crafted by the coalition.

:class:`SharedRandomness` exposes exactly the draw types the protocol needs;
:class:`AdversarialRandomness` is a drop-in replacement representing a
dishonest leader.  Its bias hooks implement the attacks the paper's analysis
worries about:

* hiding "revealing" objects from the sample set so colluders are clustered
  with honest victims (cluster hijacking, §7.2);
* steering the prober assignment of Step 4 toward coalition members so their
  lies carry majorities.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, as_generator
from repro.errors import ConfigurationError

__all__ = ["SharedRandomness", "AdversarialRandomness"]


class SharedRandomness:
    """Unbiased shared random bits, as published by an honest leader."""

    #: Whether the source is honest (unbiased).  Adversarial subclasses flip it.
    honest: bool = True

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = as_generator(seed)

    # -- raw access --------------------------------------------------------
    @property
    def generator(self) -> np.random.Generator:
        """The underlying generator (for draws with no adversarial hook)."""
        return self._rng

    # -- protocol-level draws ----------------------------------------------
    def sample_objects(self, n_objects: int, probability: float) -> np.ndarray:
        """Sample-set selection of §6.3: include each object i.i.d. w.p. ``probability``.

        Returns the sorted indices of selected objects.  Guarantees a
        non-empty result (re-draws once, then falls back to a single uniform
        object) because an empty sample would make downstream steps
        degenerate on tiny test instances.
        """
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError(
                f"sample probability must lie in (0, 1], got {probability}"
            )
        mask = self._rng.random(n_objects) < probability
        if not mask.any():
            mask = self._rng.random(n_objects) < probability
        if not mask.any():
            mask[self._rng.integers(0, n_objects)] = True
        return np.flatnonzero(mask)

    def partition_in_two(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Randomly split ``indices`` into two halves (ZeroRadius step 2).

        Each element goes to either side with probability 1/2; if either side
        ends up empty the split is balanced deterministically instead, which
        only happens for very small inputs.
        """
        indices = np.asarray(indices, dtype=np.int64)
        side = self._rng.random(indices.size) < 0.5
        left, right = indices[side], indices[~side]
        if left.size == 0 or right.size == 0:
            shuffled = self._rng.permutation(indices)
            half = max(1, indices.size // 2)
            left, right = shuffled[:half], shuffled[half:]
        return left, right

    def partition_objects(self, objects: np.ndarray, parts: int) -> list[np.ndarray]:
        """Randomly partition ``objects`` into ``parts`` disjoint subsets
        (SmallRadius step 1)."""
        objects = np.asarray(objects, dtype=np.int64)
        parts = max(1, min(int(parts), max(1, objects.size)))
        assignment = self._rng.integers(0, parts, size=objects.size)
        return [objects[assignment == i] for i in range(parts)]

    def assign_probers(
        self,
        cluster_members: np.ndarray,
        n_objects: int,
        redundancy: int,
    ) -> np.ndarray:
        """Step 4 prober assignment: for each object choose ``redundancy``
        cluster members uniformly at random (with replacement, as in the
        paper's "choose at random one of the players, repeated Θ(log n)
        times").

        Returns an ``(n_objects, redundancy)`` array of player indices.
        """
        cluster_members = np.asarray(cluster_members, dtype=np.int64)
        if cluster_members.size == 0:
            raise ConfigurationError("cannot assign probers from an empty cluster")
        picks = self._rng.integers(0, cluster_members.size, size=(n_objects, redundancy))
        return cluster_members[picks]

    def spawn(self) -> "SharedRandomness":
        """Derive an independent shared-randomness stream (per iteration)."""
        child_seed = int(self._rng.integers(0, 2**63 - 1))
        return SharedRandomness(child_seed)


class AdversarialRandomness(SharedRandomness):
    """Shared bits published by a *dishonest* leader.

    Parameters
    ----------
    seed:
        Seed of the underlying generator (the adversary still needs
        unpredictable bits for whatever it does not care about).
    hidden_objects:
        Objects the coalition wants excluded from any sample set — typically
        the objects on which colluders disagree with the honest cluster they
        are trying to infiltrate, so that the neighbour graph cannot tell
        them apart.
    favoured_players:
        Players (the coalition) to over-represent in Step-4 prober
        assignments.
    favoured_weight:
        Relative sampling weight given to each favoured player (an honest
        player has weight 1).  The paper's integrity argument is that even a
        dishonest leader cannot forge posts, only bias choices; the weight
        models how aggressively the leader skews assignments while still
        producing a superficially plausible assignment.
    """

    honest = False

    def __init__(
        self,
        seed: SeedLike = None,
        hidden_objects: np.ndarray | None = None,
        favoured_players: np.ndarray | None = None,
        favoured_weight: float = 8.0,
    ) -> None:
        super().__init__(seed)
        self.hidden_objects = (
            np.asarray(hidden_objects, dtype=np.int64)
            if hidden_objects is not None
            else np.zeros(0, dtype=np.int64)
        )
        self.favoured_players = (
            np.asarray(favoured_players, dtype=np.int64)
            if favoured_players is not None
            else np.zeros(0, dtype=np.int64)
        )
        if favoured_weight < 1.0:
            raise ConfigurationError(
                f"favoured_weight must be >= 1, got {favoured_weight}"
            )
        self.favoured_weight = float(favoured_weight)

    def sample_objects(self, n_objects: int, probability: float) -> np.ndarray:
        """Biased sample: draw as usual, then silently drop hidden objects."""
        sample = super().sample_objects(n_objects, probability)
        if self.hidden_objects.size:
            sample = np.setdiff1d(sample, self.hidden_objects, assume_unique=False)
            if sample.size == 0:
                # The leader must still publish *something* plausible.
                visible = np.setdiff1d(
                    np.arange(n_objects), self.hidden_objects, assume_unique=True
                )
                pool = visible if visible.size else np.arange(n_objects)
                sample = np.sort(
                    self.generator.choice(pool, size=min(4, pool.size), replace=False)
                )
        return sample

    def assign_probers(
        self,
        cluster_members: np.ndarray,
        n_objects: int,
        redundancy: int,
    ) -> np.ndarray:
        """Biased prober assignment: over-weight coalition members."""
        cluster_members = np.asarray(cluster_members, dtype=np.int64)
        if cluster_members.size == 0:
            raise ConfigurationError("cannot assign probers from an empty cluster")
        weights = np.ones(cluster_members.size, dtype=np.float64)
        if self.favoured_players.size:
            favoured_mask = np.isin(cluster_members, self.favoured_players)
            weights[favoured_mask] = self.favoured_weight
        weights /= weights.sum()
        picks = self.generator.choice(
            cluster_members.size, size=(n_objects, redundancy), replace=True, p=weights
        )
        return cluster_members[picks]

    def spawn(self) -> "AdversarialRandomness":
        child_seed = int(self.generator.integers(0, 2**63 - 1))
        return AdversarialRandomness(
            child_seed,
            hidden_objects=self.hidden_objects,
            favoured_players=self.favoured_players,
            favoured_weight=self.favoured_weight,
        )
