"""Feige's lightest-bin leader election under a rushing coalition.

The protocol (Feige, FOCS'99; used by the paper in §7.1) proceeds in rounds.
In each round the surviving players throw a ball into one of ``b`` bins; the
players in the *lightest* bin survive to the next round, everyone else is
eliminated.  Because dishonest players cannot flood a bin without making it
heavy (and therefore not lightest), the honest fraction of the surviving set
cannot drop quickly: with ``(1+δ)n/2`` honest players an honest leader is
elected with probability ``Ω(δ^1.65)``.

Adversary model implemented here — the strongest the full-information model
allows:

* the coalition is *rushing*: it sees every honest player's bin choice for
  the round before placing its own members;
* it places members greedily to maximise the dishonest fraction of whichever
  bin will end up lightest (it tops up the bin with the fewest honest players
  while keeping it no heavier than the next-lightest alternative).

The election consumes no probes (it is pure bulletin-board communication).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, as_generator
from repro.errors import LeaderElectionError

__all__ = ["ElectionResult", "feige_leader_election"]


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of one leader election."""

    leader: int
    leader_is_honest: bool
    rounds: int
    survivors_per_round: list[int]


def _bins_for(count: int) -> int:
    """Number of bins for a round with ``count`` surviving players.

    Feige's analysis uses bins of expected load Θ(log count); we use
    ``max(2, count // (4 + ⌈log2 count⌉))`` which keeps loads logarithmic and
    degrades gracefully to 2 bins for small survivor sets.
    """
    if count <= 2:
        return 2
    load = 4 + int(np.ceil(np.log2(count)))
    return max(2, count // load)


def feige_leader_election(
    n_players: int,
    dishonest: np.ndarray | None = None,
    seed: SeedLike = None,
    max_rounds: int = 64,
) -> ElectionResult:
    """Elect a leader among ``n_players`` with a rushing dishonest coalition.

    Parameters
    ----------
    n_players:
        Total number of players.
    dishonest:
        Indices of coalition members (empty / None for an all-honest run).
    seed:
        Randomness for the honest players' bin choices and final tie-breaks.
    max_rounds:
        Safety cap on the number of rounds (the protocol terminates in
        ``O(log n)`` rounds; the cap guards against pathological configurations
        in tests).

    Returns
    -------
    ElectionResult
        The elected leader, whether it is honest, and per-round survivor
        counts (used by experiment E9).
    """
    if n_players <= 0:
        raise LeaderElectionError(f"n_players must be positive, got {n_players}")
    rng = as_generator(seed)
    dishonest_set = (
        set(int(p) for p in np.asarray(dishonest, dtype=np.int64).tolist())
        if dishonest is not None
        else set()
    )
    for player in dishonest_set:
        if not 0 <= player < n_players:
            raise LeaderElectionError(f"dishonest player index {player} out of range")

    survivors = np.arange(n_players, dtype=np.int64)
    survivors_per_round: list[int] = [int(survivors.size)]
    rounds = 0

    while survivors.size > 1 and rounds < max_rounds:
        rounds += 1
        n_bins = _bins_for(int(survivors.size))
        is_dishonest = np.asarray([int(p) in dishonest_set for p in survivors])
        honest_survivors = survivors[~is_dishonest]
        dishonest_survivors = survivors[is_dishonest]

        # Honest players choose bins uniformly at random.
        honest_choice = rng.integers(0, n_bins, size=honest_survivors.size)
        honest_load = np.bincount(honest_choice, minlength=n_bins)

        # Rushing coalition: place members to maximise the dishonest share of
        # the eventual lightest bin.  The coalition tops up the bin with the
        # fewest honest players with just enough members that it stays no
        # heavier than the next-lightest bin (so it remains the lightest and
        # survives with the largest possible dishonest fraction), and parks
        # every remaining member in the currently heaviest bin where they are
        # guaranteed to be eliminated without affecting the outcome.
        dishonest_load = np.zeros(n_bins, dtype=np.int64)
        if dishonest_survivors.size:
            dishonest_choice = np.empty(dishonest_survivors.size, dtype=np.int64)
            order = np.argsort(honest_load, kind="stable")
            target = int(order[0])
            second_lightest = int(honest_load[order[1]]) if n_bins > 1 else int(honest_load[target])
            stuff = min(
                dishonest_survivors.size,
                max(0, second_lightest - int(honest_load[target])),
            )
            dump = int(np.argmax(honest_load))
            dishonest_choice[:stuff] = target
            dishonest_choice[stuff:] = dump
            np.add.at(dishonest_load, dishonest_choice, 1)
        else:
            dishonest_choice = np.zeros(0, dtype=np.int64)

        total_load = honest_load + dishonest_load
        # Empty bins cannot be "lightest" in the protocol sense (a leader must
        # come out of the surviving bin); ignore them unless all are empty.
        occupied = np.flatnonzero(total_load > 0)
        if occupied.size == 0:
            break
        lightest = occupied[int(np.argmin(total_load[occupied]))]

        new_survivors = np.concatenate(
            [
                honest_survivors[honest_choice == lightest],
                dishonest_survivors[dishonest_choice == lightest],
            ]
        )
        if new_survivors.size == 0 or new_survivors.size == survivors.size:
            # No progress (tiny sets); fall through to a uniform final pick.
            break
        survivors = np.sort(new_survivors)
        survivors_per_round.append(int(survivors.size))

    leader = int(survivors[int(rng.integers(0, survivors.size))])
    return ElectionResult(
        leader=leader,
        leader_is_honest=leader not in dishonest_set,
        rounds=rounds,
        survivors_per_round=survivors_per_round,
    )
