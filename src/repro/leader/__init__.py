"""Byzantine-tolerant leader election (§7.1).

The robust wrapper needs shared random bits that the dishonest coalition
cannot bias.  The paper obtains them by electing a leader with Feige's
lightest-bin protocol — an honest leader is elected with constant
probability, and the whole pipeline is repeated Θ(log n) times so at least
one repetition uses honest randomness with high probability.
"""

from repro.leader.feige import ElectionResult, feige_leader_election

__all__ = ["ElectionResult", "feige_leader_election"]
