"""Naive baselines: the envelopes every comparison is framed against.

None of these use the paper's machinery; they bound the problem from below
(random guessing, solo probing) and from above (probe everything), and
``global_majority`` represents the non-personalised aggregation that the
introduction's program-committee example implicitly argues against.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, as_generator
from repro.errors import ProtocolError
from repro.protocols.context import ProtocolContext

__all__ = [
    "random_guessing",
    "probe_everything",
    "solo_probing",
    "global_majority",
]


def random_guessing(ctx: ProtocolContext, seed: SeedLike = None) -> np.ndarray:
    """Every player guesses every preference uniformly at random (0 probes).

    Expected error is ``n_objects / 2`` per player; this is the floor any
    collaboration must beat.
    """
    rng = as_generator(seed)
    return rng.integers(0, 2, size=(ctx.n_players, ctx.n_objects), dtype=np.uint8)


def probe_everything(ctx: ProtocolContext) -> np.ndarray:
    """Every player probes every object (error 0, ``n_objects`` probes).

    The upper envelope on probe cost: collaborative scoring is interesting
    exactly when this is unaffordable.
    """
    block, _ = ctx.probe_and_report_block("baseline/probe-all", ctx.all_players(), ctx.all_objects())
    return block


def solo_probing(ctx: ProtocolContext, seed: SeedLike = None) -> np.ndarray:
    """Every player probes ``B`` random objects on its own and guesses the rest.

    No collaboration: expected error ``(n_objects − B) / 2``.  This is the
    baseline the introduction motivates collaborative scoring against — a
    busy reviewer reading only its ``B`` assigned papers and flipping coins
    for the rest.
    """
    rng = as_generator(seed)
    budget = min(ctx.budget, ctx.n_objects)
    predictions = rng.integers(0, 2, size=(ctx.n_players, ctx.n_objects), dtype=np.uint8)
    for player in range(ctx.n_players):
        probed = rng.choice(ctx.n_objects, size=budget, replace=False)
        values = ctx.oracle.probe_objects(player, probed)
        predictions[player, probed] = values
    return predictions


def global_majority(ctx: ProtocolContext, seed: SeedLike = None) -> np.ndarray:
    """Pool all posted reports and give every player the global majority.

    Each player probes ``B`` random objects and posts the result; every
    player then predicts, for each object, the majority of the posted reports
    (ties and never-probed objects fall back to 1).  Works only when players
    are near-unanimous and no one lies: personalisation and robustness both
    collapse, which is exactly what experiments E5/E6 illustrate.
    """
    rng = as_generator(seed)
    budget = min(ctx.budget, ctx.n_objects)
    if budget <= 0:
        raise ProtocolError("global_majority requires a positive budget")
    for player in range(ctx.n_players):
        probed = rng.choice(ctx.n_objects, size=budget, replace=False)
        true_values = ctx.oracle.probe_objects(player, probed)
        reported = ctx.pool.reports_for(player, probed, true_values)
        ctx.board.post_reports("baseline/global-majority", player, probed, reported)
    # Every (player, object) cell is posted at most once here (each player
    # draws without replacement and posts once), so the vote multiset equals
    # the board's distinct-cell state and the consensus *is* the board's
    # masked majority — one packed reduction over the posted channel.
    consensus, _ = ctx.board.masked_majority("baseline/global-majority", default=1)
    return np.tile(consensus, (ctx.n_players, 1))
