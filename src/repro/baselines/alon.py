"""The prior state of the art: Alon–Awerbuch–Azar–Patt-Shamir ([2,3]).

"Tell me who I am: an interactive recommendation system" solves the general
collaborative scoring problem *without* dishonest players.  Its structure,
as summarised in §1/§4/§6.1 of our paper, is:

* guess the diameter ``D`` by doubling (the same §6.1 strategy the new
  protocol reuses);
* for each guess, run SmallRadius **directly on the full object set** with
  that diameter — no sampling, no clustering, no work sharing;
* let each player pick its best candidate with RSelect.

Because SmallRadius partitions the objects into ``Θ(D^{3/2})`` groups and
runs a budget-``5B`` ZeroRadius inside each, the probe complexity scales as
``O(B² polylog n)`` once ``D`` reaches the interesting ``Θ(n/B)`` range, and
the guarantee degrades to a ``B``-approximation of the optimal error.  It
also has no defence against dishonest players — lies flow straight into the
ZeroRadius popular-vector sets.

This module is the comparator for experiments E6 (robustness) and E8
(probe/error comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calculate_preferences import default_diameter_schedule
from repro.errors import ProtocolError
from repro.protocols.context import ProtocolContext
from repro.protocols.rselect import rselect_collective
from repro.protocols.small_radius import small_radius

__all__ = ["AlonBaselineResult", "alon_awerbuch_azar_patt_shamir"]


@dataclass(frozen=True)
class AlonBaselineResult:
    """Output of the Alon et al. baseline."""

    predictions: np.ndarray
    candidate_stack: np.ndarray
    diameters: tuple[float, ...]


def alon_awerbuch_azar_patt_shamir(
    ctx: ProtocolContext,
    diameters: list[float] | None = None,
    channel: str = "alon",
) -> AlonBaselineResult:
    """Run the [2,3] algorithm: doubling over SmallRadius on all objects.

    Parameters
    ----------
    ctx:
        Execution context (reuse a fresh context per algorithm so probe
        counters are attributable).
    diameters:
        Guessed-diameter schedule; defaults to the full doubling schedule.
        Benchmarks pass the same restricted schedule they give
        CalculatePreferences so the comparison is probe-for-probe fair.
    channel:
        Bulletin-board channel prefix.

    Returns
    -------
    AlonBaselineResult
        Final predictions and the per-guess candidate stack.
    """
    players = ctx.all_players()
    objects = ctx.all_objects()
    if diameters is None:
        diameters = [float(d) for d in default_diameter_schedule(ctx.n_objects)]
    if not diameters:
        raise ProtocolError("diameters schedule must be non-empty")

    candidates: list[np.ndarray] = []
    for index, diameter in enumerate(diameters):
        if diameter <= 0:
            raise ProtocolError(f"guessed diameter must be positive, got {diameter}")
        preds = small_radius(
            ctx,
            players,
            objects,
            diameter,
            budget=ctx.budget,
            channel=f"{channel}/d{index}",
        )
        candidates.append(preds)

    candidate_stack = np.stack(candidates, axis=1)
    if candidate_stack.shape[1] == 1:
        final = candidate_stack[:, 0, :].copy()
    else:
        final = rselect_collective(ctx, players, objects, candidate_stack)
    return AlonBaselineResult(
        predictions=final,
        candidate_stack=candidate_stack,
        diameters=tuple(float(d) for d in diameters),
    )
