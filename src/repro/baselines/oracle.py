"""Oracle skyline: clustering on the *true* distance matrix.

Definition 1 benchmarks every algorithm against the diameter of the best
set of ``n/B`` players around each player.  This module realises that
benchmark operationally: it clusters players using the hidden distance
matrix (something no real protocol can do — it is an *unachievable
skyline*), then runs the paper's own work-sharing phase inside those ideal
clusters.  The result is the best error the work-sharing mechanism could
possibly deliver, and experiments use it to normalise approximation ratios
("how much do we lose by having to *discover* the clusters from probes?").
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.clustering import Clustering
from repro.core.work_sharing import share_work
from repro.errors import ProtocolError
from repro.preferences.metrics import distance_matrix
from repro.protocols.context import ProtocolContext

__all__ = ["oracle_clustering", "ideal_clusters"]


def ideal_clusters(truth: np.ndarray, budget: int) -> Clustering:
    """Greedy min-diameter clustering using the hidden distance matrix.

    Repeatedly pick the player whose ``⌈n/B⌉``-th nearest neighbour is
    closest (the tightest remaining ball), make a cluster of that ball, and
    remove it; leftovers join the cluster of their nearest assigned player.
    This is the natural constructive realisation of the Definition-1
    benchmark (it is a 2-approximation of the per-player optimal diameter,
    by the triangle inequality).
    """
    truth = np.asarray(truth)
    n = truth.shape[0]
    if budget <= 0:
        raise ProtocolError(f"budget must be positive, got {budget}")
    target = max(2, int(math.ceil(n / budget)))
    distances = distance_matrix(truth)

    assignment = np.full(n, -1, dtype=np.int64)
    remaining = np.ones(n, dtype=bool)
    clusters: list[np.ndarray] = []
    while remaining.sum() >= target:
        rem_idx = np.flatnonzero(remaining)
        sub = distances[np.ix_(rem_idx, rem_idx)]
        k = min(target - 1, sub.shape[0] - 1)
        radii = np.partition(sub, k, axis=1)[:, k]
        seed_local = int(np.argmin(radii))
        order = np.argsort(sub[seed_local])
        members = rem_idx[order[:target]]
        cluster_id = len(clusters)
        clusters.append(np.sort(members))
        assignment[members] = cluster_id
        remaining[members] = False

    leftovers = np.flatnonzero(remaining)
    if clusters:
        assigned = np.flatnonzero(assignment >= 0)
        for player in leftovers:
            nearest = assigned[int(np.argmin(distances[player, assigned]))]
            assignment[player] = assignment[nearest]
    else:
        assignment[:] = 0
        clusters = [np.arange(n, dtype=np.int64)]
        return Clustering(assignment=assignment, clusters=clusters)

    rebuilt = [np.flatnonzero(assignment == cid).astype(np.int64) for cid in range(len(clusters))]
    return Clustering(assignment=assignment, clusters=rebuilt)


def oracle_clustering(ctx: ProtocolContext) -> np.ndarray:
    """Run work sharing inside ideal (true-distance) clusters.

    The clustering step reads the ground truth (hence "oracle"); the
    work-sharing phase still goes through the probe oracle and the player
    pool, so dishonest players can still lie inside their assigned clusters —
    making this skyline meaningful in the Byzantine experiments too.
    """
    clustering = ideal_clusters(ctx.oracle.ground_truth(), ctx.budget)
    return share_work(ctx, clustering, channel="baseline/oracle-work")
