"""Baselines the paper compares against (explicitly or implicitly).

* :func:`repro.baselines.alon.alon_awerbuch_azar_patt_shamir` — the prior
  state of the art ([2,3], "Tell me who I am"): diameter doubling over
  SmallRadius applied directly to the full object set, ``O(B² polylog n)``
  probes, ``B``-approximation, no Byzantine tolerance.
* :func:`repro.baselines.naive.random_guessing` — predict uniformly at
  random (what a player can do with zero collaboration and zero probes).
* :func:`repro.baselines.naive.probe_everything` — each player probes every
  object (perfect output, ``n`` probes; the upper envelope).
* :func:`repro.baselines.naive.solo_probing` — each player probes ``B``
  random objects and guesses the rest (no collaboration, the lower envelope
  the introduction argues against).
* :func:`repro.baselines.naive.global_majority` — every player adopts the
  global majority of posted scores (a non-robust, non-personalised
  aggregator; collapses under both heterogeneity and dishonesty).
* :func:`repro.baselines.oracle.oracle_clustering` — an *unachievable*
  skyline that clusters players using the true distance matrix and then runs
  the work-sharing phase; it realises the Definition-1 benchmark and is used
  to normalise approximation ratios in the experiment tables.
"""

from repro.baselines.alon import alon_awerbuch_azar_patt_shamir
from repro.baselines.naive import (
    global_majority,
    probe_everything,
    random_guessing,
    solo_probing,
)
from repro.baselines.oracle import oracle_clustering

__all__ = [
    "alon_awerbuch_azar_patt_shamir",
    "global_majority",
    "oracle_clustering",
    "probe_everything",
    "random_guessing",
    "solo_probing",
]
