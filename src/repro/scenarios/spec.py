"""The declarative scenario vocabulary: picklable specs, no behaviour.

A scenario is everything the engine needs to build and run one workload:

* :class:`PopulationSpec` — who the players are: instance size, which
  preference generator plants the hidden structure, and its parameters;
* :class:`CoalitionSpec` — one colluding coalition (strategy, size expressed
  absolutely or relative to the paper's ``n/(3B)`` tolerance or to ``n``
  itself, victim cluster, attack targets).  A scenario may carry *several*
  coalitions simultaneously — something the fixed E1–E12 drivers cannot
  express;
* :class:`DynamicsSpec` — how the world moves while the protocol runs:
  player churn between repetitions and a noisy probe channel;
* :class:`ProtocolSpec` — which algorithm answers the workload, under which
  constants profile, with which budget;
* :class:`FaultsSpec` — system-level chaos riding along with the workload:
  how many worker crashes, probe timeouts, stalls and flaky board posts the
  trial engine should inject (deterministically, from the sweep seed), and
  the resilience envelope (retries, per-point timeout, graceful
  degradation) it should run under.

Everything here is a frozen dataclass of plain Python/NumPy scalars, so a
spec pickles cleanly into :func:`repro.analysis.runner.run_trials` workers,
and the pair ``(spec, seed)`` fully determines an execution (the engine
derives every random stream from the seed alone).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.players.adversaries import COALITION_STRATEGIES

__all__ = [
    "GENERATOR_NAMES",
    "PROTOCOL_NAMES",
    "SUBSET_PROTOCOLS",
    "PopulationSpec",
    "CoalitionSpec",
    "DynamicsSpec",
    "ProtocolSpec",
    "FaultsSpec",
    "ScenarioSpec",
    "apply_override",
]


#: Preference generators the population spec may name
#: (keys resolved in :mod:`repro.scenarios.engine`).
GENERATOR_NAMES: tuple[str, ...] = (
    "planted",
    "zero-radius",
    "mixture",
    "random",
    "heterogeneous",
)

#: Algorithms the protocol spec may name.
PROTOCOL_NAMES: tuple[str, ...] = (
    "calculate-preferences",
    "robust",
    "alon",
    "small-radius",
    "zero-radius",
    "solo-probing",
    "global-majority",
    "random-guessing",
    "oracle-clustering",
)

#: Protocols that accept an arbitrary player subset — the only ones that can
#: run under churn (the others are defined over the full population).
SUBSET_PROTOCOLS: tuple[str, ...] = ("small-radius", "zero-radius")


@dataclass(frozen=True)
class PopulationSpec:
    """The hidden preference instance: who plays and how they correlate.

    ``params`` are forwarded to the named generator; see
    :mod:`repro.preferences.generators` for each generator's vocabulary
    (``n_clusters``/``diameter`` for ``planted``, ``n_types``/``noise`` for
    ``mixture``, ``cluster_sizes``/``cluster_diameters`` for
    ``heterogeneous``, ...).  Heterogeneous per-cluster budgets are expressed
    through the ``heterogeneous`` generator's explicit size/diameter lists.
    """

    n_players: int = 128
    n_objects: int = 256
    generator: str = "planted"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_players <= 0 or self.n_objects <= 0:
            raise ConfigurationError(
                "population sizes must be positive, got "
                f"n_players={self.n_players}, n_objects={self.n_objects}"
            )
        if self.generator not in GENERATOR_NAMES:
            raise ConfigurationError(
                f"unknown generator {self.generator!r}; known: {GENERATOR_NAMES}"
            )
        # Copy the mapping so later caller-side mutation cannot change the
        # spec after validation (specs are shared across workers by value).
        object.__setattr__(self, "params", dict(self.params))


@dataclass(frozen=True)
class CoalitionSpec:
    """One colluding coalition.

    Exactly one of ``size``, ``fraction_of_tolerance`` (relative to the
    paper's ``n/(3B)`` bound) or ``fraction_of_players`` (relative to ``n``;
    for β→1/2 stress scenarios) must be set.  ``victim_cluster`` names a
    planted cluster id; ``target_fraction`` sizes the attacked object set.
    """

    strategy: str = "strange"
    size: int | None = None
    fraction_of_tolerance: float | None = None
    fraction_of_players: float | None = None
    victim_cluster: int = 0
    target_fraction: float = 0.125
    switch_after: int | None = None

    def __post_init__(self) -> None:
        if self.strategy not in COALITION_STRATEGIES:
            raise ConfigurationError(
                f"unknown coalition strategy {self.strategy!r}; "
                f"known: {COALITION_STRATEGIES}"
            )
        sizings = [
            self.size is not None,
            self.fraction_of_tolerance is not None,
            self.fraction_of_players is not None,
        ]
        if sum(sizings) != 1:
            raise ConfigurationError(
                "exactly one of size / fraction_of_tolerance / "
                "fraction_of_players must be set per coalition"
            )
        if self.size is not None and self.size < 0:
            raise ConfigurationError(f"coalition size must be >= 0, got {self.size}")
        if self.fraction_of_tolerance is not None and self.fraction_of_tolerance < 0:
            raise ConfigurationError(
                f"fraction_of_tolerance must be >= 0, got {self.fraction_of_tolerance}"
            )
        if self.fraction_of_players is not None and not (
            0.0 <= self.fraction_of_players < 0.5
        ):
            raise ConfigurationError(
                "fraction_of_players must lie in [0, 0.5) (honest majority), "
                f"got {self.fraction_of_players}"
            )
        if not 0.0 < self.target_fraction <= 1.0:
            raise ConfigurationError(
                f"target_fraction must lie in (0, 1], got {self.target_fraction}"
            )

    def resolve_size(self, n_players: int, tolerance: int) -> int:
        """Concrete member count for an ``n_players`` population."""
        if self.size is not None:
            return int(self.size)
        if self.fraction_of_tolerance is not None:
            return int(round(self.fraction_of_tolerance * tolerance))
        return int(round(self.fraction_of_players * n_players))


@dataclass(frozen=True)
class DynamicsSpec:
    """World dynamics: churn between repetitions and probe-channel noise."""

    repetitions: int = 1
    arrivals: int = 0
    departures: int = 0
    initially_active: int | None = None
    noise_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.repetitions <= 0:
            raise ConfigurationError(
                f"repetitions must be positive, got {self.repetitions}"
            )
        if self.arrivals < 0 or self.departures < 0:
            raise ConfigurationError(
                "arrivals and departures must be non-negative, got "
                f"{self.arrivals}, {self.departures}"
            )
        if not 0.0 <= self.noise_rate < 0.5:
            raise ConfigurationError(
                f"noise_rate must lie in [0, 0.5), got {self.noise_rate}"
            )

    @property
    def has_churn(self) -> bool:
        """Whether any player ever arrives or departs."""
        return self.arrivals > 0 or self.departures > 0 or (
            self.initially_active is not None
        )


@dataclass(frozen=True)
class ProtocolSpec:
    """Which algorithm runs, under which constants, with which budget.

    ``budget`` is the *nominal* parameter ``B`` the algorithm reasons with.
    ``probe_limit`` is different: a **hard per-player cap** enforced by the
    oracle (the ROADMAP's "hard budget heterogeneity") — a protocol that
    exceeds it fails with :class:`~repro.errors.BudgetExceededError` rather
    than completing.  ``probe_limit_factors`` makes the cap heterogeneous:
    factor ``i`` scales the cap of every player in planted cluster ``i``
    (players outside the listed clusters keep factor 1), so a scenario can
    ration probe capacity unevenly across the population.
    """

    name: str = "calculate-preferences"
    budget: int = 4
    constants_profile: str = "practical"
    constants_overrides: Mapping[str, float] = field(default_factory=dict)
    diameter: float | None = None
    robust_iterations: int | None = None
    probe_limit: int | None = None
    probe_limit_factors: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in PROTOCOL_NAMES:
            raise ConfigurationError(
                f"unknown protocol {self.name!r}; known: {PROTOCOL_NAMES}"
            )
        if self.budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {self.budget}")
        if self.constants_profile not in ("practical", "paper"):
            raise ConfigurationError(
                "constants_profile must be 'practical' or 'paper', got "
                f"{self.constants_profile!r}"
            )
        if self.robust_iterations is not None and self.robust_iterations <= 0:
            raise ConfigurationError(
                f"robust_iterations must be positive, got {self.robust_iterations}"
            )
        if self.probe_limit is not None and self.probe_limit <= 0:
            raise ConfigurationError(
                f"probe_limit must be positive, got {self.probe_limit}"
            )
        object.__setattr__(
            self, "probe_limit_factors", tuple(self.probe_limit_factors)
        )
        if self.probe_limit_factors:
            if self.probe_limit is None:
                raise ConfigurationError(
                    "probe_limit_factors require a probe_limit to scale"
                )
            if any(factor <= 0 for factor in self.probe_limit_factors):
                raise ConfigurationError("probe_limit_factors must all be positive")
        object.__setattr__(self, "constants_overrides", dict(self.constants_overrides))


@dataclass(frozen=True)
class FaultsSpec:
    """Declarative system-level chaos for a scenario's trial sweep.

    The counts request that many deterministic faults spread (by the sweep
    seed) across the sweep's trial points — see
    :func:`repro.faults.chaos.plan_from_spec` and
    :func:`repro.faults.plan.make_fault_plan` for the exact semantics.
    ``retries`` / ``timeout_s`` set the resilience envelope the engine runs
    under; ``degrade`` forwards to
    :func:`repro.core.robust.robust_calculate_preferences` so a robust
    scenario survives budget/fault-channel exhaustion with a typed partial
    result instead of a failed trial.

    Crashes, timeouts, stalls and duplicate posts never change results
    (retried attempts replay the clean execution); ``board_drops`` silently
    removes data and is therefore excluded from determinism gates — it is
    the degradation channel.
    """

    worker_crashes: int = 0
    oracle_timeouts: int = 0
    stalls: int = 0
    stall_s: float = 0.25
    board_duplicates: int = 0
    board_drops: int = 0
    retries: int = 2
    timeout_s: float | None = None
    degrade: bool = False

    def __post_init__(self) -> None:
        for name in (
            "worker_crashes",
            "oracle_timeouts",
            "stalls",
            "board_duplicates",
            "board_drops",
            "retries",
        ):
            if int(getattr(self, name)) < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative, got {getattr(self, name)}"
                )
        if self.stalls > 0 and self.stall_s <= 0.0:
            raise ConfigurationError(
                f"stall_s must be positive when stalls are planned, got {self.stall_s}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )

    @property
    def any_faults(self) -> bool:
        """Whether this spec plans any fault at all."""
        return (
            self.worker_crashes
            + self.oracle_timeouts
            + self.stalls
            + self.board_duplicates
            + self.board_drops
        ) > 0


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, self-describing workload."""

    name: str
    description: str
    population: PopulationSpec = field(default_factory=PopulationSpec)
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    coalitions: tuple[CoalitionSpec, ...] = ()
    dynamics: DynamicsSpec = field(default_factory=DynamicsSpec)
    faults: FaultsSpec = field(default_factory=FaultsSpec)
    #: True for scenario families the fixed seed drivers cannot express
    #: (mixed coalitions, adaptive switches, churn, noisy oracles, ...).
    novel: bool = False
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        object.__setattr__(self, "coalitions", tuple(self.coalitions))
        object.__setattr__(self, "tags", tuple(self.tags))
        if self.dynamics.repetitions > 1 or self.dynamics.has_churn:
            if self.protocol.name not in SUBSET_PROTOCOLS:
                raise ConfigurationError(
                    f"protocol {self.protocol.name!r} runs over the full "
                    "population and cannot be combined with churn/repetitions; "
                    f"use one of {SUBSET_PROTOCOLS}"
                )
        if self.coalitions and self.protocol.name == "oracle-clustering":
            raise ConfigurationError(
                "oracle-clustering reads the hidden matrix and is only defined "
                "for honest populations"
            )


def apply_override(spec: ScenarioSpec, path: str, value: Any) -> ScenarioSpec:
    """Return a copy of ``spec`` with one dotted-path field replaced.

    Paths walk nested dataclasses and tuples, e.g. ``population.n_players``,
    ``dynamics.noise_rate``, ``protocol.budget`` or ``coalitions.0.size``.
    Numeric path segments index into tuples.  Used by the sweep engine and
    the CLI's ``--set`` flags.
    """
    segments = path.split(".")
    if not all(segments):
        raise ConfigurationError(f"invalid override path {path!r}")

    def rebuild(node: Any, remaining: list[str]) -> Any:
        head, *rest = remaining
        if isinstance(node, tuple):
            if not head.isdigit():
                raise ConfigurationError(
                    f"path segment {head!r} must be an index into a tuple in {path!r}"
                )
            index = int(head)
            if not 0 <= index < len(node):
                raise ConfigurationError(
                    f"index {index} out of range for {path!r} (length {len(node)})"
                )
            new_item = rebuild(node[index], rest) if rest else value
            return node[:index] + (new_item,) + node[index + 1 :]
        if not hasattr(node, head):
            raise ConfigurationError(
                f"{type(node).__name__} has no field {head!r} (path {path!r})"
            )
        if not rest:
            return replace(node, **{head: value})
        return replace(node, **{head: rebuild(getattr(node, head), rest)})

    return rebuild(spec, segments)
