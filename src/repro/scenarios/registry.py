"""Named scenario families: the catalog behind ``python -m repro list``.

Each entry is a fully-specified :class:`~repro.scenarios.spec.ScenarioSpec`
sized to run in seconds on a laptop; sweeps scale them up by overriding
``population.n_players`` etc.  Specs marked ``novel=True`` exercise workloads
the fixed E1–E12 drivers cannot express at all — simultaneous mixed-strategy
coalitions, an adaptive mid-run strategy switch, player churn, a noisy probe
channel, and a β→1/2 adversarial-majority stress.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.scenarios.spec import (
    CoalitionSpec,
    DynamicsSpec,
    FaultsSpec,
    PopulationSpec,
    ProtocolSpec,
    ScenarioSpec,
)

__all__ = ["register", "get_scenario", "scenario_names", "all_scenarios"]


_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the registry (name must be unused); returns it."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from None


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> list[ScenarioSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


# ---------------------------------------------------------------------------
# Catalog — classic workloads (scenario-spec forms of the seed drivers)
# ---------------------------------------------------------------------------
register(ScenarioSpec(
    name="honest-planted",
    description=(
        "Planted bounded-diameter clusters, all players honest, full "
        "CalculatePreferences pipeline (the E5 workload as a spec)."
    ),
    population=PopulationSpec(
        n_players=128, n_objects=256, generator="planted",
        params={"n_clusters": 4, "diameter": 32},
    ),
    protocol=ProtocolSpec(name="calculate-preferences", budget=4),
    tags=("honest", "planted"),
))

register(ScenarioSpec(
    name="zero-radius-exact",
    description=(
        "Identical-preference clusters solved exactly by ZeroRadius "
        "(Theorem 4's workload)."
    ),
    population=PopulationSpec(
        n_players=96, n_objects=96, generator="zero-radius",
        params={"n_clusters": 4},
    ),
    protocol=ProtocolSpec(name="zero-radius", budget=4),
    tags=("honest", "exact"),
))

register(ScenarioSpec(
    name="small-radius-planted",
    description=(
        "SmallRadius alone on a small-diameter planted instance "
        "(Theorem 5's workload)."
    ),
    population=PopulationSpec(
        n_players=96, n_objects=128, generator="planted",
        params={"n_clusters": 4, "diameter": 8},
    ),
    protocol=ProtocolSpec(name="small-radius", budget=4, diameter=8.0),
    tags=("honest", "planted"),
))

register(ScenarioSpec(
    name="heterogeneous-clusters",
    description=(
        "Clusters of unequal sizes and diameters (the §8 heterogeneous-budget "
        "discussion; the E11 workload as a spec)."
    ),
    population=PopulationSpec(
        n_players=128, n_objects=256, generator="heterogeneous",
        params={
            "cluster_sizes": [64, 32, 16, 16],
            "cluster_diameters": [16, 32, 64, 8],
        },
    ),
    protocol=ProtocolSpec(name="calculate-preferences", budget=4),
    tags=("honest", "heterogeneous"),
))

register(ScenarioSpec(
    name="mixture-types",
    description=(
        "Players drawn from a noisy mixture of type vectors — the "
        "Kleinberg–Sandler related-work setting, off the paper's home turf."
    ),
    population=PopulationSpec(
        n_players=128, n_objects=256, generator="mixture",
        params={"n_types": 4, "noise": 0.05},
    ),
    protocol=ProtocolSpec(name="calculate-preferences", budget=4),
    tags=("honest", "mixture"),
))

register(ScenarioSpec(
    name="random-floor",
    description=(
        "Fully independent preferences scored by global majority — the "
        "no-exploitable-correlation sanity floor."
    ),
    population=PopulationSpec(n_players=96, n_objects=192, generator="random"),
    protocol=ProtocolSpec(name="global-majority", budget=4),
    tags=("honest", "baseline"),
))

register(ScenarioSpec(
    name="strange-coalition",
    description=(
        "Robust protocol vs a full-tolerance strange-object coalition "
        "(Lemma 13 / Theorem 14; the E6 workload as a spec)."
    ),
    population=PopulationSpec(
        n_players=128, n_objects=256, generator="planted",
        params={"n_clusters": 4, "diameter": 32},
    ),
    protocol=ProtocolSpec(name="robust", budget=4, robust_iterations=2),
    coalitions=(CoalitionSpec(strategy="strange", fraction_of_tolerance=1.0),),
    tags=("adversarial",),
))

register(ScenarioSpec(
    name="hijack-coalition",
    description=(
        "Robust protocol vs a full-tolerance cluster-hijacking coalition "
        "(the §7.2 infiltration attack)."
    ),
    population=PopulationSpec(
        n_players=128, n_objects=256, generator="planted",
        params={"n_clusters": 4, "diameter": 32},
    ),
    protocol=ProtocolSpec(name="robust", budget=4, robust_iterations=2),
    coalitions=(CoalitionSpec(strategy="hijack", fraction_of_tolerance=1.0),),
    tags=("adversarial",),
))


# ---------------------------------------------------------------------------
# Catalog — novel workloads (not expressible by the seed drivers)
# ---------------------------------------------------------------------------
register(ScenarioSpec(
    name="mixed-coalitions",
    description=(
        "Three disjoint coalitions attack simultaneously with different "
        "strategies (strange + hijack + random) against different victim "
        "clusters — the seed drivers only ever wire a single strategy."
    ),
    population=PopulationSpec(
        n_players=144, n_objects=256, generator="planted",
        params={"n_clusters": 4, "diameter": 32},
    ),
    protocol=ProtocolSpec(name="robust", budget=4, robust_iterations=2),
    coalitions=(
        CoalitionSpec(strategy="strange", fraction_of_tolerance=0.5, victim_cluster=0),
        CoalitionSpec(strategy="hijack", fraction_of_tolerance=0.5, victim_cluster=1),
        CoalitionSpec(strategy="random", fraction_of_tolerance=0.5, victim_cluster=2),
    ),
    novel=True,
    tags=("adversarial", "mixed"),
))

register(ScenarioSpec(
    name="adaptive-switch",
    description=(
        "A sleeper coalition reports honestly through the clustering phase, "
        "then switches to the strange-object attack mid-run — an adaptive "
        "strategy no fixed-strategy driver can express."
    ),
    population=PopulationSpec(
        n_players=128, n_objects=256, generator="planted",
        params={"n_clusters": 4, "diameter": 32},
    ),
    protocol=ProtocolSpec(name="robust", budget=4, robust_iterations=2),
    coalitions=(
        CoalitionSpec(strategy="adaptive", fraction_of_tolerance=1.0, switch_after=256),
    ),
    novel=True,
    tags=("adversarial", "adaptive"),
))

register(ScenarioSpec(
    name="churn-small-radius",
    description=(
        "Players arrive and depart between SmallRadius repetitions — the "
        "population the last repetition scores is not the one the first saw."
    ),
    population=PopulationSpec(
        n_players=112, n_objects=128, generator="planted",
        params={"n_clusters": 4, "diameter": 8},
    ),
    protocol=ProtocolSpec(name="small-radius", budget=4, diameter=8.0),
    dynamics=DynamicsSpec(
        repetitions=3, arrivals=8, departures=8, initially_active=96
    ),
    novel=True,
    tags=("dynamics", "churn"),
))

register(ScenarioSpec(
    name="noisy-oracle",
    description=(
        "The probe channel itself lies: each oracle answer is flipped with "
        "probability 2% (consistently across repeats).  Measures the honest "
        "pipeline's robustness to measurement noise."
    ),
    population=PopulationSpec(
        n_players=128, n_objects=256, generator="planted",
        params={"n_clusters": 4, "diameter": 32},
    ),
    protocol=ProtocolSpec(name="calculate-preferences", budget=4),
    dynamics=DynamicsSpec(noise_rate=0.02),
    novel=True,
    tags=("dynamics", "noise"),
))

register(ScenarioSpec(
    name="adversarial-majority",
    description=(
        "β→1/2 stress: an inverting coalition of 45% of all players — far "
        "beyond the n/(3B) tolerance — against the robust wrapper, probing "
        "how gracefully the guarantees collapse near the honest-majority "
        "boundary."
    ),
    population=PopulationSpec(
        n_players=96, n_objects=192, generator="planted",
        params={"n_clusters": 4, "diameter": 24},
    ),
    protocol=ProtocolSpec(name="robust", budget=4, robust_iterations=2),
    coalitions=(CoalitionSpec(strategy="invert", fraction_of_players=0.45),),
    novel=True,
    tags=("adversarial", "stress"),
))

register(ScenarioSpec(
    name="rationed-budgets",
    description=(
        "Hard per-player probe caps, rationed unevenly across the planted "
        "clusters (factors 1.5/1.25/1.0/0.75 on a base cap of 64): the "
        "oracle *enforces* the caps instead of merely reporting usage, so "
        "the run proves ZeroRadius completes inside heterogeneous hard "
        "budgets — the ROADMAP's hard-budget-heterogeneity follow-up."
    ),
    population=PopulationSpec(
        n_players=96, n_objects=96, generator="zero-radius",
        params={"n_clusters": 4},
    ),
    protocol=ProtocolSpec(
        name="zero-radius", budget=4,
        probe_limit=64, probe_limit_factors=(1.5, 1.25, 1.0, 0.75),
    ),
    novel=True,
    tags=("budget", "heterogeneous", "enforced"),
))

register(ScenarioSpec(
    name="noisy-churn-stress",
    description=(
        "Noise and churn together under SmallRadius: a 3% noisy probe "
        "channel while a sixth of the population rotates between "
        "repetitions."
    ),
    population=PopulationSpec(
        n_players=112, n_objects=128, generator="planted",
        params={"n_clusters": 4, "diameter": 8},
    ),
    protocol=ProtocolSpec(name="small-radius", budget=4, diameter=8.0),
    dynamics=DynamicsSpec(
        repetitions=3, arrivals=8, departures=8, initially_active=96,
        noise_rate=0.03,
    ),
    novel=True,
    tags=("dynamics", "churn", "noise"),
))

register(ScenarioSpec(
    name="crashy-workers",
    description=(
        "The honest-planted workload swept under deterministic worker "
        "chaos: one planned worker crash plus a slow-worker stall per "
        "sweep, absorbed by the resilient trial engine (retries + pool "
        "restart).  Results must be bit-identical to an undisturbed "
        "serial sweep — that is the property the chaos CLI verb gates on."
    ),
    population=PopulationSpec(
        n_players=96, n_objects=128, generator="planted",
        params={"n_clusters": 4, "diameter": 16},
    ),
    protocol=ProtocolSpec(name="calculate-preferences", budget=4),
    faults=FaultsSpec(
        worker_crashes=1, stalls=1, stall_s=0.25,
        retries=2, timeout_s=60.0,
    ),
    novel=True,
    tags=("faults", "chaos", "crash"),
))

register(ScenarioSpec(
    name="flaky-oracle",
    description=(
        "The honest-planted workload under a flaky probe transport: two "
        "planned transient OracleTimeouts (pre-state, so retried trials "
        "replay cleanly) and a duplicated board post (idempotent by the "
        "board's last-wins semantics).  Exercises the in-trial fault "
        "channels end to end; results remain bit-identical to a clean "
        "serial sweep."
    ),
    population=PopulationSpec(
        n_players=96, n_objects=128, generator="planted",
        params={"n_clusters": 4, "diameter": 16},
    ),
    protocol=ProtocolSpec(name="calculate-preferences", budget=4),
    faults=FaultsSpec(
        oracle_timeouts=2, board_duplicates=1,
        retries=2,
    ),
    novel=True,
    tags=("faults", "chaos", "oracle"),
))
