"""Declarative scenario engine: composable workloads as picklable specs.

The subsystem turns the experiment drivers' implicit workload-building into
first-class data: a :class:`~repro.scenarios.spec.ScenarioSpec` describes the
population, the adversary mix (multiple simultaneous coalitions), the world
dynamics (churn, probe noise) and the protocol; the engine executes
``(spec, seed)`` deterministically; the registry names ~a dozen families
(several not expressible by the fixed E1–E12 drivers); the sweep engine
crosses spec grids with trial seeds through the parallel trial runner; and
``python -m repro`` exposes it all on the command line.
"""

from repro.scenarios.engine import RESULT_COLUMNS, ScenarioRun, execute, run_scenario
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.spec import (
    CoalitionSpec,
    DynamicsSpec,
    FaultsSpec,
    PopulationSpec,
    ProtocolSpec,
    ScenarioSpec,
    apply_override,
)
from repro.scenarios.sweep import expand_grid, sweep_scenario

__all__ = [
    "RESULT_COLUMNS",
    "ScenarioRun",
    "ScenarioSpec",
    "PopulationSpec",
    "CoalitionSpec",
    "DynamicsSpec",
    "FaultsSpec",
    "ProtocolSpec",
    "apply_override",
    "execute",
    "run_scenario",
    "register",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "expand_grid",
    "sweep_scenario",
]
