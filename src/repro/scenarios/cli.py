"""``python -m repro`` — the user-facing entry point to the scenario engine.

Subcommands
-----------
``list``
    The scenario catalog: name, novelty, coalition/dynamics summary.
``describe NAME``
    The full spec of one scenario, field by field.
``run NAME [--seed S] [--trials T] [--workers W] [--json DIR] [--journal J]
[--resume] [--retries R] [--backoff B] [--timeout-s T]``
    Execute a scenario for ``T`` independent trials and print the metrics
    table.  Results are bit-identical for any ``--workers`` value: each
    trial's randomness depends only on ``(--seed, trial index)``.
    ``--journal`` checkpoints every completed trial to an append-only JSONL
    file; a killed run is finished by re-running with ``--resume`` (only the
    missing trials execute).  ``--retries``/``--backoff``/``--timeout-s``
    set the resilience envelope for worker failures.
``chaos NAME [--seed S] [--trials T] [--workers W] [--json DIR]``
    The determinism gate: run the scenario's sweep twice — once clean and
    serial, once under the scenario's declared fault plan (worker crashes,
    probe timeouts, stalls, duplicate posts) with retries and a journal —
    and verify the two result tables are bit-identical.  Exits 1 on any
    mismatch; fault telemetry lands in the table notes.
``sweep NAME [--grid grid.json] --set path=v1,v2,... [--trials T] [--seed S]
[--workers W] [--json DIR] [--slug SLUG]``
    Cross one or more dotted-path override grids with trial seeds and run
    every point; the grid may come from a JSON file (``--grid``), from
    repeated ``--set`` flags, or both (``--set`` wins on conflicts).
    ``--json`` persists the table in the same results-JSON format the
    benchmark harness writes under ``benchmarks/results/``, with the
    resolved grid recorded in the payload's notes.
``compare A B [--seed S] [--trials T] [--workers W] [--json DIR]``
    Run two named scenarios on the *same* trial seeds — or load two
    previously written results-JSON files — and print a row-aligned diff of
    their result tables and of their structured ``metrics`` blocks.
``trace NAME [--seed S] [--trials T] [--workers W] [--json]``
    Execute a scenario under an ambient telemetry collection and render the
    span tree: per-stage wall time, probes charged, board posts/reads and
    packed bytes moved, plus gauges, histograms and per-kernel timers.  The
    trace is validated before printing — the span tree's probe total must
    reconcile exactly with the oracle's independent
    :class:`~repro.simulation.metrics.ProbeReport` accounting (exit 1 on
    mismatch).  ``--json`` prints the machine-readable payload instead
    (what CI schema-validates).

``run``/``sweep`` accept ``--metrics`` to embed the telemetry families
(counters, gauges, histograms, kernel timers) as a structured ``metrics``
block in the results-JSON payload; fault/retry engine counters land there
unconditionally.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import fields, replace
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.reporting import ExperimentTable, render_text, write_table_json
from repro.analysis.runner import default_worker_count, run_trials, spawn_seeds
from repro.errors import ReproError
from repro.faults import fault_metrics, fault_stats_note, plan_from_spec
from repro.obs import collecting
from repro.scenarios.engine import RESULT_COLUMNS, execute, run_point
from repro.simulation.metrics import ProbeReport
from repro.scenarios.registry import all_scenarios, get_scenario
from repro.scenarios.spec import FaultsSpec, ScenarioSpec
from repro.scenarios.sweep import sweep_scenario
from repro.serve.cli import add_serve_commands

__all__ = ["main"]


def _parse_value(text: str) -> Any:
    """Best-effort literal parsing for ``--set`` values (int, float, str)."""
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if text in ("none", "None"):
        return None
    return text


def _parse_grid(assignments: Sequence[str]) -> dict[str, list[Any]]:
    grid: dict[str, list[Any]] = {}
    for assignment in assignments:
        path, _, values = assignment.partition("=")
        if not path or not values:
            raise SystemExit(
                f"--set expects PATH=V1,V2,...; got {assignment!r}"
            )
        grid[path] = [_parse_value(v) for v in values.split(",")]
    return grid


def _cmd_list(args: argparse.Namespace) -> int:
    table = ExperimentTable(
        experiment_id="CATALOG",
        title="Registered scenario families",
        columns=["scenario", "novel", "protocol", "coalitions", "dynamics", "description"],
        notes=[
            "novel = not expressible by the fixed E1-E12 drivers.",
            "run one with: python -m repro run <scenario>",
        ],
    )
    for spec in all_scenarios():
        dynamics = []
        if spec.dynamics.noise_rate:
            dynamics.append(f"noise={spec.dynamics.noise_rate:g}")
        if spec.dynamics.has_churn:
            dynamics.append(
                f"churn(+{spec.dynamics.arrivals}/-{spec.dynamics.departures}"
                f"x{spec.dynamics.repetitions})"
            )
        table.add_row(
            scenario=spec.name,
            novel=spec.novel,
            protocol=spec.protocol.name,
            coalitions=", ".join(c.strategy for c in spec.coalitions) or "-",
            dynamics=" ".join(dynamics) or "-",
            description=spec.description.split(" (")[0][:60],
        )
    print(render_text(table))
    return 0


def _describe_block(title: str, obj: Any) -> list[str]:
    lines = [f"  {title}:"]
    for f in fields(obj):
        lines.append(f"    {f.name} = {getattr(obj, f.name)!r}")
    return lines


def _cmd_describe(args: argparse.Namespace) -> int:
    spec = get_scenario(args.scenario)
    lines = [
        f"scenario: {spec.name}" + ("  [novel]" if spec.novel else ""),
        f"  description: {spec.description}",
        f"  tags: {', '.join(spec.tags) or '-'}",
    ]
    lines += _describe_block("population", spec.population)
    lines += _describe_block("protocol", spec.protocol)
    for index, coalition in enumerate(spec.coalitions):
        lines += _describe_block(f"coalition[{index}]", coalition)
    lines += _describe_block("dynamics", spec.dynamics)
    lines += _describe_block("faults", spec.faults)
    print("\n".join(lines))
    return 0


#: One CLI-run trial — the engine's module-level picklable unit, shared with
#: the preference server so offline and over-the-wire rows are bit-identical.
_run_point = run_point


def _resolve_journal(args: argparse.Namespace) -> Path | None:
    """Validate the ``--journal`` / ``--resume`` combination.

    A fresh run refuses to append to an existing journal (that silently
    skips its completed trials — surprising unless asked for), and
    ``--resume`` refuses to invent a journal that is not there.
    """
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal JOURNAL.jsonl")
    if not args.journal:
        return None
    journal = Path(args.journal)
    has_records = journal.exists() and journal.stat().st_size > 0
    if has_records and not args.resume:
        raise SystemExit(
            f"journal {journal} already holds records; pass --resume to "
            "finish that run, or delete the file to start over"
        )
    if args.resume and not has_records:
        raise SystemExit(f"--resume: journal {journal} does not exist or is empty")
    return journal


def _cmd_run(args: argparse.Namespace) -> int:
    if args.trials <= 0:
        raise SystemExit(f"--trials must be positive, got {args.trials}")
    spec = get_scenario(args.scenario)
    journal = _resolve_journal(args)
    seeds = spawn_seeds(args.seed, args.trials)
    points = [(spec, seeds[trial], trial) for trial in range(args.trials)]
    start = time.perf_counter()
    stats: dict[str, int] = {}

    def execute_trials() -> list[dict]:
        return run_trials(
            _run_point,
            points,
            n_workers=args.workers,
            retries=args.retries,
            backoff=args.backoff,
            timeout_s=args.timeout_s,
            journal=journal,
            stats=stats,
        )

    telemetry_block = None
    if args.metrics:
        with collecting() as telemetry:
            rows = execute_trials()
        telemetry_block = telemetry.report().metrics_block()
    else:
        rows = execute_trials()
    wall = time.perf_counter() - start
    table = ExperimentTable(
        experiment_id="SCENARIO",
        title=f"{spec.name}: {args.trials} trial(s), seed {args.seed}",
        columns=["trial", "trial_seed"] + list(RESULT_COLUMNS),
        notes=[
            spec.description,
            "rows are identical for any --workers value.",
        ],
    )
    for row in rows:
        table.add_row(**row)
    if journal is not None:
        table.add_note(f"journaled to {journal}" + (" (resumed)" if args.resume else ""))
    if any(stats.values()):
        table.add_note(fault_stats_note(stats))
    table.metrics["faults"] = fault_metrics(stats)
    if telemetry_block is not None:
        table.metrics["telemetry"] = telemetry_block
    print(render_text(table))
    if args.json:
        path = write_table_json(args.json, args.slug or spec.name, table, wall)
        print(f"\nwrote {path}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Clean serial sweep vs faulted parallel sweep; gate on bit-identity."""
    if args.trials <= 0:
        raise SystemExit(f"--trials must be positive, got {args.trials}")
    spec = get_scenario(args.scenario)
    faults = spec.faults
    if not faults.any_faults:
        # Scenarios without a declared fault model still get a meaningful
        # gate: one worker crash plus one transient probe timeout.
        faults = FaultsSpec(worker_crashes=1, oracle_timeouts=1, retries=2)
    # Dropped posts silently remove data (the degradation channel), so they
    # are excluded from the determinism comparison by construction.
    faults = replace(faults, board_drops=0)

    seeds = spawn_seeds(args.seed, args.trials)
    points = [(spec, seeds[trial], trial) for trial in range(args.trials)]
    start = time.perf_counter()
    reference = run_trials(_run_point, points, n_workers=1)

    plan = plan_from_spec(faults, n_points=args.trials, seed=args.seed)
    journal = Path(args.journal) if args.journal else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    ) / "chaos.jsonl"
    stats: dict[str, int] = {}
    chaotic = run_trials(
        _run_point,
        points,
        n_workers=args.workers,
        retries=faults.retries,
        backoff=args.backoff,
        timeout_s=faults.timeout_s,
        journal=journal,
        fault_plan=plan,
        stats=stats,
    )
    wall = time.perf_counter() - start

    mismatched = [
        index for index, (a, b) in enumerate(zip(reference, chaotic)) if a != b
    ]
    table = ExperimentTable(
        experiment_id="CHAOS",
        title=(
            f"{spec.name}: {args.trials} trial(s) under {plan.n_faults} "
            f"planned fault(s), workers={args.workers}"
        ),
        columns=["trial", "trial_seed"] + list(RESULT_COLUMNS),
        notes=[spec.description],
    )
    for row in chaotic:
        table.add_row(**row)
    table.add_note(fault_stats_note(stats))
    table.metrics["faults"] = fault_metrics(stats)
    table.add_note(f"journaled to {journal}")
    verdict = (
        "chaos determinism: PASS (faulted+retried == clean serial, bit for bit)"
        if not mismatched
        else f"chaos determinism: FAIL (rows {mismatched} differ from clean serial)"
    )
    table.add_note(verdict)
    print(render_text(table))
    if args.json:
        slug = args.slug or f"chaos_{spec.name.replace('-', '_')}"
        path = write_table_json(args.json, slug, table, wall)
        print(f"\nwrote {path}")
    if mismatched:
        print(f"error: {verdict}", file=sys.stderr)
        return 1
    return 0


def _load_grid_file(path: str) -> dict[str, list[Any]]:
    """Read a sweep grid from a JSON file: ``{"dotted.path": [v1, v2], ...}``."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"--grid {path!r}: {error}")
    if not isinstance(payload, dict):
        raise SystemExit(f"--grid {path!r} must hold a JSON object of path -> values")
    grid: dict[str, list[Any]] = {}
    for key, values in payload.items():
        grid[key] = list(values) if isinstance(values, list) else [values]
    return grid


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = get_scenario(args.scenario)
    grid = _load_grid_file(args.grid) if args.grid else {}
    grid.update(_parse_grid(args.set or []))
    if not grid:
        raise SystemExit("sweep needs a grid: pass --grid grid.json and/or --set")
    start = time.perf_counter()
    stats: dict[str, int] = {}

    def execute_sweep() -> ExperimentTable:
        return sweep_scenario(
            spec, grid, trials=args.trials, seed=args.seed,
            n_workers=args.workers, stats=stats,
        )

    if args.metrics:
        with collecting() as telemetry:
            table = execute_sweep()
        table.metrics["telemetry"] = telemetry.report().metrics_block()
    else:
        table = execute_sweep()
    table.metrics["faults"] = fault_metrics(stats)
    wall = time.perf_counter() - start
    print(render_text(table))
    if args.json:
        slug = args.slug or f"sweep_{spec.name.replace('-', '_')}"
        path = write_table_json(args.json, slug, table, wall)
        print(f"\nwrote {path}")
    return 0


def _comparand(
    name_or_path: str, args: argparse.Namespace
) -> tuple[str, list[str], list[dict], dict]:
    """Resolve one ``compare`` operand into ``(label, columns, rows, metrics)``.

    A path to an existing ``.json`` file is loaded as a results-JSON payload
    (benchmark runs and persisted sweeps share the format), including its
    structured ``metrics`` block; anything else is treated as a registered
    scenario name and executed for ``--trials`` trials on the shared seed
    schedule, so two scenario operands face identical per-trial randomness
    (their metrics are the engine's fault counters).
    """
    path = Path(name_or_path)
    if path.suffix == ".json":
        if not path.exists():
            raise SystemExit(f"compare: results-JSON file not found: {path}")
        payload = json.loads(path.read_text())
        return (
            path.stem,
            list(payload.get("columns", [])),
            list(payload.get("rows", [])),
            dict(payload.get("metrics", {}) or {}),
        )
    spec = get_scenario(name_or_path)
    seeds = spawn_seeds(args.seed, args.trials)
    points = [(spec, seeds[trial], trial) for trial in range(args.trials)]
    stats: dict[str, int] = {}
    rows = run_trials(_run_point, points, n_workers=args.workers, stats=stats)
    metrics = {"faults": fault_metrics(stats)}
    return spec.name, ["trial", "trial_seed"] + list(RESULT_COLUMNS), rows, metrics


def _flatten_metrics(metrics: dict, prefix: str = "") -> dict[str, Any]:
    """Dotted-path flattening of a nested metrics block for cell-wise diffs."""
    flat: dict[str, Any] = {}
    for key, value in metrics.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten_metrics(value, prefix=f"{path}."))
        else:
            flat[path] = value
    return flat


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.trials <= 0:
        raise SystemExit(f"--trials must be positive, got {args.trials}")
    start = time.perf_counter()
    label_a, columns_a, rows_a, metrics_a = _comparand(args.a, args)
    label_b, columns_b, rows_b, metrics_b = _comparand(args.b, args)
    wall = time.perf_counter() - start

    shared = [c for c in columns_a if c in columns_b]
    notes = [
        f"A = {args.a}, B = {args.b}; rows aligned by position.",
        "delta = B - A for numeric cells, '!=' for differing non-numeric cells.",
    ]
    only_a = [c for c in columns_a if c not in columns_b]
    only_b = [c for c in columns_b if c not in columns_a]
    if only_a or only_b:
        notes.append(f"columns only in A: {only_a or '-'}; only in B: {only_b or '-'}")
    if len(rows_a) != len(rows_b):
        notes.append(
            f"row-count mismatch: A has {len(rows_a)}, B has {len(rows_b)}; "
            "comparing the aligned prefix."
        )
    table = ExperimentTable(
        experiment_id="COMPARE",
        title=f"{label_a} vs {label_b}",
        columns=["row", "column", "a", "b", "delta"],
        notes=notes,
    )
    def diff_cell(row: Any, column: str, value_a: Any, value_b: Any) -> None:
        if isinstance(value_a, (int, float)) and isinstance(value_b, (int, float)) \
                and not isinstance(value_a, bool) and not isinstance(value_b, bool):
            delta: Any = value_b - value_a
        else:
            delta = "" if value_a == value_b else "!="
        table.add_row(row=row, column=column, a=value_a, b=value_b, delta=delta)

    for index, (row_a, row_b) in enumerate(zip(rows_a, rows_b)):
        for column in shared:
            diff_cell(index, column, row_a.get(column), row_b.get(column))
    # Structured metrics blocks diff cell-wise under the synthetic row label
    # "metrics", keyed by the flattened family path (e.g. faults.retried,
    # telemetry.counters.oracle.probes).
    flat_a, flat_b = _flatten_metrics(metrics_a), _flatten_metrics(metrics_b)
    for key in sorted(set(flat_a) & set(flat_b)):
        diff_cell("metrics", key, flat_a[key], flat_b[key])
    print(render_text(table))
    if args.json:
        slug = args.slug or f"compare_{label_a}_vs_{label_b}".replace("-", "_")
        path = write_table_json(args.json, slug, table, wall)
        print(f"\nwrote {path}")
    return 0


def _trace_point(spec: ScenarioSpec, seed: int, trial: int) -> dict:
    """One traced trial: the scenario row plus the oracle's own accounting.

    The per-trial probe totals come from the independent
    :class:`~repro.simulation.metrics.ProbeReport` path (straight off the
    oracle's counters), so the trace command can check the span tree against
    numbers that never flowed through the telemetry layer.
    """
    run = execute(spec, seed)
    probe_report = ProbeReport.from_oracle(run.context.oracle, spec.protocol.budget)
    row = {"trial": trial, "trial_seed": seed}
    row.update(run.row)
    row["total_probes"] = int(probe_report.total_probes)
    row["total_requests"] = int(run.context.oracle.requests_used().sum())
    return row


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trials <= 0:
        raise SystemExit(f"--trials must be positive, got {args.trials}")
    spec = get_scenario(args.scenario)
    seeds = spawn_seeds(args.seed, args.trials)
    points = [(spec, seeds[trial], trial) for trial in range(args.trials)]
    start = time.perf_counter()
    with collecting() as telemetry:
        rows = run_trials(_trace_point, points, n_workers=args.workers)
    wall = time.perf_counter() - start
    report = telemetry.report()

    # Validation gate: the span tree's inclusive probe total (== the sum of
    # the per-span exclusive shares) must equal the oracles' own distinct
    # probe counts, summed over trials.  A mismatch means an uninstrumented
    # charge path — fail loudly rather than print a wrong profile.
    span_probes = int(report.counters.get("oracle.probes", 0))
    probe_report_total = sum(int(row["total_probes"]) for row in rows)
    match = span_probes == probe_report_total
    reconciliation = {
        "span_probes": span_probes,
        "probe_report_total": probe_report_total,
        "match": match,
    }
    if args.json:
        payload = {
            "slug": f"trace_{spec.name.replace('-', '_')}",
            "scenario": spec.name,
            "seed": args.seed,
            "trials": args.trials,
            "wall_time_s": wall,
            **report.as_payload(),
            "reconciliation": reconciliation,
        }
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(f"[TRACE] {spec.name}: {args.trials} trial(s), seed {args.seed}")
        print()
        print(report.render())
        print()
        verdict = "OK" if match else "MISMATCH"
        print(
            f"reconciliation: span oracle.probes={span_probes} "
            f"ProbeReport total={probe_report_total} -> {verdict}"
        )
    if not match:
        print(
            f"error: span tree probe total {span_probes} does not reconcile "
            f"with the oracle's ProbeReport total {probe_report_total}",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    parser.add_argument(
        "--trials", type=int, default=1, help="independent trials (default 1)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width (default: all available cores)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write the table as results-JSON into DIR",
    )
    parser.add_argument(
        "--slug", default=None, help="slug for the results-JSON file name"
    )


def _add_resilience_flags(parser: argparse.ArgumentParser, with_retries: bool = True) -> None:
    if with_retries:
        parser.add_argument(
            "--retries",
            type=int,
            default=0,
            help="extra attempts per failed/timed-out trial (default 0: fail fast)",
        )
        parser.add_argument(
            "--timeout-s",
            type=float,
            default=None,
            dest="timeout_s",
            help="per-trial wall-clock bound when running under a pool",
        )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base of the capped exponential backoff between attempts "
        "(seconds, default 0.05)",
    )
    parser.add_argument(
        "--journal",
        metavar="JOURNAL.jsonl",
        default=None,
        help="checkpoint every completed trial to this append-only JSONL file",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Declarative scenario engine for the collaborative-scoring "
        "reproduction: list, inspect, run and sweep registered workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the scenario catalog")
    p_list.set_defaults(func=_cmd_list)

    p_desc = sub.add_parser("describe", help="show one scenario's full spec")
    p_desc.add_argument("scenario")
    p_desc.set_defaults(func=_cmd_describe)

    p_run = sub.add_parser("run", help="execute a scenario")
    p_run.add_argument("scenario")
    _add_execution_flags(p_run)
    _add_resilience_flags(p_run)
    p_run.add_argument(
        "--metrics",
        action="store_true",
        help="collect telemetry and embed the structured metrics block "
        "(counters, gauges, histograms, kernel timers) in the table/results-JSON",
    )
    p_run.add_argument(
        "--resume",
        action="store_true",
        help="finish the sweep recorded in --journal (only missing trials run)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_chaos = sub.add_parser(
        "chaos",
        help="verify a scenario's sweep is bit-identical under injected faults",
    )
    p_chaos.add_argument("scenario")
    _add_execution_flags(p_chaos)
    _add_resilience_flags(p_chaos, with_retries=False)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_sweep = sub.add_parser("sweep", help="grid-sweep a scenario")
    p_sweep.add_argument("scenario")
    p_sweep.add_argument(
        "--set",
        action="append",
        metavar="PATH=V1,V2,...",
        help="dotted-path override grid, repeatable "
        "(e.g. --set population.n_players=64,128,256)",
    )
    p_sweep.add_argument(
        "--grid",
        metavar="GRID.json",
        default=None,
        help="JSON file holding the override grid "
        '({"population.n_players": [64, 128]}); --set entries override it',
    )
    _add_execution_flags(p_sweep)
    p_sweep.add_argument(
        "--metrics",
        action="store_true",
        help="collect telemetry and embed the structured metrics block "
        "(counters, gauges, histograms, kernel timers) in the table/results-JSON",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_trace = sub.add_parser(
        "trace",
        help="run a scenario under telemetry and render the span tree",
    )
    p_trace.add_argument("scenario")
    p_trace.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    p_trace.add_argument(
        "--trials", type=int, default=1, help="independent trials (default 1)"
    )
    p_trace.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width (default: all available cores); the merged "
        "trace is identical for any value",
    )
    p_trace.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable trace payload instead of the tree",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_compare = sub.add_parser(
        "compare",
        help="diff two scenarios (run on the same seeds) or two results-JSON files",
    )
    p_compare.add_argument("a", metavar="A", help="scenario name or results-JSON path")
    p_compare.add_argument("b", metavar="B", help="scenario name or results-JSON path")
    _add_execution_flags(p_compare)
    p_compare.set_defaults(func=_cmd_compare)

    add_serve_commands(sub)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "workers", None) is None and args.command in (
        "run",
        "sweep",
        "compare",
        "chaos",
        "trace",
    ):
        args.workers = default_worker_count()
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
