"""The scenario engine: turn ``(spec, seed)`` into one executed workload.

:func:`execute` builds the instance, wires the coalitions, applies the
dynamics hooks (noisy oracle, churn timeline) and dispatches to the named
protocol; it returns the full :class:`ScenarioRun` (instance, context,
predictions) for drivers that need structural access — E11's per-cluster
breakdown, for example.  :func:`run_scenario` is the picklable thinning used
by the sweep engine and the CLI: it returns just the flat metrics row, so it
can fan out through :func:`repro.analysis.runner.run_trials` and stay
bit-identical for any worker count.

Determinism contract: every random stream is derived from ``seed`` by
position (instance, coalitions, context, noise, churn, baselines), never
from spec *content*, so two specs that differ only in the protocol field see
the same hidden matrix and the same coalition — that is what lets a driver
compare the robust protocol against a non-robust baseline under an identical
attack (E6), or a sweep hold the workload fixed while varying the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, spawn_seeds
from repro.baselines.alon import alon_awerbuch_azar_patt_shamir
from repro.obs import runtime as obs
from repro.baselines.naive import global_majority, random_guessing, solo_probing
from repro.baselines.oracle import oracle_clustering
from repro.core.calculate_preferences import (
    calculate_preferences,
    efficient_diameter_schedule,
)
from repro.core.robust import robust_calculate_preferences
from repro.errors import ConfigurationError
from repro.players.adversaries import CoalitionPlan, build_coalition
from repro.players.base import ReportingStrategy
from repro.preferences.generators import (
    PlantedInstance,
    heterogeneous_cluster_instance,
    mixture_model_instance,
    planted_clusters_instance,
    random_instance,
    zero_radius_instance,
)
from repro.preferences.metrics import prediction_errors
from repro.protocols.context import ProtocolContext, make_context
from repro.protocols.small_radius import small_radius
from repro.protocols.zero_radius import zero_radius
from repro.simulation.config import ProtocolConstants
from repro.simulation.rounds import ChurnTimeline
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "ScenarioRun",
    "PreparedRun",
    "RESULT_COLUMNS",
    "prepare",
    "execute",
    "run_scenario",
    "run_point",
]


#: Keys of the metrics row every scenario execution emits, in render order.
RESULT_COLUMNS: tuple[str, ...] = (
    "scenario",
    "protocol",
    "generator",
    "n_players",
    "n_objects",
    "budget",
    "n_coalitions",
    "n_dishonest",
    "noise_rate",
    "repetitions",
    "final_active",
    "planted_D",
    "honest_max_error",
    "honest_mean_error",
    "max_error",
    "max_probes",
    "max_probe_requests",
    "honest_leader_iterations",
    "degraded",
)


@dataclass(frozen=True)
class ScenarioRun:
    """Everything produced by one scenario execution.

    ``predictions`` has one row per entry of ``active_players`` (the players
    active in the final repetition; the full population when there is no
    churn).  ``row`` is the flat metrics dictionary (the :data:`RESULT_COLUMNS`
    keys) that :func:`run_scenario` returns on its own.
    """

    spec: ScenarioSpec
    seed: SeedLike
    instance: PlantedInstance
    context: ProtocolContext
    predictions: np.ndarray
    active_players: np.ndarray
    plan: CoalitionPlan | None
    row: dict


@dataclass(frozen=True)
class PreparedRun:
    """A built-but-not-yet-run workload: instance, wired context, coalition.

    This is the state a scenario execution starts from — everything
    :func:`execute` derives from ``(spec, seed)`` *before* dispatching to
    the protocol.  The preference server keeps one of these alive per
    session, so interactive probe/report/select requests operate on exactly
    the board, oracle and randomness a batch :func:`execute` of the same
    pair would have seen; ``churn_seed`` and ``baseline_seed`` are carried
    so :func:`execute` can finish the job from a prepared state.
    """

    spec: ScenarioSpec
    seed: SeedLike
    instance: PlantedInstance
    context: ProtocolContext
    plan: CoalitionPlan | None
    churn_seed: int
    baseline_seed: int


def _build_instance(spec: ScenarioSpec, seed: int) -> PlantedInstance:
    pop = spec.population
    params = dict(pop.params)
    if pop.generator == "planted":
        params.setdefault("n_clusters", spec.protocol.budget)
        params.setdefault("diameter", max(1, pop.n_objects // 8))
        return planted_clusters_instance(
            pop.n_players, pop.n_objects, seed=seed, **params
        )
    if pop.generator == "zero-radius":
        params.setdefault("n_clusters", spec.protocol.budget)
        return zero_radius_instance(pop.n_players, pop.n_objects, seed=seed, **params)
    if pop.generator == "mixture":
        params.setdefault("n_types", spec.protocol.budget)
        return mixture_model_instance(pop.n_players, pop.n_objects, seed=seed, **params)
    if pop.generator == "random":
        return random_instance(pop.n_players, pop.n_objects, seed=seed, **params)
    if pop.generator == "heterogeneous":
        return heterogeneous_cluster_instance(
            pop.n_players, pop.n_objects, seed=seed, **params
        )
    raise ConfigurationError(f"unknown generator {pop.generator!r}")


def _resolve_probe_limits(
    spec: ScenarioSpec, instance: PlantedInstance
) -> int | np.ndarray | None:
    """Concrete oracle probe caps from the protocol spec's budget fields.

    ``probe_limit`` alone is a uniform hard cap; with
    ``probe_limit_factors`` the cap of every player in planted cluster ``i``
    is scaled by factor ``i`` (players outside the listed clusters, or in no
    cluster, keep factor 1), rounded and floored at one probe.  Returns
    ``None`` when the spec sets no cap — the oracle then runs unenforced,
    exactly as before.
    """
    limit = spec.protocol.probe_limit
    if limit is None:
        return None
    factors = spec.protocol.probe_limit_factors
    if not factors:
        return int(limit)
    per_player = np.ones(instance.n_players, dtype=np.float64)
    for cluster_id, factor in enumerate(factors):
        per_player[instance.cluster_of == cluster_id] = factor
    return np.maximum(1, np.round(limit * per_player)).astype(np.int64)


def _merge_plans(plans: list[CoalitionPlan]) -> CoalitionPlan | None:
    """Fold simultaneous coalitions into the single plan the robust wrapper
    (and the adversarial-randomness hooks) consume."""
    if not plans:
        return None
    if len(plans) == 1:
        return plans[0]
    members = np.unique(np.concatenate([p.members for p in plans]))
    victim = max(plans, key=lambda p: p.victim_cluster.size).victim_cluster
    targets = np.unique(np.concatenate([p.target_objects for p in plans]))
    hidden = np.unique(np.concatenate([p.hidden_objects for p in plans]))
    return CoalitionPlan(
        members=members,
        strategy_name="+".join(p.strategy_name for p in plans),
        victim_cluster=victim,
        target_objects=targets,
        hidden_objects=hidden,
    )


def _build_coalitions(
    spec: ScenarioSpec,
    instance: PlantedInstance,
    constants: ProtocolConstants,
    seed: int,
) -> tuple[dict[int, ReportingStrategy], list[CoalitionPlan]]:
    n = instance.n_players
    tolerance = constants.max_dishonest(n, spec.protocol.budget)
    strategies: dict[int, ReportingStrategy] = {}
    plans: list[CoalitionPlan] = []
    taken = np.zeros(0, dtype=np.int64)
    coalition_seeds = spawn_seeds(seed, max(1, len(spec.coalitions)))
    total = 0
    for coalition, c_seed in zip(spec.coalitions, coalition_seeds):
        size = coalition.resolve_size(n, tolerance)
        total += size
        if 2 * total >= n:
            raise ConfigurationError(
                f"scenario {spec.name!r}: combined coalitions of {total} players "
                f"would outnumber honest players at n={n}"
            )
        rng = np.random.default_rng(c_seed)
        victim = instance.cluster_members(coalition.victim_cluster)
        target_count = max(1, int(round(coalition.target_fraction * instance.n_objects)))
        targets = np.sort(
            rng.choice(instance.n_objects, size=target_count, replace=False)
        )
        built, plan = build_coalition(
            instance.preferences,
            size,
            strategy=coalition.strategy,  # type: ignore[arg-type]
            victim_cluster=victim if victim.size else None,
            target_objects=targets,
            seed=rng,
            exclude=taken,
            switch_after=coalition.switch_after,
        )
        strategies.update(built)
        plans.append(plan)
        taken = np.union1d(taken, plan.members)
    return strategies, plans


def _run_protocol(
    spec: ScenarioSpec,
    instance: PlantedInstance,
    ctx: ProtocolContext,
    plan: CoalitionPlan | None,
    baseline_seed: int,
    churn_seed: int,
) -> tuple[np.ndarray, np.ndarray, int | None, bool]:
    """Dispatch to the named protocol.

    Returns ``(predictions, active_players, honest_leader_iterations,
    degraded)`` where ``predictions`` rows align with ``active_players`` and
    ``degraded`` reports whether the robust wrapper gave up a stage under
    the scenario's ``faults.degrade`` envelope (always ``False`` elsewhere).
    """
    name = spec.protocol.name
    dynamics = spec.dynamics
    schedule = efficient_diameter_schedule(ctx.n_players, ctx.n_objects, ctx.constants)
    all_players = ctx.all_players()
    objects = ctx.all_objects()

    if name in ("small-radius", "zero-radius"):
        timeline = ChurnTimeline(
            ctx.n_players,
            departures=dynamics.departures,
            arrivals=dynamics.arrivals,
            seed=churn_seed,
            initially_active=dynamics.initially_active,
        )
        diameter = spec.protocol.diameter
        if diameter is None:
            diameter = float(max(1, int(instance.planted_diameters.max(initial=0))))
        estimates = np.zeros((0, objects.size), dtype=np.uint8)
        active = timeline.active_players()
        for repetition in range(dynamics.repetitions):
            channel = f"scenario/rep{repetition}"
            if name == "small-radius":
                estimates = small_radius(
                    ctx, active, objects,
                    diameter=float(diameter),
                    budget=spec.protocol.budget,
                    channel=channel,
                )
            else:
                estimates = zero_radius(
                    ctx, active, objects,
                    budget_prime=spec.protocol.budget,
                    channel=channel,
                )
            if repetition < dynamics.repetitions - 1:
                active = timeline.step()
        return estimates, active, None, False

    if name == "calculate-preferences":
        result = calculate_preferences(ctx, diameters=schedule)
        return result.predictions, all_players, None, False
    if name == "robust":
        result = robust_calculate_preferences(
            ctx,
            coalition=plan,
            iterations=spec.protocol.robust_iterations,
            diameters=schedule,
            degrade=spec.faults.degrade,
        )
        return (
            result.predictions,
            all_players,
            result.honest_leader_iterations,
            result.partial,
        )
    if name == "alon":
        result = alon_awerbuch_azar_patt_shamir(ctx, diameters=schedule)
        return result.predictions, all_players, None, False
    if name == "solo-probing":
        return solo_probing(ctx, seed=baseline_seed), all_players, None, False
    if name == "global-majority":
        return global_majority(ctx, seed=baseline_seed), all_players, None, False
    if name == "random-guessing":
        return random_guessing(ctx, seed=baseline_seed), all_players, None, False
    if name == "oracle-clustering":
        return oracle_clustering(ctx), all_players, None, False
    raise ConfigurationError(f"unknown protocol {name!r}")


def prepare(spec: ScenarioSpec, seed: SeedLike = 0) -> PreparedRun:
    """Build the executable state for ``(spec, seed)`` without running it.

    This is the first half of :func:`execute` — the deterministic setup
    (instance, coalitions, context with its sub-seeded noise/churn/baseline
    streams) — split out so a long-lived session can hold a *live* board +
    oracle + randomness and accept interactive protocol requests against
    exactly the state a batch execution of the same pair starts from.
    """
    (
        instance_seed,
        coalition_seed,
        context_seed,
        noise_seed,
        churn_seed,
        baseline_seed,
    ) = spawn_seeds(seed, 6)

    profile = spec.protocol.constants_profile
    constants = (
        ProtocolConstants.paper() if profile == "paper" else ProtocolConstants.practical()
    )
    if spec.protocol.constants_overrides:
        constants = constants.with_overrides(**spec.protocol.constants_overrides)

    instance = _build_instance(spec, instance_seed)
    strategies, plans = _build_coalitions(spec, instance, constants, coalition_seed)
    plan = _merge_plans(plans)

    ctx = make_context(
        instance,
        budget=spec.protocol.budget,
        constants=constants,
        strategies=strategies,
        seed=context_seed,
        noise_rate=spec.dynamics.noise_rate,
        noise_seed=noise_seed,
        probe_limits=_resolve_probe_limits(spec, instance),
    )
    return PreparedRun(
        spec=spec,
        seed=seed,
        instance=instance,
        context=ctx,
        plan=plan,
        churn_seed=int(churn_seed),
        baseline_seed=int(baseline_seed),
    )


def execute(spec: ScenarioSpec, seed: SeedLike = 0) -> ScenarioRun:
    """Run one scenario and return the full execution record.

    All randomness derives from ``seed`` via positional sub-streams, so the
    result is reproducible and independent of where (which process/worker)
    the call runs.
    """
    prepared = prepare(spec, seed)
    instance, ctx, plan = prepared.instance, prepared.context, prepared.plan

    with obs.span("scenario"):
        predictions, active, honest_leader_iterations, degraded = _run_protocol(
            spec, instance, ctx, plan, prepared.baseline_seed, prepared.churn_seed
        )

    truth = ctx.oracle.ground_truth()[active]
    errors = prediction_errors(predictions, truth)
    honest_mask = ctx.pool.honest_mask[active]
    # When churn leaves no honest player active, the honest_* columns report
    # 0 (vacuous max/mean) rather than mislabelling attacker error as honest.
    honest_errors = errors[honest_mask]

    row = dict(
        scenario=spec.name,
        protocol=spec.protocol.name,
        generator=spec.population.generator,
        n_players=int(instance.n_players),
        n_objects=int(instance.n_objects),
        budget=int(spec.protocol.budget),
        n_coalitions=len(spec.coalitions),
        n_dishonest=int(ctx.pool.n_dishonest),
        noise_rate=float(spec.dynamics.noise_rate),
        repetitions=int(spec.dynamics.repetitions),
        final_active=int(active.size),
        planted_D=int(instance.planted_diameters.max(initial=0)),
        honest_max_error=int(honest_errors.max(initial=0)),
        honest_mean_error=float(honest_errors.mean()) if honest_errors.size else 0.0,
        max_error=int(errors.max(initial=0)),
        max_probes=int(ctx.oracle.max_probes()),
        max_probe_requests=int(ctx.oracle.max_requests()),
        honest_leader_iterations=honest_leader_iterations,
        degraded=int(degraded),
    )
    if obs._AMBIENT.telemetry is not None:
        # Derived oracle metrics: counters stay integer (and so land in the
        # deterministic canonical form); the hit *rate* is a gauge, and the
        # per-run outcome columns feed histograms so a multi-trial window
        # reports their spread.
        obs.add("oracle.memo_hits", ctx.oracle.memo_hits())
        obs.add("oracle.memo_misses", ctx.oracle.memo_misses())
        obs.set_gauge("oracle.memo_hit_rate", ctx.oracle.memo_hit_rate())
        obs.observe("scenario.max_probes", row["max_probes"])
        obs.observe("scenario.max_error", row["max_error"])
    return ScenarioRun(
        spec=spec,
        seed=seed,
        instance=instance,
        context=ctx,
        predictions=predictions,
        active_players=active,
        plan=plan,
        row=row,
    )


def run_scenario(spec: ScenarioSpec, seed: SeedLike = 0) -> dict:
    """Picklable trial function: one scenario execution → one metrics row.

    This is the unit the sweep engine and the CLI fan out through
    :func:`repro.analysis.runner.run_trials`; the returned dictionary's keys
    are :data:`RESULT_COLUMNS`.
    """
    return execute(spec, seed).row


def run_point(spec: ScenarioSpec, seed: int, trial: int) -> dict:
    """One sweep/CLI/server trial (module-level so it pickles into workers).

    The row is :func:`run_scenario`'s metrics dictionary prefixed with the
    trial index and its derived seed — the exact unit ``python -m repro
    run`` fans out, shared by the preference server so a session's full-run
    rows are bit-identical to the offline CLI's.
    """
    row = {"trial": trial, "trial_seed": seed}
    row.update(run_scenario(spec, seed))
    return row
