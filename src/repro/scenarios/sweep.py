"""The sweep engine: expand a spec grid into trials and fan them out.

A sweep takes a base scenario plus a grid of dotted-path overrides
(``{"population.n_players": [64, 128, 256], "dynamics.noise_rate":
[0.0, 0.02]}``), crosses it with a set of trial seeds, and executes every
point through :func:`repro.analysis.runner.run_trials` — so a sweep of
hundreds of points saturates the cores while staying bit-identical for any
worker count (each point's seed depends only on the root seed and the
point's position in the grid enumeration).

The output is the same :class:`~repro.analysis.reporting.ExperimentTable`
the experiment drivers return, and :func:`repro.analysis.reporting.write_table_json`
persists it in the exact results-JSON format the benchmark harness writes.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Mapping, Sequence

from repro.analysis.reporting import ExperimentTable
from repro.analysis.runner import run_trials, spawn_seeds
from repro.errors import ConfigurationError
from repro.scenarios.engine import RESULT_COLUMNS, run_scenario
from repro.scenarios.spec import ScenarioSpec, apply_override

__all__ = ["expand_grid", "sweep_scenario"]


def expand_grid(
    base: ScenarioSpec, grid: Mapping[str, Sequence[Any]]
) -> list[tuple[dict[str, Any], ScenarioSpec]]:
    """Cartesian expansion of a dotted-path override grid.

    Returns ``(labels, spec)`` pairs in deterministic enumeration order
    (later grid keys vary fastest, like nested loops in declaration order).
    """
    for key, values in grid.items():
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise ConfigurationError(
                f"grid entry {key!r} must be a sequence of values, got {values!r}"
            )
        if len(values) == 0:
            raise ConfigurationError(f"grid entry {key!r} must be non-empty")
    keys = list(grid)
    points: list[tuple[dict[str, Any], ScenarioSpec]] = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        labels = dict(zip(keys, combo))
        spec = base
        for key, value in labels.items():
            spec = apply_override(spec, key, value)
        points.append((labels, spec))
    return points


def _sweep_point(spec: ScenarioSpec, seed: int, labels: dict, trial: int) -> dict:
    """One grid-point × trial execution (module-level so it pickles)."""
    row = dict(labels)
    row["trial"] = trial
    row.update(run_scenario(spec, seed))
    return row


def sweep_scenario(
    base: ScenarioSpec,
    grid: Mapping[str, Sequence[Any]] | None = None,
    trials: int = 1,
    seed: int = 0,
    n_workers: int = 1,
    stats: dict | None = None,
) -> ExperimentTable:
    """Run ``base`` across a parameter grid × ``trials`` seeds.

    Parameters
    ----------
    base:
        The scenario every grid point starts from.
    grid:
        Dotted-path overrides (see :func:`~repro.scenarios.spec.apply_override`);
        ``None`` or empty runs just the base spec.
    trials:
        Independent repetitions per grid point; trial ``t`` of point ``i``
        always draws seed ``spawn_seeds(seed, ...)[i * trials + t]``, so
        results do not depend on the worker count.
    seed:
        Root seed of the whole sweep.
    n_workers:
        Fan-out width for :func:`~repro.analysis.runner.run_trials`.
    stats:
        Optional dict the trial engine fills with its
        :data:`~repro.analysis.runner.STAT_KEYS` counters (the CLI surfaces
        them into the results-JSON ``metrics`` block).
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    expanded = expand_grid(base, grid or {})
    point_seeds = spawn_seeds(seed, len(expanded) * trials)
    points = []
    for index, (labels, spec) in enumerate(expanded):
        for trial in range(trials):
            points.append((spec, point_seeds[index * trials + trial], labels, trial))

    grid_columns = list(grid or {})
    table = ExperimentTable(
        experiment_id="SWEEP",
        title=f"Scenario sweep: {base.name} "
        f"({len(expanded)} grid points x {trials} trials)",
        columns=grid_columns + ["trial"] + list(RESULT_COLUMNS),
        notes=[
            f"base scenario: {base.name} — {base.description}",
            f"root seed {seed}; deterministic for any n_workers.",
            # The resolved grid rides along in the notes (and therefore in
            # the results-JSON payload), so a persisted sweep is a reviewable
            # artifact: the exact parameter space is in the file itself.
            "grid: " + json.dumps(dict(grid or {}), sort_keys=True, default=str),
        ],
    )
    for row in run_trials(_sweep_point, points, n_workers=n_workers, stats=stats):
        table.add_row(**row)
    return table
