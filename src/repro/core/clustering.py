"""Step 3 of CalculatePreferences: neighbour graph and greedy clustering.

After every player has an estimate ``z(p)`` of its preferences on the sample
set, an edge joins ``p`` and ``q`` whenever ``|z(p) − z(q)|`` is below the
``Θ(log n)`` threshold of Lemma 7.  Lemma 8 guarantees (under the diameter
promise) that every player has degree ``≥ n/B − 1`` and that edges only join
players whose *true* distance is ``O(D)``.  The greedy procedure of §6.5 then
extracts clusters of size ``≥ n/B`` and diameter ``O(D)``:

1. repeatedly pick a player with degree ``≥ n/B − 1``, make a cluster of it
   and its neighbours, and remove them from the graph;
2. attach every remaining player to a cluster containing one of its former
   neighbours.

Off the diameter promise (wrong guessed ``D``, heavy adversarial noise) the
procedure can leave players with no former neighbour in any cluster; they are
attached to the cluster whose members' published estimates are closest on
average, so the output is always a total clustering (Lemma 9 property 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError
from repro.perf import PackedBits, pack_bits, pairwise_hamming

__all__ = ["Clustering", "build_neighbor_graph", "cluster_players"]


@dataclass(frozen=True)
class Clustering:
    """A total assignment of players to clusters.

    ``assignment[p]`` is the cluster id of player ``p``; ``clusters[j]`` is
    the sorted array of members of cluster ``j``.
    """

    assignment: np.ndarray
    clusters: list[np.ndarray]

    @property
    def n_clusters(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    def sizes(self) -> np.ndarray:
        """Cluster sizes."""
        return np.asarray([c.size for c in self.clusters], dtype=np.int64)

    def members(self, cluster_id: int) -> np.ndarray:
        """Members of one cluster."""
        return self.clusters[int(cluster_id)]


def build_neighbor_graph(
    published_estimates: np.ndarray | PackedBits, threshold: float
) -> np.ndarray:
    """Adjacency matrix of the neighbour graph.

    ``published_estimates`` holds each player's published estimate on the
    sample set (shape ``(n_players, sample_size)``), dense or already packed
    along the sample axis (the packed publish path hands the block over
    without a repack); an edge joins two players whose estimates differ on
    at most ``threshold`` sampled objects.  Self-loops are excluded.
    """
    if isinstance(published_estimates, PackedBits):
        packed = published_estimates
    else:
        published_estimates = np.asarray(published_estimates)
        if published_estimates.ndim != 2:
            raise ProtocolError(
                f"published_estimates must be 2-D, got shape {published_estimates.shape}"
            )
        packed = pack_bits(published_estimates.astype(np.uint8))
    if packed.data.ndim != 2:
        raise ProtocolError(
            f"published_estimates must be 2-D, got shape {packed.data.shape}"
        )
    # Pairwise Hamming distances on the packed representation (XOR+popcount)
    # instead of the seed's (n, n) int32 Gram matrix of ±1 rows.
    distances = pairwise_hamming(packed)
    adjacency = distances <= threshold
    np.fill_diagonal(adjacency, False)
    return adjacency


def cluster_players(
    adjacency: np.ndarray,
    min_cluster_size: int,
    seed_degree: int | None = None,
) -> Clustering:
    """Greedy clustering of §6.5.

    Parameters
    ----------
    adjacency:
        Boolean adjacency matrix of the neighbour graph.
    min_cluster_size:
        The target cluster size ``⌈n/B⌉`` — a player seeds a cluster only if
        its remaining degree is at least ``seed_degree``.
    seed_degree:
        Minimum remaining degree required to seed a new cluster; defaults to
        ``min_cluster_size − 1`` (the honest-only rule of §6.5).  In the
        dishonest setting (§7.2) up to ``n/(3B)`` of an honest player's true
        neighbours may be dishonest and publish arbitrary estimates, so its
        *visible* degree can be that much lower; callers tolerate this by
        passing ``min_cluster_size − 1 − n/(3B)``.

    Returns
    -------
    Clustering
        Total clustering; every player belongs to exactly one cluster
        (Lemma 9 property 1).  Attachment of leftovers can only grow seeded
        clusters.  When *no* player meets the degree requirement (possible
        off the diameter promise), all players fall into a single cluster so
        the protocol still returns a total output.
    """
    adjacency = np.asarray(adjacency, dtype=bool)
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise ProtocolError(f"adjacency must be square, got shape {adjacency.shape}")
    if min_cluster_size <= 0:
        raise ProtocolError(f"min_cluster_size must be positive, got {min_cluster_size}")
    if seed_degree is None:
        seed_degree = min_cluster_size - 1
    seed_degree = max(1, int(seed_degree))

    assignment = np.full(n, -1, dtype=np.int64)
    remaining = np.ones(n, dtype=bool)
    clusters: list[np.ndarray] = []

    # Phase 1: seed clusters around high-degree players.  Degrees over the
    # remaining graph are maintained incrementally — removing a cluster
    # subtracts its members' adjacency columns — so seeding costs
    # O(n · removed) per cluster (O(n²) total) instead of recomputing the
    # full (adjacency & remaining) sum each round.
    degrees = adjacency.sum(axis=1, dtype=np.int64)
    while True:
        active_degrees = np.where(remaining, degrees, -1)
        eligible = np.flatnonzero(active_degrees >= seed_degree)
        if eligible.size == 0:
            break
        seed = int(eligible[int(np.argmax(active_degrees[eligible]))])
        neighbors = np.flatnonzero(adjacency[seed] & remaining)
        members = np.unique(np.concatenate([[seed], neighbors]))
        cluster_id = len(clusters)
        clusters.append(members.astype(np.int64))
        assignment[members] = cluster_id
        remaining[members] = False
        degrees -= adjacency[:, members].sum(axis=1, dtype=np.int64)

    # Phase 2: attach leftovers to a cluster containing a former neighbour.
    leftovers = np.flatnonzero(remaining)
    if clusters:
        for player in leftovers:
            neighbor_clusters = assignment[adjacency[player]]
            neighbor_clusters = neighbor_clusters[neighbor_clusters >= 0]
            if neighbor_clusters.size:
                counts = np.bincount(neighbor_clusters, minlength=len(clusters))
                target = int(np.argmax(counts))
            else:
                # No former neighbour in any cluster: join the largest cluster
                # (a conservative default; only reachable off the promise).
                target = int(np.argmax([c.size for c in clusters]))
            assignment[player] = target
    else:
        # Degenerate case: nobody met the degree requirement.
        assignment[:] = 0
        clusters = [np.arange(n, dtype=np.int64)]
        return Clustering(assignment=assignment, clusters=clusters)

    # Rebuild member lists to include attached leftovers.
    rebuilt: list[np.ndarray] = []
    for cluster_id in range(len(clusters)):
        rebuilt.append(np.flatnonzero(assignment == cluster_id).astype(np.int64))
    return Clustering(assignment=assignment, clusters=rebuilt)
