"""The paper's primary contribution: the CalculatePreferences protocol.

Modules follow the structure of §6–§7:

* :mod:`repro.core.sampling` — Step 1: selecting the sample set ``S``
  (Lemma 6);
* :mod:`repro.core.clustering` — Step 3: neighbour graph and greedy
  clustering (Lemmas 7–9);
* :mod:`repro.core.work_sharing` — Step 4: redundant probing and majority
  voting inside each cluster (Lemmas 10, 12, 13);
* :mod:`repro.core.calculate_preferences` — the full honest-randomness
  protocol: diameter doubling, the easy-case dispatches, and the final
  RSelect (Lemmas 11–12, Theorem 14 without leader election);
* :mod:`repro.core.robust` — the dishonest-player wrapper of §7: leader
  election, adversarial randomness when the coalition wins the election,
  Θ(log n) repetitions, final RSelect.
"""

from repro.core.calculate_preferences import (
    CalculatePreferencesResult,
    calculate_preferences,
    calculate_preferences_for_diameter,
)
from repro.core.clustering import Clustering, build_neighbor_graph, cluster_players
from repro.core.robust import RobustResult, robust_calculate_preferences
from repro.core.sampling import sample_disagreements, select_sample_set
from repro.core.work_sharing import share_work

__all__ = [
    "CalculatePreferencesResult",
    "Clustering",
    "RobustResult",
    "build_neighbor_graph",
    "calculate_preferences",
    "calculate_preferences_for_diameter",
    "cluster_players",
    "robust_calculate_preferences",
    "sample_disagreements",
    "select_sample_set",
    "share_work",
]
