"""The CalculatePreferences protocol (§6, Figure 2).

The protocol does not know the true correlation level, so it *guesses* the
diameter: it runs its pipeline once for every ``D = 1, 2, 4, …, n`` and lets
each player pick the best resulting candidate vector with RSelect (§6.1).
For one guessed diameter the pipeline is:

(b) select a sample set ``S`` with per-object probability ``Θ(log n / D)``;
(c) run SmallRadius on ``S`` with diameter bound ``Θ(log n)`` so every player
    obtains an estimate ``z(p)`` of its preferences on the sample;
(d) build the neighbour graph on the published ``z`` vectors and extract
    clusters of size ``≥ n/B``;
(e) share the probing work inside each cluster with ``Θ(log n)``-redundant
    majority voting.

Two easy cases are dispatched as in §6.1: when the budget already allows
probing everything, do that; when the guessed diameter is below ``log n``,
SmallRadius alone solves the problem for that guess.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.clustering import build_neighbor_graph, cluster_players
from repro.core.sampling import select_sample_set
from repro.core.work_sharing import share_work
from repro.errors import ProtocolError
from repro.obs.runtime import active_telemetry, span, traced
from repro.protocols.context import ProtocolContext
from repro.protocols.rselect import rselect_collective
from repro.protocols.small_radius import small_radius

__all__ = [
    "DiameterIterationTrace",
    "CalculatePreferencesResult",
    "calculate_preferences_for_diameter",
    "calculate_preferences",
    "default_diameter_schedule",
    "efficient_diameter_schedule",
]


@dataclass(frozen=True)
class DiameterIterationTrace:
    """Diagnostics for one guessed-diameter iteration."""

    diameter: float
    sample_size: int
    n_clusters: int
    cluster_sizes: tuple[int, ...]
    used_small_radius_directly: bool


@dataclass(frozen=True)
class CalculatePreferencesResult:
    """Output of a full CalculatePreferences execution."""

    predictions: np.ndarray
    candidate_stack: np.ndarray
    diameters: tuple[float, ...]
    traces: tuple[DiameterIterationTrace, ...] = field(default_factory=tuple)
    probed_everything: bool = False


def default_diameter_schedule(n_objects: int) -> list[int]:
    """The doubling schedule ``D = 1, 2, 4, …, ≥ n`` of §6.1."""
    if n_objects <= 0:
        raise ProtocolError(f"n_objects must be positive, got {n_objects}")
    schedule = []
    d = 1
    while d < 2 * n_objects:
        schedule.append(d)
        d *= 2
    return schedule


def efficient_diameter_schedule(
    n_players: int,
    n_objects: int,
    constants,
) -> list[float]:
    """Doubling schedule restricted to guesses whose sample set is a strict
    subset of the objects.

    For guessed diameters below ``c · ln n`` (``c`` the sampling factor) the
    per-object inclusion probability saturates at 1, so the "sample" is the
    whole object set and the guess degenerates into probing everything — the
    regime the paper handles separately via the ``D < log n`` SmallRadius
    dispatch.  This schedule keeps only the guesses ``D ≥ c · ln n`` (always
    at least one guess).

    Trade-off (documented in EXPERIMENTS.md): when the true optimal diameter
    ``D_opt`` is below the smallest retained guess ``T = Θ(log n)``, the
    protocol's guarantee weakens from ``O(D_opt)`` to ``O(T) = O(log n)``
    additive — the same cluster still qualifies at the ``T`` guess, it is just
    measured against a coarser diameter.  Whenever ``D_opt = Ω(log n)`` the
    constant-factor guarantee is unchanged.
    """
    log_n = constants.log_n(n_players)
    minimum = constants.sample_prob_factor * log_n
    schedule = [float(d) for d in default_diameter_schedule(n_objects) if d >= minimum]
    if not schedule:
        schedule = [float(default_diameter_schedule(n_objects)[-1])]
    return schedule


def calculate_preferences_for_diameter(
    ctx: ProtocolContext,
    diameter: float,
    channel: str = "calc",
) -> tuple[np.ndarray, DiameterIterationTrace]:
    """Run steps (b)–(e) of Figure 2 for one guessed diameter.

    Returns the candidate prediction matrix for this guess plus a trace of
    the intermediate structure (sample size, clusters) used by the
    experiments and by EXPERIMENTS.md.
    """
    players = ctx.all_players()
    constants = ctx.constants
    n = ctx.n_players

    # Step (b): sample set.
    sample = select_sample_set(ctx, diameter)

    # Step (c): SmallRadius on the sample with the Θ(log n) diameter bound.
    sample_diameter = constants.sample_agreement_bound(n)
    z_estimates = small_radius(
        ctx,
        players,
        sample,
        sample_diameter,
        budget=ctx.budget,
        channel=f"{channel}/sr",
    )
    published_z = ctx.publish_vectors_packed(f"{channel}/z", players, sample, z_estimates)

    # Step (d): neighbour graph and clusters.  The degree needed to seed a
    # cluster is lowered by the dishonest-player tolerance n/(3B): up to that
    # many of an honest player's true neighbours may publish garbage
    # estimates and therefore not show up as graph neighbours (§7.2).
    with span("cluster"):
        threshold = constants.edge_threshold(n)
        adjacency = build_neighbor_graph(published_z, threshold)
        min_cluster_size = max(2, int(math.ceil(n / ctx.budget)))
        seed_degree = max(1, min_cluster_size - 1 - constants.max_dishonest(n, ctx.budget))
        clustering = cluster_players(adjacency, min_cluster_size, seed_degree=seed_degree)

    # Step (e): work sharing.
    predictions = share_work(ctx, clustering, channel=f"{channel}/work")

    trace = DiameterIterationTrace(
        diameter=float(diameter),
        sample_size=int(sample.size),
        n_clusters=clustering.n_clusters,
        cluster_sizes=tuple(int(size) for size in clustering.sizes()),
        used_small_radius_directly=False,
    )
    return predictions, trace


@traced("diameter")
def _run_diameter_iteration(
    ctx: ProtocolContext, diameter: float, channel: str
) -> tuple[np.ndarray, DiameterIterationTrace]:
    """One guessed-diameter iteration: the §6.1 dispatch between the direct
    SmallRadius easy case and the full pipeline."""
    if diameter <= 0:
        raise ProtocolError(f"guessed diameter must be positive, got {diameter}")
    if diameter < ctx.constants.log_n(ctx.n_players):
        # Easy case: SmallRadius alone handles sub-logarithmic diameters.
        preds = small_radius(
            ctx,
            ctx.all_players(),
            ctx.all_objects(),
            diameter,
            budget=ctx.budget,
            channel=f"{channel}/direct-sr",
        )
        trace = DiameterIterationTrace(
            diameter=float(diameter),
            sample_size=int(ctx.n_objects),
            n_clusters=0,
            cluster_sizes=(),
            used_small_radius_directly=True,
        )
        return preds, trace
    return calculate_preferences_for_diameter(ctx, diameter, channel=channel)


def _diameter_worker(
    ctx: ProtocolContext, diameter: float, channel: str
) -> tuple[np.ndarray, DiameterIterationTrace, np.ndarray, np.ndarray, dict]:
    """Picklable trial for one fanned-out diameter iteration.

    Runs against a forked copy of the context (the process pool pickles the
    arguments) and ships back, besides the iteration result, everything the
    parent needs to merge state as if the iteration had run in place: the
    oracle's probe mask and request counts after the run, and the board
    channels written under the iteration's prefix.
    """
    preds, trace = _run_diameter_iteration(ctx, diameter, channel)
    probed_after, requests_after = ctx.oracle.probe_state()
    return preds, trace, probed_after, requests_after, ctx.board.export_channels(channel)


def _fan_out_diameters(
    ctx: ProtocolContext,
    diameters: list[float],
    channel: str,
    n_workers: int,
) -> tuple[list[np.ndarray], list[DiameterIterationTrace]]:
    """Run the guessed-diameter iterations on independent substreams.

    Every iteration gets its own shared-randomness stream, spawned from the
    context's stream **in schedule order before anything runs** — so the
    overall draw sequence, and therefore the result, is a function of the
    schedule alone, not of scheduling: ``n_workers=1`` executes the
    iterations serially in-process and any larger worker count fans them
    across the trial engine, bit-identically (results, probe accounting and
    board state merge back in schedule order; see
    :meth:`~repro.simulation.oracle.ProbeOracle.absorb_probe_run` for why
    the replayed charging equals the serial charging).

    Three situations force the serial path regardless of ``n_workers``:
    reporting strategies (they may draw from the pool's shared generator per
    call, which fan-out would reorder), an enforcing oracle budget (a fork
    cannot see the other iterations' probes, so the cap could misfire), and
    an ambient telemetry collection — each fork's oracle would charge
    against its own pre-fork memoisation state, so the forks' probe counters
    would overcount relative to the schedule-order replay the parent merges,
    breaking the "span totals reconcile with the oracle's accounting"
    invariant the trace surfaces depend on.
    """
    for diameter in diameters:
        if diameter <= 0:
            raise ProtocolError(f"guessed diameter must be positive, got {diameter}")
    streams = [ctx.randomness.spawn() for _ in diameters]
    points = [
        (ctx.with_randomness(stream), float(diameter), f"{channel}/d{index}")
        for index, (diameter, stream) in enumerate(zip(diameters, streams))
    ]
    serial_only = (
        ctx.pool.has_strategies
        or ctx.oracle.enforce_budget
        or active_telemetry() is not None
    )
    if n_workers <= 1 or len(points) <= 1 or serial_only:
        results = [
            _run_diameter_iteration(point_ctx, diameter, point_channel)
            for point_ctx, diameter, point_channel in points
        ]
        return [preds for preds, _ in results], [trace for _, trace in results]

    from repro.analysis.runner import run_trials  # deferred: analysis imports us

    base_requests = ctx.oracle.requests_used()
    candidates: list[np.ndarray] = []
    traces: list[DiameterIterationTrace] = []
    for preds, trace, probed_after, requests_after, board_payload in run_trials(
        _diameter_worker, points, n_workers=n_workers
    ):
        ctx.oracle.absorb_probe_run(probed_after, requests_after - base_requests)
        ctx.board.absorb_channels(board_payload)
        candidates.append(preds)
        traces.append(trace)
    return candidates, traces


@traced("calculate_preferences")
def calculate_preferences(
    ctx: ProtocolContext,
    diameters: list[float] | None = None,
    channel: str = "calc",
    n_workers: int | None = None,
) -> CalculatePreferencesResult:
    """Run the full CalculatePreferences protocol.

    Parameters
    ----------
    ctx:
        Execution context (honest or adversarial shared randomness).
    diameters:
        Guessed-diameter schedule; defaults to the doubling schedule of §6.1.
        Experiments with a known planted diameter may pass a restricted
        schedule to keep running times down — the restriction can only hurt
        the protocol, never help it, since the default schedule is a superset.
    channel:
        Bulletin-board channel prefix (the robust wrapper uses one prefix per
        leader-election iteration).
    n_workers:
        ``None`` (default) runs the guessed-diameter loop on the historical
        sequential stream — every iteration consumes the context's shared
        randomness in turn, exactly as in prior releases.  Any integer
        switches to the **parallel diameter search**: each iteration runs on
        its own substream spawned up front in schedule order, so the result
        is identical for every worker count — ``n_workers=1`` is the
        in-process serial execution of that layout, ``n_workers>1`` fans the
        iterations across the process-pool trial engine and merges probe
        accounting and board state back in schedule order.  (The two layouts
        give different — equally valid — random executions; experiments that
        compare against recorded runs pick one and stay on it.)

    Returns
    -------
    CalculatePreferencesResult
        Final per-player predictions, the per-diameter candidate stack, and
        per-iteration traces.
    """
    players = ctx.all_players()
    objects = ctx.all_objects()
    n, m = ctx.n_players, ctx.n_objects

    # Easy case (§6.1): the budget is large enough to probe everything within
    # the B·polylog(n) allowance.
    if ctx.budget * math.log2(max(2, n)) >= m:
        with span("probe_everything"):
            true_block, _ = ctx.probe_and_report_block(
                f"{channel}/probe-all", players, objects
            )
        stack = true_block[:, None, :]
        return CalculatePreferencesResult(
            predictions=true_block,
            candidate_stack=stack,
            diameters=(float(m),),
            traces=(),
            probed_everything=True,
        )

    if diameters is None:
        diameters = [float(d) for d in default_diameter_schedule(m)]
    if not diameters:
        raise ProtocolError("diameters schedule must be non-empty")

    if n_workers is None:
        candidates: list[np.ndarray] = []
        traces: list[DiameterIterationTrace] = []
        for index, diameter in enumerate(diameters):
            preds, trace = _run_diameter_iteration(
                ctx, diameter, f"{channel}/d{index}"
            )
            candidates.append(preds)
            traces.append(trace)
    else:
        candidates, traces = _fan_out_diameters(
            ctx, list(diameters), channel, int(n_workers)
        )

    candidate_stack = np.stack(candidates, axis=1)  # (n_players, k, n_objects)
    if candidate_stack.shape[1] == 1:
        final = candidate_stack[:, 0, :].copy()
    else:
        # One collective tournament: every player's RSelect over its
        # per-diameter candidates runs round-batched (player-major
        # randomness, one ragged oracle call per candidate-pair round).
        final = rselect_collective(ctx, players, objects, candidate_stack)
    return CalculatePreferencesResult(
        predictions=final,
        candidate_stack=candidate_stack,
        diameters=tuple(float(d) for d in diameters),
        traces=tuple(traces),
    )
