"""The CalculatePreferences protocol (§6, Figure 2).

The protocol does not know the true correlation level, so it *guesses* the
diameter: it runs its pipeline once for every ``D = 1, 2, 4, …, n`` and lets
each player pick the best resulting candidate vector with RSelect (§6.1).
For one guessed diameter the pipeline is:

(b) select a sample set ``S`` with per-object probability ``Θ(log n / D)``;
(c) run SmallRadius on ``S`` with diameter bound ``Θ(log n)`` so every player
    obtains an estimate ``z(p)`` of its preferences on the sample;
(d) build the neighbour graph on the published ``z`` vectors and extract
    clusters of size ``≥ n/B``;
(e) share the probing work inside each cluster with ``Θ(log n)``-redundant
    majority voting.

Two easy cases are dispatched as in §6.1: when the budget already allows
probing everything, do that; when the guessed diameter is below ``log n``,
SmallRadius alone solves the problem for that guess.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.clustering import build_neighbor_graph, cluster_players
from repro.core.sampling import select_sample_set
from repro.core.work_sharing import share_work
from repro.errors import ProtocolError
from repro.protocols.context import ProtocolContext
from repro.protocols.rselect import rselect_collective
from repro.protocols.small_radius import small_radius

__all__ = [
    "DiameterIterationTrace",
    "CalculatePreferencesResult",
    "calculate_preferences_for_diameter",
    "calculate_preferences",
    "default_diameter_schedule",
    "efficient_diameter_schedule",
]


@dataclass(frozen=True)
class DiameterIterationTrace:
    """Diagnostics for one guessed-diameter iteration."""

    diameter: float
    sample_size: int
    n_clusters: int
    cluster_sizes: tuple[int, ...]
    used_small_radius_directly: bool


@dataclass(frozen=True)
class CalculatePreferencesResult:
    """Output of a full CalculatePreferences execution."""

    predictions: np.ndarray
    candidate_stack: np.ndarray
    diameters: tuple[float, ...]
    traces: tuple[DiameterIterationTrace, ...] = field(default_factory=tuple)
    probed_everything: bool = False


def default_diameter_schedule(n_objects: int) -> list[int]:
    """The doubling schedule ``D = 1, 2, 4, …, ≥ n`` of §6.1."""
    if n_objects <= 0:
        raise ProtocolError(f"n_objects must be positive, got {n_objects}")
    schedule = []
    d = 1
    while d < 2 * n_objects:
        schedule.append(d)
        d *= 2
    return schedule


def efficient_diameter_schedule(
    n_players: int,
    n_objects: int,
    constants,
) -> list[float]:
    """Doubling schedule restricted to guesses whose sample set is a strict
    subset of the objects.

    For guessed diameters below ``c · ln n`` (``c`` the sampling factor) the
    per-object inclusion probability saturates at 1, so the "sample" is the
    whole object set and the guess degenerates into probing everything — the
    regime the paper handles separately via the ``D < log n`` SmallRadius
    dispatch.  This schedule keeps only the guesses ``D ≥ c · ln n`` (always
    at least one guess).

    Trade-off (documented in EXPERIMENTS.md): when the true optimal diameter
    ``D_opt`` is below the smallest retained guess ``T = Θ(log n)``, the
    protocol's guarantee weakens from ``O(D_opt)`` to ``O(T) = O(log n)``
    additive — the same cluster still qualifies at the ``T`` guess, it is just
    measured against a coarser diameter.  Whenever ``D_opt = Ω(log n)`` the
    constant-factor guarantee is unchanged.
    """
    log_n = constants.log_n(n_players)
    minimum = constants.sample_prob_factor * log_n
    schedule = [float(d) for d in default_diameter_schedule(n_objects) if d >= minimum]
    if not schedule:
        schedule = [float(default_diameter_schedule(n_objects)[-1])]
    return schedule


def calculate_preferences_for_diameter(
    ctx: ProtocolContext,
    diameter: float,
    channel: str = "calc",
) -> tuple[np.ndarray, DiameterIterationTrace]:
    """Run steps (b)–(e) of Figure 2 for one guessed diameter.

    Returns the candidate prediction matrix for this guess plus a trace of
    the intermediate structure (sample size, clusters) used by the
    experiments and by EXPERIMENTS.md.
    """
    players = ctx.all_players()
    constants = ctx.constants
    n = ctx.n_players

    # Step (b): sample set.
    sample = select_sample_set(ctx, diameter)

    # Step (c): SmallRadius on the sample with the Θ(log n) diameter bound.
    sample_diameter = constants.sample_agreement_bound(n)
    z_estimates = small_radius(
        ctx,
        players,
        sample,
        sample_diameter,
        budget=ctx.budget,
        channel=f"{channel}/sr",
    )
    published_z = ctx.publish_vectors(f"{channel}/z", players, sample, z_estimates)

    # Step (d): neighbour graph and clusters.  The degree needed to seed a
    # cluster is lowered by the dishonest-player tolerance n/(3B): up to that
    # many of an honest player's true neighbours may publish garbage
    # estimates and therefore not show up as graph neighbours (§7.2).
    threshold = constants.edge_threshold(n)
    adjacency = build_neighbor_graph(published_z, threshold)
    min_cluster_size = max(2, int(math.ceil(n / ctx.budget)))
    seed_degree = max(1, min_cluster_size - 1 - constants.max_dishonest(n, ctx.budget))
    clustering = cluster_players(adjacency, min_cluster_size, seed_degree=seed_degree)

    # Step (e): work sharing.
    predictions = share_work(ctx, clustering, channel=f"{channel}/work")

    trace = DiameterIterationTrace(
        diameter=float(diameter),
        sample_size=int(sample.size),
        n_clusters=clustering.n_clusters,
        cluster_sizes=tuple(int(size) for size in clustering.sizes()),
        used_small_radius_directly=False,
    )
    return predictions, trace


def calculate_preferences(
    ctx: ProtocolContext,
    diameters: list[float] | None = None,
    channel: str = "calc",
) -> CalculatePreferencesResult:
    """Run the full CalculatePreferences protocol.

    Parameters
    ----------
    ctx:
        Execution context (honest or adversarial shared randomness).
    diameters:
        Guessed-diameter schedule; defaults to the doubling schedule of §6.1.
        Experiments with a known planted diameter may pass a restricted
        schedule to keep running times down — the restriction can only hurt
        the protocol, never help it, since the default schedule is a superset.
    channel:
        Bulletin-board channel prefix (the robust wrapper uses one prefix per
        leader-election iteration).

    Returns
    -------
    CalculatePreferencesResult
        Final per-player predictions, the per-diameter candidate stack, and
        per-iteration traces.
    """
    players = ctx.all_players()
    objects = ctx.all_objects()
    n, m = ctx.n_players, ctx.n_objects

    # Easy case (§6.1): the budget is large enough to probe everything within
    # the B·polylog(n) allowance.
    if ctx.budget * math.log2(max(2, n)) >= m:
        true_block, _ = ctx.probe_and_report_block(f"{channel}/probe-all", players, objects)
        stack = true_block[:, None, :]
        return CalculatePreferencesResult(
            predictions=true_block,
            candidate_stack=stack,
            diameters=(float(m),),
            traces=(),
            probed_everything=True,
        )

    if diameters is None:
        diameters = [float(d) for d in default_diameter_schedule(m)]
    if not diameters:
        raise ProtocolError("diameters schedule must be non-empty")

    log_n = ctx.constants.log_n(n)
    candidates: list[np.ndarray] = []
    traces: list[DiameterIterationTrace] = []
    for index, diameter in enumerate(diameters):
        if diameter <= 0:
            raise ProtocolError(f"guessed diameter must be positive, got {diameter}")
        iteration_channel = f"{channel}/d{index}"
        if diameter < log_n:
            # Easy case: SmallRadius alone handles sub-logarithmic diameters.
            preds = small_radius(
                ctx,
                players,
                objects,
                diameter,
                budget=ctx.budget,
                channel=f"{iteration_channel}/direct-sr",
            )
            trace = DiameterIterationTrace(
                diameter=float(diameter),
                sample_size=int(m),
                n_clusters=0,
                cluster_sizes=(),
                used_small_radius_directly=True,
            )
        else:
            preds, trace = calculate_preferences_for_diameter(
                ctx, diameter, channel=iteration_channel
            )
        candidates.append(preds)
        traces.append(trace)

    candidate_stack = np.stack(candidates, axis=1)  # (n_players, k, n_objects)
    if candidate_stack.shape[1] == 1:
        final = candidate_stack[:, 0, :].copy()
    else:
        # One collective tournament: every player's RSelect over its
        # per-diameter candidates runs round-batched (player-major
        # randomness, one ragged oracle call per candidate-pair round).
        final = rselect_collective(ctx, players, objects, candidate_stack)
    return CalculatePreferencesResult(
        predictions=final,
        candidate_stack=candidate_stack,
        diameters=tuple(float(d) for d in diameters),
        traces=tuple(traces),
    )
