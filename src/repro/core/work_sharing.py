"""Step 4 of CalculatePreferences: sharing the probing work inside clusters.

For every cluster and every object, ``Θ(log n)`` cluster members are chosen
at random to probe the object and post their results; every member of the
cluster adopts the majority of the posted values as its prediction for that
object.  Lemma 10 bounds each player's expected load by ``O(B log n)``
probes; Lemma 12 bounds the resulting error by ``O(D)``; Lemma 13 shows
dishonest members can only flip the majority on ``O(D)`` "strange" objects.

The prober assignment comes from the shared randomness — a dishonest leader
can bias it toward coalition members (see
:class:`repro.simulation.randomness.AdversarialRandomness`), which is exactly
the attack surface the robust wrapper's leader election closes.

:func:`share_work` runs the whole phase **cross-cluster batched**: the
assignments are still drawn cluster by cluster (the shared-randomness order
is part of the protocol's determinism contract), but the probes of *all*
clusters resolve through one ``probe_pairs`` call and one report pass, with
each cluster's reports posted to its own channel slice.  Clusters are
disjoint, so the batched accounting, board state and majorities are
bit-identical to looping :func:`cluster_majority_vote` (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.errors import ProtocolError
from repro.obs.runtime import traced
from repro.protocols.context import ProtocolContext

__all__ = ["share_work", "cluster_majority_vote"]


def _majority_from_votes(reported: np.ndarray, n_objects: int, redundancy: int) -> np.ndarray:
    """Majority of the redundancy votes per object (ties go to 1).

    ``reported`` holds the object-major flat votes: entry ``o * redundancy +
    r`` is the ``r``-th vote for object ``o``.  Votes are a multiset — the
    same member drawn twice counts twice — which is why the majority is
    taken here and not from the board's distinct-cell state.
    """
    votes = reported.reshape(n_objects, redundancy).astype(np.int64)
    likes = votes.sum(axis=1)
    return (2 * likes >= redundancy).astype(np.uint8)


def cluster_majority_vote(
    ctx: ProtocolContext,
    members: np.ndarray,
    redundancy: int,
    channel: str,
) -> np.ndarray:
    """Compute one cluster's shared prediction vector by redundant probing.

    For every object, ``redundancy`` members (chosen by the shared
    randomness, with replacement) probe it and post reports; the cluster
    prediction is the majority of the posted reports.  Returns the cluster's
    prediction vector over all objects.
    """
    members = np.asarray(members, dtype=np.int64)
    if members.size == 0:
        raise ProtocolError("cluster_majority_vote requires a non-empty cluster")
    redundancy = int(redundancy)
    if redundancy <= 0:
        raise ProtocolError(f"redundancy must be positive, got {redundancy}")

    n_objects = ctx.n_objects
    assignment = ctx.randomness.assign_probers(members, n_objects, redundancy)
    objects = np.repeat(np.arange(n_objects, dtype=np.int64), redundancy)
    probers = assignment.reshape(-1)

    true_values = ctx.oracle.probe_pairs(probers, objects)
    reported = ctx.pool.reports_pairs(probers, objects, true_values)
    # One bulk post; the board resolves duplicate pairs last-wins in call
    # order, which matches a sequential posting loop (attribution stays
    # per-pair inside post_report_pairs).  With no strategies installed the
    # reports are a pure function of the cell, so duplicates are consistent
    # and the board may skip its dedup sort.
    ctx.board.post_report_pairs(
        channel, probers, objects, reported, consistent=not ctx.pool.has_strategies
    )
    return _majority_from_votes(reported, n_objects, redundancy)


@traced("share_work")
def share_work(
    ctx: ProtocolContext,
    clustering: Clustering,
    channel: str = "work-sharing",
    batch_clusters: bool = True,
) -> np.ndarray:
    """Run the work-sharing phase for every cluster.

    Returns the prediction matrix ``W`` of shape ``(n_players, n_objects)``:
    every member of a cluster receives the cluster's majority vector.
    ``batch_clusters=False`` forces the per-cluster reference loop (one
    :func:`cluster_majority_vote` per cluster); the default batches the
    probe/report traffic of all clusters into single bulk calls, which is
    bit-identical — same shared-randomness draws (still per cluster, in
    cluster order), same probe accounting (clusters are disjoint, so no
    cross-cluster pair collides), same board state, same majorities.
    Pools carrying reporting strategies take the loop: a strategy may draw
    from the pool's generator per call, and batching would reorder those
    draws across clusters.
    """
    redundancy = ctx.constants.vote_redundancy(ctx.n_players)
    predictions = np.zeros((ctx.n_players, ctx.n_objects), dtype=np.uint8)
    n_objects = ctx.n_objects

    populated = [
        cluster_id
        for cluster_id in range(clustering.n_clusters)
        if clustering.members(cluster_id).size
    ]
    if not populated:
        return predictions
    if not batch_clusters or ctx.pool.has_strategies:
        for cluster_id in populated:
            vector = cluster_majority_vote(
                ctx,
                clustering.members(cluster_id),
                redundancy,
                channel=f"{channel}/c{cluster_id}",
            )
            predictions[clustering.members(cluster_id)] = vector
        return predictions

    # Draw every cluster's assignment first (cluster order — the draws are
    # the protocol-visible part), then resolve all probes in one call.
    objects = np.repeat(np.arange(n_objects, dtype=np.int64), redundancy)
    prober_blocks = [
        ctx.randomness.assign_probers(
            clustering.members(cluster_id), n_objects, redundancy
        ).reshape(-1)
        for cluster_id in populated
    ]
    probers = np.concatenate(prober_blocks)
    all_objects = np.tile(objects, len(populated))
    true_values = ctx.oracle.probe_pairs(probers, all_objects)
    reported = ctx.pool.reports_pairs(probers, all_objects, true_values)

    span = n_objects * redundancy
    for index, cluster_id in enumerate(populated):
        block = slice(index * span, (index + 1) * span)
        ctx.board.post_report_pairs(
            f"{channel}/c{cluster_id}",
            probers[block],
            objects,
            reported[block],
            consistent=True,  # no strategies on this path: reports are true values
        )
        predictions[clustering.members(cluster_id)] = _majority_from_votes(
            reported[block], n_objects, redundancy
        )
    return predictions
