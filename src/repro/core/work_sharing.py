"""Step 4 of CalculatePreferences: sharing the probing work inside clusters.

For every cluster and every object, ``Θ(log n)`` cluster members are chosen
at random to probe the object and post their results; every member of the
cluster adopts the majority of the posted values as its prediction for that
object.  Lemma 10 bounds each player's expected load by ``O(B log n)``
probes; Lemma 12 bounds the resulting error by ``O(D)``; Lemma 13 shows
dishonest members can only flip the majority on ``O(D)`` "strange" objects.

The prober assignment comes from the shared randomness — a dishonest leader
can bias it toward coalition members (see
:class:`repro.simulation.randomness.AdversarialRandomness`), which is exactly
the attack surface the robust wrapper's leader election closes.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.errors import ProtocolError
from repro.protocols.context import ProtocolContext

__all__ = ["share_work", "cluster_majority_vote"]


def cluster_majority_vote(
    ctx: ProtocolContext,
    members: np.ndarray,
    redundancy: int,
    channel: str,
) -> np.ndarray:
    """Compute one cluster's shared prediction vector by redundant probing.

    For every object, ``redundancy`` members (chosen by the shared
    randomness, with replacement) probe it and post reports; the cluster
    prediction is the majority of the posted reports.  Returns the cluster's
    prediction vector over all objects.
    """
    members = np.asarray(members, dtype=np.int64)
    if members.size == 0:
        raise ProtocolError("cluster_majority_vote requires a non-empty cluster")
    redundancy = int(redundancy)
    if redundancy <= 0:
        raise ProtocolError(f"redundancy must be positive, got {redundancy}")

    n_objects = ctx.n_objects
    assignment = ctx.randomness.assign_probers(members, n_objects, redundancy)
    objects = np.repeat(np.arange(n_objects, dtype=np.int64), redundancy)
    probers = assignment.reshape(-1)

    true_values = ctx.oracle.probe_pairs(probers, objects)
    reported = ctx.pool.reports_pairs(probers, objects, true_values)
    # Post all reports in one bulk call.  The stable argsort groups each
    # prober's pairs together (preserving their original relative order, so
    # duplicate pairs resolve exactly as the old per-player posting loop
    # did); attribution stays per-pair inside post_report_pairs.
    order = np.argsort(probers, kind="stable")
    ctx.board.post_report_pairs(
        channel, probers[order], objects[order], reported[order]
    )

    votes = reported.reshape(n_objects, redundancy).astype(np.int64)
    likes = votes.sum(axis=1)
    return (2 * likes >= redundancy).astype(np.uint8)


def share_work(
    ctx: ProtocolContext,
    clustering: Clustering,
    channel: str = "work-sharing",
) -> np.ndarray:
    """Run the work-sharing phase for every cluster.

    Returns the prediction matrix ``W`` of shape ``(n_players, n_objects)``:
    every member of a cluster receives the cluster's majority vector.
    """
    redundancy = ctx.constants.vote_redundancy(ctx.n_players)
    predictions = np.zeros((ctx.n_players, ctx.n_objects), dtype=np.uint8)
    for cluster_id in range(clustering.n_clusters):
        members = clustering.members(cluster_id)
        if members.size == 0:
            continue
        vector = cluster_majority_vote(
            ctx, members, redundancy, channel=f"{channel}/c{cluster_id}"
        )
        predictions[members] = vector
    return predictions
