"""Step 1 of CalculatePreferences: selecting the sample set ``S`` (§6.3).

Each object joins the sample independently with probability
``Θ(log n / D)``.  Lemma 6 shows the sample preserves similarity structure:
players at distance ``< D`` disagree on ``O(log n)`` sampled objects, players
at distance ``≥ 3D`` disagree on ``Ω(log n)`` sampled objects, with high
probability.  The helpers here expose both the selection step (driven by the
*shared* randomness so a dishonest leader's bias is faithfully modelled) and
the diagnostic quantities used by experiment E4 to verify the Lemma-6
concentration empirically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.obs.runtime import traced
from repro.protocols.context import ProtocolContext

__all__ = ["select_sample_set", "sample_disagreements", "expected_sample_size"]


@traced("sample")
def select_sample_set(ctx: ProtocolContext, diameter: float) -> np.ndarray:
    """Select the sample set ``S`` for a target diameter ``D``.

    Each object is included independently with probability
    ``min(1, c · ln(n) / D)`` where ``c`` is
    :attr:`repro.simulation.config.ProtocolConstants.sample_prob_factor`.
    The draw comes from the context's shared randomness: when the robust
    wrapper installed an adversarial source (dishonest leader), the bias —
    e.g. hiding coalition-revealing objects — flows through here.
    """
    if diameter <= 0:
        raise ProtocolError(f"diameter must be positive, got {diameter}")
    probability = ctx.constants.sample_probability(ctx.n_players, diameter)
    return ctx.randomness.sample_objects(ctx.n_objects, probability)


def expected_sample_size(ctx: ProtocolContext, diameter: float) -> float:
    """Expected size of the sample set for a target diameter."""
    probability = ctx.constants.sample_probability(ctx.n_players, diameter)
    return probability * ctx.n_objects


def sample_disagreements(
    preferences: np.ndarray, sample: np.ndarray
) -> np.ndarray:
    """All-pairs disagreement counts restricted to the sampled objects.

    Diagnostic helper for Lemma 6 (experiment E4): given the *true*
    preference matrix and a sample, returns the ``(n, n)`` matrix of pairwise
    Hamming distances on the sample.  This reads the ground truth directly
    and therefore must only be used for post-hoc analysis, never inside a
    protocol.
    """
    preferences = np.asarray(preferences)
    sample = np.asarray(sample, dtype=np.int64)
    if sample.size == 0:
        raise ProtocolError("sample must be non-empty")
    block = preferences[:, sample].astype(np.int32) * 2 - 1
    inner = block @ block.T
    return ((sample.size - inner) // 2).astype(np.int64)
