"""The dishonest-player wrapper (§7): leader election × repetition × RSelect.

CalculatePreferences depends on shared random choices.  With dishonest
players in the system those choices must not be biasable, so the paper wraps
the protocol as follows (§7.1):

1. elect a leader with a Byzantine-tolerant election (Feige's lightest-bin
   protocol) — an honest leader is elected with constant probability;
2. the leader publishes the random bits used for the sample set, the
   SmallRadius partitions and the prober assignment; a dishonest leader may
   publish biased bits;
3. run CalculatePreferences with those bits, producing one candidate vector
   per player;
4. repeat Θ(log n) times so that, with high probability, at least one
   repetition used honest randomness;
5. each player runs RSelect over its candidate vectors — RSelect uses only
   the player's own probes, so the dishonest players cannot influence the
   final choice.

The wrapper models the dishonest leader faithfully: when the coalition wins
an election, the shared randomness is replaced by an
:class:`~repro.simulation.randomness.AdversarialRandomness` configured from
the coalition's plan (hide revealing objects from samples, over-assign
coalition members as probers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calculate_preferences import (
    CalculatePreferencesResult,
    calculate_preferences,
)
from repro.errors import ProtocolError
from repro.leader.feige import ElectionResult, feige_leader_election
from repro.players.adversaries import CoalitionPlan
from repro.protocols.context import ProtocolContext
from repro.protocols.rselect import rselect_collective
from repro.simulation.randomness import AdversarialRandomness, SharedRandomness

__all__ = ["RobustResult", "robust_calculate_preferences"]


@dataclass(frozen=True)
class RobustResult:
    """Output of the robust (dishonest-tolerant) protocol."""

    predictions: np.ndarray
    iteration_results: tuple[CalculatePreferencesResult, ...]
    elections: tuple[ElectionResult, ...]

    @property
    def honest_leader_iterations(self) -> int:
        """How many repetitions were driven by an honestly elected leader."""
        return sum(1 for e in self.elections if e.leader_is_honest)


def robust_calculate_preferences(
    ctx: ProtocolContext,
    coalition: CoalitionPlan | None = None,
    iterations: int | None = None,
    diameters: list[float] | None = None,
    n_workers: int | None = None,
) -> RobustResult:
    """Run the Byzantine-robust CalculatePreferences protocol.

    Parameters
    ----------
    ctx:
        Execution context.  Its ``randomness`` field provides the honest
        leaders' bits; each iteration derives an independent stream from it.
    coalition:
        The dishonest coalition's plan (members + attack targets).  ``None``
        or an empty coalition reduces to the honest protocol repeated with a
        final RSelect.
    iterations:
        Number of leader-election repetitions; defaults to ``Θ(log n)`` from
        the constants.
    diameters:
        Guessed-diameter schedule forwarded to every repetition.
    n_workers:
        Forwarded to :func:`calculate_preferences` — ``None`` keeps the
        historical sequential diameter loop; an integer engages the
        parallel diameter search inside each leader-election repetition
        (deterministic for any worker count; see there).

    Returns
    -------
    RobustResult
        Final predictions, the per-iteration protocol results, and the
        election outcomes (so experiments can report how often the coalition
        captured the leadership).
    """
    n = ctx.n_players
    if iterations is None:
        iterations = ctx.constants.robust_iterations(n)
    if iterations <= 0:
        raise ProtocolError(f"iterations must be positive, got {iterations}")

    coalition_members = (
        coalition.members if coalition is not None else np.zeros(0, dtype=np.int64)
    )

    iteration_results: list[CalculatePreferencesResult] = []
    elections: list[ElectionResult] = []
    candidate_blocks: list[np.ndarray] = []

    for iteration in range(iterations):
        election_seed = int(ctx.randomness.generator.integers(0, 2**63 - 1))
        election = feige_leader_election(
            n_players=n, dishonest=coalition_members, seed=election_seed
        )
        elections.append(election)

        leader_seed = int(ctx.randomness.generator.integers(0, 2**63 - 1))
        if election.leader_is_honest or coalition is None:
            randomness: SharedRandomness = SharedRandomness(leader_seed)
        else:
            randomness = AdversarialRandomness(
                leader_seed,
                hidden_objects=coalition.hidden_objects,
                favoured_players=coalition.members,
            )

        iteration_ctx = ctx.with_randomness(randomness)
        result = calculate_preferences(
            iteration_ctx,
            diameters=diameters,
            channel=f"robust/i{iteration}",
            n_workers=n_workers,
        )
        iteration_results.append(result)
        candidate_blocks.append(result.predictions)

    candidate_stack = np.stack(candidate_blocks, axis=1)  # (n_players, iters, n_objects)
    if candidate_stack.shape[1] == 1:
        final = candidate_stack[:, 0, :].copy()
    else:
        # Step 5's per-player RSelect over the per-iteration candidates runs
        # as one collective round-batched tournament; each player still
        # relies only on its own probes and substream, so the dishonest
        # players cannot influence anyone else's choice.
        final = rselect_collective(
            ctx, ctx.all_players(), ctx.all_objects(), candidate_stack
        )
    return RobustResult(
        predictions=final,
        iteration_results=tuple(iteration_results),
        elections=tuple(elections),
    )
