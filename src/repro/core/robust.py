"""The dishonest-player wrapper (§7): leader election × repetition × RSelect.

CalculatePreferences depends on shared random choices.  With dishonest
players in the system those choices must not be biasable, so the paper wraps
the protocol as follows (§7.1):

1. elect a leader with a Byzantine-tolerant election (Feige's lightest-bin
   protocol) — an honest leader is elected with constant probability;
2. the leader publishes the random bits used for the sample set, the
   SmallRadius partitions and the prober assignment; a dishonest leader may
   publish biased bits;
3. run CalculatePreferences with those bits, producing one candidate vector
   per player;
4. repeat Θ(log n) times so that, with high probability, at least one
   repetition used honest randomness;
5. each player runs RSelect over its candidate vectors — RSelect uses only
   the player's own probes, so the dishonest players cannot influence the
   final choice.

The wrapper models the dishonest leader faithfully: when the coalition wins
an election, the shared randomness is replaced by an
:class:`~repro.simulation.randomness.AdversarialRandomness` configured from
the coalition's plan (hide revealing objects from samples, over-assign
coalition members as probers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calculate_preferences import (
    CalculatePreferencesResult,
    calculate_preferences,
)
from repro.errors import BudgetExceededError, OracleTimeout, ProtocolError
from repro.leader.feige import ElectionResult, feige_leader_election
from repro.players.adversaries import CoalitionPlan
from repro.protocols.context import ProtocolContext
from repro.protocols.rselect import rselect_collective
from repro.simulation.randomness import AdversarialRandomness, SharedRandomness

__all__ = ["DegradedRun", "RobustResult", "robust_calculate_preferences"]


@dataclass(frozen=True)
class DegradedRun:
    """Structured reason one protocol stage was abandoned under ``degrade=``.

    ``stage`` is ``"iteration"`` (one leader-election repetition gave up —
    its candidates are simply missing from the final RSelect) or
    ``"final-select"`` (the closing RSelect itself gave up — predictions
    fall back to the first completed repetition's candidates).  ``reason``
    is the exception class name (``BudgetExceededError``, ``OracleTimeout``),
    ``detail`` its message.
    """

    stage: str
    iteration: int | None
    reason: str
    detail: str


@dataclass(frozen=True)
class RobustResult:
    """Output of the robust (dishonest-tolerant) protocol.

    ``partial`` / ``failures`` / ``resolved_players`` describe graceful
    degradation (see :func:`robust_calculate_preferences` ``degrade=``); a
    normal run leaves them at their defaults, so existing callers and
    pickles are unaffected.
    """

    predictions: np.ndarray
    iteration_results: tuple[CalculatePreferencesResult, ...]
    elections: tuple[ElectionResult, ...]
    #: True when any stage was abandoned and the result is best-effort.
    partial: bool = False
    #: Why, stage by stage (empty for a clean run).
    failures: tuple[DegradedRun, ...] = ()
    #: Players whose predictions rest on at least one completed repetition
    #: (``None`` for a clean run: trivially all players).
    resolved_players: np.ndarray | None = None

    @property
    def honest_leader_iterations(self) -> int:
        """How many repetitions were driven by an honestly elected leader."""
        return sum(1 for e in self.elections if e.leader_is_honest)


def robust_calculate_preferences(
    ctx: ProtocolContext,
    coalition: CoalitionPlan | None = None,
    iterations: int | None = None,
    diameters: list[float] | None = None,
    n_workers: int | None = None,
    degrade: bool = False,
) -> RobustResult:
    """Run the Byzantine-robust CalculatePreferences protocol.

    Parameters
    ----------
    ctx:
        Execution context.  Its ``randomness`` field provides the honest
        leaders' bits; each iteration derives an independent stream from it.
    coalition:
        The dishonest coalition's plan (members + attack targets).  ``None``
        or an empty coalition reduces to the honest protocol repeated with a
        final RSelect.
    iterations:
        Number of leader-election repetitions; defaults to ``Θ(log n)`` from
        the constants.
    diameters:
        Guessed-diameter schedule forwarded to every repetition.
    n_workers:
        Forwarded to :func:`calculate_preferences` — ``None`` keeps the
        historical sequential diameter loop; an integer engages the
        parallel diameter search inside each leader-election repetition
        (deterministic for any worker count; see there).
    degrade:
        With the default ``False``, a probe-budget or fault-channel
        exhaustion (:class:`~repro.errors.BudgetExceededError`,
        :class:`~repro.errors.OracleTimeout`) propagates as usual.  With
        ``True`` the protocol degrades gracefully instead of raising: a
        failed repetition is dropped (the final RSelect runs over the
        repetitions that completed), a failed final RSelect falls back to
        the first completed repetition's candidates, and if *nothing*
        completed the result carries zero predictions and an empty
        ``resolved_players``.  Every abandonment is recorded as a
        :class:`DegradedRun` in ``failures`` and flips ``partial``.
        Degradation never consumes extra randomness: both per-iteration
        seeds are drawn before the attempt, so the seed stream — and hence
        every *surviving* stage — is bit-identical to the clean run's.

    Returns
    -------
    RobustResult
        Final predictions, the per-iteration protocol results, and the
        election outcomes (so experiments can report how often the coalition
        captured the leadership).
    """
    n = ctx.n_players
    if iterations is None:
        iterations = ctx.constants.robust_iterations(n)
    if iterations <= 0:
        raise ProtocolError(f"iterations must be positive, got {iterations}")

    coalition_members = (
        coalition.members if coalition is not None else np.zeros(0, dtype=np.int64)
    )

    iteration_results: list[CalculatePreferencesResult] = []
    elections: list[ElectionResult] = []
    candidate_blocks: list[np.ndarray] = []
    failures: list[DegradedRun] = []

    for iteration in range(iterations):
        election_seed = int(ctx.randomness.generator.integers(0, 2**63 - 1))
        election = feige_leader_election(
            n_players=n, dishonest=coalition_members, seed=election_seed
        )
        elections.append(election)

        leader_seed = int(ctx.randomness.generator.integers(0, 2**63 - 1))
        if election.leader_is_honest or coalition is None:
            randomness: SharedRandomness = SharedRandomness(leader_seed)
        else:
            randomness = AdversarialRandomness(
                leader_seed,
                hidden_objects=coalition.hidden_objects,
                favoured_players=coalition.members,
            )

        iteration_ctx = ctx.with_randomness(randomness)
        try:
            result = calculate_preferences(
                iteration_ctx,
                diameters=diameters,
                channel=f"robust/i{iteration}",
                n_workers=n_workers,
            )
        except (BudgetExceededError, OracleTimeout) as error:
            if not degrade:
                raise
            failures.append(
                DegradedRun(
                    stage="iteration",
                    iteration=iteration,
                    reason=type(error).__name__,
                    detail=str(error),
                )
            )
            continue
        iteration_results.append(result)
        candidate_blocks.append(result.predictions)

    if not candidate_blocks:
        # Every repetition exhausted its channel: nothing is resolved, but
        # the caller still gets a typed result it can inspect and report.
        return RobustResult(
            predictions=np.zeros((n, ctx.all_objects().size), dtype=np.uint8),
            iteration_results=(),
            elections=tuple(elections),
            partial=True,
            failures=tuple(failures),
            resolved_players=np.zeros(0, dtype=np.int64),
        )

    candidate_stack = np.stack(candidate_blocks, axis=1)  # (n_players, iters, n_objects)
    if candidate_stack.shape[1] == 1:
        final = candidate_stack[:, 0, :].copy()
    else:
        # Step 5's per-player RSelect over the per-iteration candidates runs
        # as one collective round-batched tournament; each player still
        # relies only on its own probes and substream, so the dishonest
        # players cannot influence anyone else's choice.
        try:
            final = rselect_collective(
                ctx, ctx.all_players(), ctx.all_objects(), candidate_stack
            )
        except (BudgetExceededError, OracleTimeout) as error:
            if not degrade:
                raise
            failures.append(
                DegradedRun(
                    stage="final-select",
                    iteration=None,
                    reason=type(error).__name__,
                    detail=str(error),
                )
            )
            final = candidate_blocks[0].copy()
    partial = bool(failures)
    return RobustResult(
        predictions=final,
        iteration_results=tuple(iteration_results),
        elections=tuple(elections),
        partial=partial,
        failures=tuple(failures),
        resolved_players=ctx.all_players() if partial else None,
    )
