"""Preference-matrix instances and the metrics the paper's theorems use.

``generators`` builds the hidden preference matrices the evaluation sweeps
over (planted clusters of bounded diameter, zero-radius clusters, the
Claim-2 lower-bound distribution, random matrices, mixture models).

``metrics`` computes the quantities the theorems are stated in: Hamming
distance matrices, set diameters, and the per-player optimality benchmark
``D_opt(p)`` of Definition 1.
"""

from repro.preferences.generators import (
    PlantedInstance,
    claim2_lower_bound_instance,
    heterogeneous_cluster_instance,
    mixture_model_instance,
    planted_clusters_instance,
    random_instance,
    zero_radius_instance,
)
from repro.preferences.metrics import (
    distance_matrix,
    hamming_distance,
    kth_nearest_distance,
    optimal_diameters,
    set_diameter,
)

__all__ = [
    "PlantedInstance",
    "claim2_lower_bound_instance",
    "distance_matrix",
    "hamming_distance",
    "heterogeneous_cluster_instance",
    "kth_nearest_distance",
    "mixture_model_instance",
    "optimal_diameters",
    "planted_clusters_instance",
    "random_instance",
    "set_diameter",
    "zero_radius_instance",
]
