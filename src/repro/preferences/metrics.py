"""Distance, diameter and optimality metrics over preference matrices.

The paper measures everything in Hamming distance:

* ``|v(p) − v(q)|`` — disagreement between two players;
* ``D(P) = max_{p,q ∈ P} |v(p) − v(q)|`` — the diameter of a player set;
* ``D_opt(p) = min { D(P) : p ∈ P, |P| ≥ n/B }`` — the Definition-1
  benchmark every algorithm is compared against.

Computing ``D_opt(p)`` exactly is itself a combinatorial problem (min-diameter
subsets are NP-hard in general); the paper only ever *generates* instances
whose optimal clusters are known, so we provide

* the exact value for planted instances (via the planted cluster structure),
* a standard 2-approximation usable on arbitrary matrices: the distance from
  ``p`` to its ``⌈n/B⌉``-th nearest neighbour, ``r_k(p)``, satisfies
  ``r_k(p) ≤ D_opt(p) ≤ 2 · r_k(p)`` by the triangle inequality.
"""

from __future__ import annotations

import numpy as np

from repro._typing import CountVector, PreferenceMatrix, PreferenceVector
from repro.errors import ConfigurationError

__all__ = [
    "hamming_distance",
    "distance_matrix",
    "set_diameter",
    "kth_nearest_distance",
    "optimal_diameters",
    "prediction_errors",
]


def hamming_distance(u: PreferenceVector, v: PreferenceVector) -> int:
    """Hamming distance between two binary vectors."""
    u = np.asarray(u)
    v = np.asarray(v)
    if u.shape != v.shape:
        raise ConfigurationError(f"vectors must align: {u.shape} vs {v.shape}")
    return int((u != v).sum())


def distance_matrix(preferences: PreferenceMatrix) -> np.ndarray:
    """All-pairs Hamming distance matrix of shape ``(n, n)``.

    Implemented as a single matrix product over ±1-encoded vectors, which is
    the vectorised way to obtain all pairwise Hamming distances:
    for x, y ∈ {−1, +1}^m we have ``hamming = (m − x·y) / 2``.
    """
    preferences = np.asarray(preferences)
    if preferences.ndim != 2:
        raise ConfigurationError(
            f"preferences must be a 2-D matrix, got shape {preferences.shape}"
        )
    signed = preferences.astype(np.int32) * 2 - 1
    inner = signed @ signed.T
    m = preferences.shape[1]
    distances = (m - inner) // 2
    return distances.astype(np.int64)


def set_diameter(preferences: PreferenceMatrix, members: np.ndarray) -> int:
    """Diameter ``D(P)`` of the player set ``members``."""
    members = np.asarray(members, dtype=np.int64)
    if members.size == 0:
        raise ConfigurationError("cannot compute the diameter of an empty set")
    block = np.asarray(preferences)[members]
    return int(distance_matrix(block).max())


def kth_nearest_distance(preferences: PreferenceMatrix, k: int) -> CountVector:
    """For each player, the Hamming distance to its ``k``-th nearest other player.

    ``k = ⌈n/B⌉ − 1`` gives the radius of the smallest ball around ``p``
    containing ``n/B`` players (including ``p``), the quantity used in the
    2-approximation of ``D_opt``.
    """
    distances = distance_matrix(preferences)
    n = distances.shape[0]
    if not 0 <= k < n:
        raise ConfigurationError(f"k must lie in [0, n); got k={k}, n={n}")
    if k == 0:
        return np.zeros(n, dtype=np.int64)
    # Exclude self-distance by setting the diagonal very large, then take the
    # k-th smallest among the others via partition (O(n^2) total).
    others = distances.copy()
    np.fill_diagonal(others, np.iinfo(np.int64).max)
    part = np.partition(others, k - 1, axis=1)
    return part[:, k - 1].astype(np.int64)


def optimal_diameters(
    preferences: PreferenceMatrix,
    budget: int,
    planted_diameters: np.ndarray | None = None,
) -> np.ndarray:
    """Per-player optimality benchmark ``D_opt(p)`` of Definition 1.

    Parameters
    ----------
    preferences:
        The hidden matrix ``V``.
    budget:
        The budget ``B``; the benchmark ranges over sets of size ``≥ n/B``.
    planted_diameters:
        If the instance was generated with known cluster structure, the exact
        per-player diameters can be passed through and are returned
        unchanged.  Otherwise the k-nearest-neighbour 2-approximation is
        used: ``r_k(p) ≤ D_opt(p) ≤ 2 r_k(p)``; we return ``2 · r_k(p)`` as a
        *valid upper bound* on the benchmark (so approximation ratios computed
        against it are conservative, never flattering).
    """
    preferences = np.asarray(preferences)
    n = preferences.shape[0]
    if budget <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    if planted_diameters is not None:
        planted_diameters = np.asarray(planted_diameters, dtype=np.int64)
        if planted_diameters.shape[0] != n:
            raise ConfigurationError(
                "planted_diameters length must equal the number of players"
            )
        return planted_diameters
    cluster_size = int(np.ceil(n / budget))
    k = max(0, min(n - 1, cluster_size - 1))
    radii = kth_nearest_distance(preferences, k)
    return (2 * radii).astype(np.int64)


def prediction_errors(
    predictions: PreferenceMatrix, truth: PreferenceMatrix
) -> CountVector:
    """Per-player Hamming error ``|w(p) − v(p)|`` of a protocol output."""
    predictions = np.asarray(predictions)
    truth = np.asarray(truth)
    if predictions.shape != truth.shape:
        raise ConfigurationError(
            f"predictions and truth must align: {predictions.shape} vs {truth.shape}"
        )
    return (predictions != truth).sum(axis=1).astype(np.int64)
