"""Instance generators: hidden preference matrices with known structure.

The paper's guarantees are parameterised by the (unknown) correlation
structure of the players' preferences.  To evaluate the protocol we generate
instances where that structure is *planted* and therefore known exactly:

* :func:`zero_radius_instance` — clusters of identical preferences (the
  ZeroRadius setting of Theorem 4);
* :func:`planted_clusters_instance` — clusters of bounded diameter ``D``
  (the general setting of Theorems 5 and 14);
* :func:`mixture_model_instance` — players drawn from a mixture of type
  vectors (the related-work setting of Kleinberg–Sandler, used to test the
  protocol off its home turf);
* :func:`claim2_lower_bound_instance` — the exact adversarial distribution
  used in the proof of Claim 2 (the lower bound);
* :func:`random_instance` — fully independent preferences (collaboration
  cannot help; sanity baseline);
* :func:`heterogeneous_cluster_instance` — clusters of varying sizes and
  diameters (stress test for the clustering step, §8 discussion).

Every generator returns a :class:`PlantedInstance` carrying the matrix, the
planted cluster assignment and per-player diameter bounds usable as the
Definition-1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro._typing import PreferenceMatrix, SeedLike, as_generator
from repro.errors import ConfigurationError

__all__ = [
    "PlantedInstance",
    "zero_radius_instance",
    "planted_clusters_instance",
    "mixture_model_instance",
    "claim2_lower_bound_instance",
    "random_instance",
    "heterogeneous_cluster_instance",
]


@dataclass(frozen=True)
class PlantedInstance:
    """A generated instance with its planted structure.

    Attributes
    ----------
    preferences:
        The hidden matrix ``V`` of shape ``(n_players, n_objects)``.
    cluster_of:
        Planted cluster id per player (``-1`` when no cluster was planted).
    planted_diameters:
        Per-player upper bound on ``D_opt(p)`` implied by the planted
        structure (the diameter of the player's planted cluster), or the
        2-approximation when no structure exists.
    metadata:
        Generator name and parameters, recorded for experiment provenance.
    """

    preferences: PreferenceMatrix
    cluster_of: np.ndarray
    planted_diameters: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def n_players(self) -> int:
        """Number of players."""
        return self.preferences.shape[0]

    @property
    def n_objects(self) -> int:
        """Number of objects."""
        return self.preferences.shape[1]

    def cluster_members(self, cluster_id: int) -> np.ndarray:
        """Indices of players in a planted cluster."""
        return np.flatnonzero(self.cluster_of == cluster_id)

    def n_clusters(self) -> int:
        """Number of planted clusters (0 if none)."""
        ids = self.cluster_of[self.cluster_of >= 0]
        return int(np.unique(ids).size) if ids.size else 0


def _validate_sizes(n_players: int, n_objects: int) -> None:
    if n_players <= 0 or n_objects <= 0:
        raise ConfigurationError(
            f"n_players and n_objects must be positive, got {n_players}, {n_objects}"
        )


def _balanced_cluster_assignment(
    n_players: int, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Assign players to clusters of (near-)equal size, in random order."""
    if n_clusters <= 0 or n_clusters > n_players:
        raise ConfigurationError(
            f"n_clusters must lie in [1, n_players]; got {n_clusters} for {n_players} players"
        )
    base = np.repeat(np.arange(n_clusters), int(np.ceil(n_players / n_clusters)))[:n_players]
    return rng.permutation(base)


def _flip_within_radius(
    center: np.ndarray, radius: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Generate ``count`` vectors within Hamming distance ``radius`` of ``center``.

    Each vector flips a uniformly random subset of exactly
    ``rng.integers(0, radius+1)`` positions, so pairwise distances within the
    resulting set are at most ``2 · radius`` (triangle inequality).
    """
    n_objects = center.shape[0]
    radius = min(radius, n_objects)
    out = np.tile(center, (count, 1))
    if radius == 0 or count == 0:
        return out
    flips_per_row = rng.integers(0, radius + 1, size=count)
    for row, flips in enumerate(flips_per_row):
        if flips == 0:
            continue
        positions = rng.choice(n_objects, size=int(flips), replace=False)
        out[row, positions] ^= 1
    return out


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------
def zero_radius_instance(
    n_players: int,
    n_objects: int,
    n_clusters: int,
    seed: SeedLike = None,
) -> PlantedInstance:
    """Clusters of players with *identical* preferences (diameter 0).

    This is the Theorem-4 setting: at least ``n / n_clusters`` players share
    each preference vector exactly.
    """
    _validate_sizes(n_players, n_objects)
    rng = as_generator(seed)
    assignment = _balanced_cluster_assignment(n_players, n_clusters, rng)
    centers = rng.integers(0, 2, size=(n_clusters, n_objects), dtype=np.uint8)
    preferences = centers[assignment]
    return PlantedInstance(
        preferences=preferences.astype(np.uint8),
        cluster_of=assignment.astype(np.int64),
        planted_diameters=np.zeros(n_players, dtype=np.int64),
        metadata={
            "generator": "zero_radius",
            "n_clusters": int(n_clusters),
        },
    )


def planted_clusters_instance(
    n_players: int,
    n_objects: int,
    n_clusters: int,
    diameter: int,
    seed: SeedLike = None,
) -> PlantedInstance:
    """Clusters of bounded Hamming diameter ``diameter``.

    Each cluster has a random centre; members flip at most ``diameter // 2``
    random positions, so every planted cluster has diameter ``≤ diameter``.
    This is the workload for the main optimality experiments (E5, E6, E8).
    """
    _validate_sizes(n_players, n_objects)
    if diameter < 0 or diameter > n_objects:
        raise ConfigurationError(
            f"diameter must lie in [0, n_objects]; got {diameter} for {n_objects} objects"
        )
    rng = as_generator(seed)
    assignment = _balanced_cluster_assignment(n_players, n_clusters, rng)
    centers = rng.integers(0, 2, size=(n_clusters, n_objects), dtype=np.uint8)
    preferences = np.empty((n_players, n_objects), dtype=np.uint8)
    radius = diameter // 2
    for cluster_id in range(n_clusters):
        members = np.flatnonzero(assignment == cluster_id)
        preferences[members] = _flip_within_radius(
            centers[cluster_id], radius, members.size, rng
        )
    return PlantedInstance(
        preferences=preferences,
        cluster_of=assignment.astype(np.int64),
        planted_diameters=np.full(n_players, int(diameter), dtype=np.int64),
        metadata={
            "generator": "planted_clusters",
            "n_clusters": int(n_clusters),
            "diameter": int(diameter),
        },
    )


def mixture_model_instance(
    n_players: int,
    n_objects: int,
    n_types: int,
    noise: float = 0.05,
    seed: SeedLike = None,
) -> PlantedInstance:
    """Players drawn from a mixture of type vectors with i.i.d. noise.

    Each player picks a type uniformly at random and flips each coordinate of
    the type vector independently with probability ``noise``.  The expected
    pairwise distance within a type is ``2 · noise · (1 − noise) · n_objects``,
    so the planted diameter bound records a high-probability envelope
    (``2 · noise · n_objects + 4 · sqrt(n_objects)``).
    """
    _validate_sizes(n_players, n_objects)
    if not 0.0 <= noise < 0.5:
        raise ConfigurationError(f"noise must lie in [0, 0.5), got {noise}")
    rng = as_generator(seed)
    assignment = _balanced_cluster_assignment(n_players, n_types, rng)
    types = rng.integers(0, 2, size=(n_types, n_objects), dtype=np.uint8)
    preferences = types[assignment]
    flips = rng.random((n_players, n_objects)) < noise
    preferences = preferences ^ flips.astype(np.uint8)
    envelope = int(np.ceil(2 * noise * n_objects + 4 * np.sqrt(n_objects)))
    return PlantedInstance(
        preferences=preferences,
        cluster_of=assignment.astype(np.int64),
        planted_diameters=np.full(n_players, min(envelope, n_objects), dtype=np.int64),
        metadata={
            "generator": "mixture_model",
            "n_types": int(n_types),
            "noise": float(noise),
        },
    )


def claim2_lower_bound_instance(
    n_players: int,
    n_objects: int,
    budget: int,
    diameter: int,
    seed: SeedLike = None,
) -> PlantedInstance:
    """The adversarial distribution from the proof of Claim 2.

    A set ``P`` of ``n/B`` players is chosen; a distinguished player ``p ∈ P``
    gets a random vector; every other member of ``P`` agrees with ``p``
    everywhere except on a special set ``S`` of ``diameter`` objects where its
    preferences are random; players outside ``P`` are fully random.  Claim 2
    shows that *no* B-budget algorithm can predict ``p``'s preferences on
    ``S`` better than guessing, so every algorithm suffers error ``≥ D/4`` in
    expectation for ``p``.

    The metadata records the distinguished player and the special object set
    so the lower-bound experiment (E7) can measure error restricted to ``S``.
    """
    _validate_sizes(n_players, n_objects)
    if budget <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    if not 0 < diameter <= n_objects:
        raise ConfigurationError(
            f"diameter must lie in (0, n_objects]; got {diameter} for {n_objects} objects"
        )
    rng = as_generator(seed)
    cluster_size = max(2, int(np.ceil(n_players / budget)))
    cluster_size = min(cluster_size, n_players)
    members = rng.choice(n_players, size=cluster_size, replace=False)
    distinguished = int(members[0])
    special_objects = rng.choice(n_objects, size=diameter, replace=False)

    preferences = rng.integers(0, 2, size=(n_players, n_objects), dtype=np.uint8)
    # Members of P (other than the distinguished player) copy p everywhere
    # except on the special set, where they stay random.
    base = preferences[distinguished].copy()
    for member in members[1:]:
        row = base.copy()
        row[special_objects] = rng.integers(0, 2, size=diameter, dtype=np.uint8)
        preferences[member] = row

    cluster_of = np.full(n_players, -1, dtype=np.int64)
    cluster_of[members] = 0
    planted = np.full(n_players, n_objects, dtype=np.int64)
    planted[members] = int(diameter)
    return PlantedInstance(
        preferences=preferences,
        cluster_of=cluster_of,
        planted_diameters=planted,
        metadata={
            "generator": "claim2_lower_bound",
            "budget": int(budget),
            "diameter": int(diameter),
            "distinguished_player": distinguished,
            "cluster_members": members.astype(int).tolist(),
            "special_objects": special_objects.astype(int).tolist(),
        },
    )


def random_instance(
    n_players: int,
    n_objects: int,
    seed: SeedLike = None,
) -> PlantedInstance:
    """Fully independent uniform preferences (no exploitable correlation)."""
    _validate_sizes(n_players, n_objects)
    rng = as_generator(seed)
    preferences = rng.integers(0, 2, size=(n_players, n_objects), dtype=np.uint8)
    return PlantedInstance(
        preferences=preferences,
        cluster_of=np.full(n_players, -1, dtype=np.int64),
        planted_diameters=np.full(n_players, n_objects, dtype=np.int64),
        metadata={"generator": "random"},
    )


def heterogeneous_cluster_instance(
    n_players: int,
    n_objects: int,
    cluster_sizes: list[int],
    cluster_diameters: list[int],
    seed: SeedLike = None,
) -> PlantedInstance:
    """Clusters of explicitly given sizes and diameters.

    Stress test for the clustering step: sizes need not be equal and
    diameters may differ per cluster, matching the §8 discussion of
    heterogeneous budgets / cluster structure.  ``sum(cluster_sizes)`` must
    equal ``n_players``.
    """
    _validate_sizes(n_players, n_objects)
    if len(cluster_sizes) != len(cluster_diameters):
        raise ConfigurationError("cluster_sizes and cluster_diameters must align")
    if sum(cluster_sizes) != n_players:
        raise ConfigurationError(
            f"cluster sizes must sum to n_players={n_players}, got {sum(cluster_sizes)}"
        )
    if any(size <= 0 for size in cluster_sizes):
        raise ConfigurationError("every cluster size must be positive")
    if any(d < 0 or d > n_objects for d in cluster_diameters):
        raise ConfigurationError("every cluster diameter must lie in [0, n_objects]")
    rng = as_generator(seed)
    order = rng.permutation(n_players)
    preferences = np.empty((n_players, n_objects), dtype=np.uint8)
    cluster_of = np.empty(n_players, dtype=np.int64)
    planted = np.empty(n_players, dtype=np.int64)
    cursor = 0
    for cluster_id, (size, diameter) in enumerate(zip(cluster_sizes, cluster_diameters)):
        members = order[cursor : cursor + size]
        cursor += size
        center = rng.integers(0, 2, size=n_objects, dtype=np.uint8)
        preferences[members] = _flip_within_radius(center, diameter // 2, size, rng)
        cluster_of[members] = cluster_id
        planted[members] = diameter
    return PlantedInstance(
        preferences=preferences,
        cluster_of=cluster_of,
        planted_diameters=planted,
        metadata={
            "generator": "heterogeneous_clusters",
            "cluster_sizes": [int(s) for s in cluster_sizes],
            "cluster_diameters": [int(d) for d in cluster_diameters],
        },
    )
