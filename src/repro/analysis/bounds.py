"""Closed-form bound formulas from the paper's theorems and lemmas.

These are the asymptotic expressions with the constants taken from a
:class:`~repro.simulation.config.ProtocolConstants` profile, so experiment
tables can print *measured vs predicted* side by side.  They are formulas,
not guarantees: at laptop scale the measured values routinely sit below the
paper-profile predictions (the constants are loose) and the point of the
experiments is that the *shape* (dependence on ``n``, ``B``, ``D``) matches.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.simulation.config import ProtocolConstants

__all__ = [
    "rselect_probe_bound",
    "zero_radius_probe_bound",
    "small_radius_probe_bound",
    "small_radius_error_bound",
    "calculate_preferences_probe_bound",
    "lower_bound_error",
]


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")


def rselect_probe_bound(n: int, k: int, constants: ProtocolConstants | None = None) -> float:
    """Theorem 3: RSelect uses ``O(k² log n)`` probes."""
    _check_positive(n=n, k=k)
    constants = constants or ProtocolConstants.paper()
    return constants.rselect_sample_factor * k * k * constants.log_n(n)


def zero_radius_probe_bound(
    n: int, budget_prime: float, constants: ProtocolConstants | None = None
) -> float:
    """Theorem 4: ZeroRadius uses ``O(B' log n)`` probes per player."""
    _check_positive(n=n, budget_prime=budget_prime)
    constants = constants or ProtocolConstants.paper()
    return constants.zero_radius_base_factor * budget_prime * constants.log_n(n)


def small_radius_probe_bound(
    n: int, budget: float, diameter: float, constants: ProtocolConstants | None = None
) -> float:
    """Theorem 5: SmallRadius uses ``O(B · D^{3/2} (D + log n))`` probes."""
    _check_positive(n=n, budget=budget, diameter=diameter)
    constants = constants or ProtocolConstants.paper()
    log_n = constants.log_n(n)
    return budget * (diameter ** 1.5) * (diameter + log_n)


def small_radius_error_bound(diameter: float) -> float:
    """Theorem 5: SmallRadius error is at most ``5 D``."""
    _check_positive(diameter=diameter)
    return 5.0 * diameter


def calculate_preferences_probe_bound(
    n: int, budget: float, constants: ProtocolConstants | None = None
) -> float:
    """Lemma 11: CalculatePreferences uses ``O(B log^{3.5} n)`` probes per
    player per diameter guess, times the ``O(log n)`` guesses, plus the final
    RSelect's ``O(log³ n)``."""
    _check_positive(n=n, budget=budget)
    constants = constants or ProtocolConstants.paper()
    log_n = constants.log_n(n)
    per_iteration = budget * log_n ** 3.5
    iterations = math.ceil(math.log2(max(2, n))) + 1
    final_rselect = log_n ** 3
    return per_iteration * iterations + final_rselect


def lower_bound_error(diameter: float) -> float:
    """Claim 2: no B-budget algorithm beats expected error ``D / 4`` on the
    adversarial distribution."""
    _check_positive(diameter=diameter)
    return diameter / 4.0
