"""Experiment E7: the Claim-2 lower bound, measured.

Claim 2 exhibits a distribution of preferences on which *no* B-budget
algorithm can achieve expected error below ``D/4`` for a distinguished
player: the distinguished player's cluster agrees with it everywhere except
on a hidden special set ``S`` of ``D`` objects, where everyone is
independent, so probes by others reveal nothing about ``S`` and the player's
own ``B`` probes cover only a sliver of it.

The driver runs any supplied algorithms on freshly drawn Claim-2 instances
and reports, for the distinguished player, the error restricted to the
special set — which should hover around ``D/2`` (random guessing on the
unprobed part of ``S``), satisfying the ``≥ D/4`` bound — and the total
error, which for the paper's protocol stays ``O(D)`` (matching the upper
bound, i.e. the protocol is optimal on the worst-case instance too).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro._typing import SeedLike, spawn_generators
from repro.analysis.bounds import lower_bound_error
from repro.analysis.reporting import ExperimentTable
from repro.core.calculate_preferences import calculate_preferences
from repro.errors import ExperimentError
from repro.preferences.generators import claim2_lower_bound_instance
from repro.protocols.context import ProtocolContext, make_context
from repro.simulation.config import ProtocolConstants

__all__ = ["lower_bound_experiment"]

AlgorithmFn = Callable[[ProtocolContext], np.ndarray]


def _default_algorithms() -> dict[str, AlgorithmFn]:
    from repro.baselines.naive import random_guessing, solo_probing

    return {
        "calculate-preferences": lambda ctx: calculate_preferences(ctx).predictions,
        "solo-probing": lambda ctx: solo_probing(ctx, seed=0),
        "random-guessing": lambda ctx: random_guessing(ctx, seed=0),
    }


def lower_bound_experiment(
    n_players: int = 128,
    n_objects: int = 128,
    budget: int = 8,
    diameter: int = 32,
    trials: int = 5,
    algorithms: dict[str, AlgorithmFn] | None = None,
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
) -> ExperimentTable:
    """Run the Claim-2 experiment and tabulate per-algorithm errors.

    Columns: the algorithm, its mean error on the special set ``S`` for the
    distinguished player (lower-bounded by ``D/4`` for every algorithm), its
    mean total error for that player, and the Claim-2 bound ``D/4``.
    """
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    constants = constants or ProtocolConstants.practical()
    algorithms = algorithms or _default_algorithms()
    rngs = spawn_generators(seed, trials)

    special_errors: dict[str, list[float]] = {name: [] for name in algorithms}
    total_errors: dict[str, list[float]] = {name: [] for name in algorithms}

    for trial, rng in enumerate(rngs):
        instance = claim2_lower_bound_instance(
            n_players, n_objects, budget, diameter, seed=rng
        )
        distinguished = int(instance.metadata["distinguished_player"])
        special = np.asarray(instance.metadata["special_objects"], dtype=np.int64)
        for name, algorithm in algorithms.items():
            ctx = make_context(instance, budget=budget, constants=constants, seed=trial)
            predictions = algorithm(ctx)
            truth = ctx.oracle.ground_truth()
            row_pred = predictions[distinguished]
            row_true = truth[distinguished]
            special_errors[name].append(float((row_pred[special] != row_true[special]).sum()))
            total_errors[name].append(float((row_pred != row_true).sum()))

    table = ExperimentTable(
        experiment_id="E7",
        title="Claim 2 lower bound: error of the distinguished player",
        columns=[
            "algorithm",
            "mean_error_on_S",
            "mean_total_error",
            "claim2_bound_D_over_4",
            "diameter_D",
        ],
        notes=[
            "Claim 2: every B-budget algorithm suffers expected error >= D/4 on "
            "the special set S of the adversarial distribution.",
            "Strictly-B-budget algorithms (solo probing, random guessing) must sit "
            "above the bound; CalculatePreferences spends the paper's augmented "
            "B·polylog(n) budget, which is exactly how it escapes the lower bound "
            "(resource augmentation, §3).",
            f"{trials} trials; n={n_players}, objects={n_objects}, B={budget}, D={diameter}.",
        ],
    )
    bound = lower_bound_error(diameter)
    for name in algorithms:
        table.add_row(
            algorithm=name,
            mean_error_on_S=float(np.mean(special_errors[name])),
            mean_total_error=float(np.mean(total_errors[name])),
            claim2_bound_D_over_4=bound,
            diameter_D=float(diameter),
        )
    return table
