"""Experiment drivers E1–E12 (see DESIGN.md §4 for the index).

Each function builds the workload a paper claim quantifies over, runs the
relevant protocol(s) against the probe-counting simulator, and returns an
:class:`~repro.analysis.reporting.ExperimentTable`.  Benchmarks call these
drivers (one per table/figure analogue) and print the rendered table;
EXPERIMENTS.md records representative outputs.

All drivers are deterministic given their ``seed`` and accept size parameters
so the same code scales from quick unit-test settings to the benchmark
settings.  Every driver with independent points accepts ``n_workers`` and
fans them through :func:`repro.analysis.runner.run_trials` (identical output
for any worker count).

E5, E6 and E11 build their workloads through the declarative scenario engine
(:mod:`repro.scenarios`): each point is a :class:`~repro.scenarios.ScenarioSpec`
executed by :func:`~repro.scenarios.engine.run_scenario`, so the same workload
definitions are reachable from the drivers, the sweep engine and the
``python -m repro`` CLI.
"""

from __future__ import annotations

import math
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro._typing import SeedLike, as_generator, spawn_generators
from repro.analysis.bounds import (
    calculate_preferences_probe_bound,
    rselect_probe_bound,
    small_radius_error_bound,
    small_radius_probe_bound,
    zero_radius_probe_bound,
)
from repro.analysis.reporting import ExperimentTable
from repro.analysis.runner import run_trials, spawn_seeds
from repro.baselines.alon import alon_awerbuch_azar_patt_shamir
from repro.core.calculate_preferences import (
    calculate_preferences,
    efficient_diameter_schedule,
)
from repro.core.sampling import sample_disagreements, select_sample_set
from repro.errors import ExperimentError
from repro.leader.feige import feige_leader_election
from repro.preferences.generators import planted_clusters_instance, zero_radius_instance
from repro.preferences.metrics import optimal_diameters, prediction_errors
from repro.protocols.context import make_context
from repro.protocols.rselect import rselect
from repro.protocols.small_radius import small_radius
from repro.protocols.zero_radius import zero_radius
from repro.scenarios.engine import execute, run_scenario
from repro.scenarios.spec import (
    CoalitionSpec,
    PopulationSpec,
    ProtocolSpec,
    ScenarioSpec,
)
from repro.simulation.config import ProtocolConstants

__all__ = [
    "rselect_experiment",
    "zero_radius_experiment",
    "small_radius_experiment",
    "sampling_concentration_experiment",
    "honest_protocol_experiment",
    "dishonest_sweep_experiment",
    "baseline_comparison_experiment",
    "leader_election_experiment",
    "scaling_experiment",
    "heterogeneous_budget_experiment",
    "ablation_experiment",
]


# ---------------------------------------------------------------------------
# E1 — RSelect (Theorem 3)
# ---------------------------------------------------------------------------
def _rselect_point(
    k: int,
    trial: int,
    truth: np.ndarray,
    candidates: np.ndarray,
    constants: ProtocolConstants,
) -> dict:
    """One E1 (k, trial) execution (module-level so the trial engine can
    pickle it).

    The driver generates the candidate sets serially (cheap, and bit-exactly
    as the pre-engine serial loop did); only the RSelect execution — the
    expensive part — fans out, with the context reseeded from ``trial`` as
    before, so rows are identical for any worker count.
    """
    from repro.preferences.generators import PlantedInstance

    instance = PlantedInstance(
        preferences=truth,
        cluster_of=np.zeros(1, dtype=np.int64),
        planted_diameters=np.zeros(1, dtype=np.int64),
        metadata={"generator": "rselect-experiment"},
    )
    vector = truth[0]
    ctx = make_context(instance, budget=8, constants=constants, seed=trial)
    _, chosen = rselect(ctx, 0, np.arange(vector.size), candidates)
    return dict(
        k=k,
        chosen_distance=float((chosen != vector).sum()),
        probe_requests=float(ctx.oracle.requests_used()[0]),
    )


def rselect_experiment(
    n_objects: int = 256,
    candidate_counts: tuple[int, ...] = (2, 4, 8, 16),
    best_distance: int = 4,
    decoy_distance: int = 64,
    trials: int = 5,
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
    n_workers: int = 1,
) -> ExperimentTable:
    """E1: RSelect picks a near-best candidate with ``O(k² log n)`` probes.

    One player faces ``k`` candidates: one at Hamming distance
    ``best_distance`` from its true vector and ``k−1`` decoys at
    ``decoy_distance``.  We report the distance of the chosen candidate and
    the probe requests spent, next to the Theorem-3 bound.  ``n_workers > 1``
    fans the (k, trial) pairs across the trial engine (identical output for
    any worker count).
    """
    constants = constants or ProtocolConstants.practical()
    table = ExperimentTable(
        experiment_id="E1",
        title="RSelect: chosen-candidate distance and probe cost vs k (Theorem 3)",
        columns=[
            "k",
            "best_distance",
            "mean_chosen_distance",
            "max_chosen_distance",
            "mean_probe_requests",
            "theorem3_probe_bound",
        ],
        notes=[
            "Theorem 3: output within O(best distance) using O(k^2 log n) probes.",
            f"{trials} trials per k; n_objects={n_objects}.",
        ],
    )
    rngs = spawn_generators(seed, trials)
    points = []
    for k in candidate_counts:
        if k < 2:
            raise ExperimentError("candidate_counts entries must be >= 2")
        for trial, rng in enumerate(rngs):
            truth = rng.integers(0, 2, size=(1, n_objects), dtype=np.uint8)
            vector = truth[0]
            candidates = np.empty((k, n_objects), dtype=np.uint8)
            best = vector.copy()
            best[rng.choice(n_objects, size=best_distance, replace=False)] ^= 1
            candidates[0] = best
            for j in range(1, k):
                decoy = vector.copy()
                decoy[rng.choice(n_objects, size=decoy_distance, replace=False)] ^= 1
                candidates[j] = decoy
            order = rng.permutation(k)
            candidates = candidates[order]
            points.append((k, trial, truth, candidates, constants))
    results = run_trials(_rselect_point, points, n_workers=n_workers)
    for k in candidate_counts:
        rows = [row for row in results if row["k"] == k]
        chosen_distances = [row["chosen_distance"] for row in rows]
        probe_requests = [row["probe_requests"] for row in rows]
        table.add_row(
            k=k,
            best_distance=best_distance,
            mean_chosen_distance=float(np.mean(chosen_distances)),
            max_chosen_distance=float(np.max(chosen_distances)),
            mean_probe_requests=float(np.mean(probe_requests)),
            theorem3_probe_bound=rselect_probe_bound(n_objects, k, constants),
        )
    return table


# ---------------------------------------------------------------------------
# E2 — ZeroRadius (Theorem 4)
# ---------------------------------------------------------------------------
def zero_radius_experiment(
    n_players: int = 256,
    n_objects: int = 256,
    budgets: tuple[int, ...] = (4, 8, 16),
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
) -> ExperimentTable:
    """E2: ZeroRadius recovers identical-preference clusters exactly.

    For each budget ``B'`` we plant ``B'`` identical-preference clusters of
    size ``n/B'`` and report the worst honest error (Theorem 4 predicts 0)
    and the probe requests next to the ``O(B' log n)`` bound.
    """
    constants = constants or ProtocolConstants.practical()
    table = ExperimentTable(
        experiment_id="E2",
        title="ZeroRadius: error and probes on identical-preference clusters (Theorem 4)",
        columns=[
            "budget_Bprime",
            "cluster_size",
            "max_error",
            "mean_error",
            "max_probe_requests",
            "theorem4_probe_bound",
        ],
        notes=["Theorem 4: exact recovery with O(B' log n) probes."],
    )
    for index, budget in enumerate(budgets):
        instance = zero_radius_instance(
            n_players, n_objects, n_clusters=budget, seed=(seed, index)
        )
        ctx = make_context(instance, budget=budget, constants=constants, seed=index)
        estimates = zero_radius(
            ctx, ctx.all_players(), ctx.all_objects(), budget_prime=budget
        )
        errors = prediction_errors(estimates, ctx.oracle.ground_truth())
        table.add_row(
            budget_Bprime=budget,
            cluster_size=int(math.ceil(n_players / budget)),
            max_error=int(errors.max()),
            mean_error=float(errors.mean()),
            max_probe_requests=int(ctx.oracle.max_requests()),
            theorem4_probe_bound=zero_radius_probe_bound(n_players, budget, constants),
        )
    return table


# ---------------------------------------------------------------------------
# E3 — SmallRadius (Theorem 5)
# ---------------------------------------------------------------------------
def small_radius_experiment(
    n_players: int = 256,
    n_objects: int = 256,
    budget: int = 8,
    diameters: tuple[int, ...] = (2, 4, 8, 16),
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
) -> ExperimentTable:
    """E3: SmallRadius error stays within ``5D`` for small-diameter clusters."""
    constants = constants or ProtocolConstants.practical()
    table = ExperimentTable(
        experiment_id="E3",
        title="SmallRadius: error vs promised diameter D (Theorem 5)",
        columns=[
            "diameter_D",
            "max_error",
            "mean_error",
            "error_bound_5D",
            "max_probe_requests",
            "theorem5_probe_bound",
        ],
        notes=["Theorem 5: error <= 5D with O(B D^1.5 (D + log n)) probes."],
    )
    for index, diameter in enumerate(diameters):
        instance = planted_clusters_instance(
            n_players,
            n_objects,
            n_clusters=budget,
            diameter=diameter,
            seed=(seed, index),
        )
        ctx = make_context(instance, budget=budget, constants=constants, seed=index)
        estimates = small_radius(
            ctx, ctx.all_players(), ctx.all_objects(), diameter=diameter, budget=budget
        )
        errors = prediction_errors(estimates, ctx.oracle.ground_truth())
        table.add_row(
            diameter_D=diameter,
            max_error=int(errors.max()),
            mean_error=float(errors.mean()),
            error_bound_5D=small_radius_error_bound(diameter),
            max_probe_requests=int(ctx.oracle.max_requests()),
            theorem5_probe_bound=small_radius_probe_bound(
                n_players, budget, diameter, constants
            ),
        )
    return table


# ---------------------------------------------------------------------------
# E4 — Sample-set concentration (Lemma 6)
# ---------------------------------------------------------------------------
def _sampling_point(
    trial: int,
    n_players: int,
    n_objects: int,
    budget: int,
    diameter: int,
    constants: ProtocolConstants,
    seed: SeedLike,
) -> dict:
    """One E4 trial (module-level so the trial engine can pickle it).

    Seeded exactly as the serial loop seeded it — instance from
    ``(seed, trial)``, context from ``trial`` — so rows are identical for
    any worker count.
    """
    instance = planted_clusters_instance(
        n_players,
        n_objects,
        n_clusters=budget,
        diameter=diameter,
        seed=(seed, trial),
    )
    ctx = make_context(instance, budget=budget, constants=constants, seed=trial)
    sample = select_sample_set(ctx, diameter)
    disagreements = sample_disagreements(instance.preferences, sample)
    same_cluster = instance.cluster_of[:, None] == instance.cluster_of[None, :]
    np.fill_diagonal(same_cluster, False)
    different_cluster = ~same_cluster
    np.fill_diagonal(different_cluster, False)
    return dict(
        trial=trial,
        sample_size=int(sample.size),
        max_disagreement_close_pairs=int(disagreements[same_cluster].max()),
        close_pair_bound=float(constants.sample_agreement_bound(n_players)),
        min_disagreement_far_pairs=int(disagreements[different_cluster].min()),
        edge_threshold=float(constants.edge_threshold(n_players)),
    )


def sampling_concentration_experiment(
    n_players: int = 256,
    n_objects: int = 512,
    budget: int = 8,
    diameter: int = 64,
    trials: int = 5,
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
    n_workers: int = 1,
) -> ExperimentTable:
    """E4: close pairs stay close and far pairs stay far on the sample.

    Lemma 6: pairs at distance < D differ on at most ``2c·ln n`` sampled
    objects; pairs at distance ≥ separation·D differ on proportionally more.
    We report the observed maxima/minima over planted instances.
    ``n_workers > 1`` fans the trials across the trial engine (identical
    output for any worker count).
    """
    constants = constants or ProtocolConstants.practical()
    table = ExperimentTable(
        experiment_id="E4",
        title="Sample-set similarity preservation (Lemma 6)",
        columns=[
            "trial",
            "sample_size",
            "max_disagreement_close_pairs",
            "close_pair_bound",
            "min_disagreement_far_pairs",
            "edge_threshold",
        ],
        notes=[
            "Close pairs: same planted cluster (true distance <= D). Far pairs: "
            "different clusters (true distance >= separation * D for the planted "
            "instances used).",
        ],
    )
    points = [
        (trial, n_players, n_objects, budget, diameter, constants, seed)
        for trial in range(trials)
    ]
    for row in run_trials(_sampling_point, points, n_workers=n_workers):
        table.add_row(**row)
    return table


# ---------------------------------------------------------------------------
# E5 — Honest protocol vs baselines (Lemmas 9–12)
# ---------------------------------------------------------------------------
def _planted_scenario(
    name: str,
    protocol: str,
    n_players: int,
    n_objects: int,
    budget: int,
    diameter: int,
    constants: ProtocolConstants,
    coalitions: tuple[CoalitionSpec, ...] = (),
    robust_iterations: int | None = None,
) -> ScenarioSpec:
    """The planted-cluster workload of E5/E6 as a scenario spec.

    ``constants`` is folded into the spec as a full override set, so any
    constants object a driver receives round-trips through the declarative
    layer exactly.
    """
    return ScenarioSpec(
        name=name,
        description=f"driver-built planted workload ({name})",
        population=PopulationSpec(
            n_players=n_players,
            n_objects=n_objects,
            generator="planted",
            params={"n_clusters": budget, "diameter": diameter},
        ),
        protocol=ProtocolSpec(
            name=protocol,
            budget=budget,
            constants_overrides=asdict(constants),
            robust_iterations=robust_iterations,
        ),
        coalitions=coalitions,
    )


#: E5 display name -> scenario-engine protocol name; the single source of
#: truth for which algorithms E5 compares.
_E5_ALGORITHMS: dict[str, str] = {
    "calculate-preferences": "calculate-preferences",
    "oracle-clustering (skyline)": "oracle-clustering",
    "solo-probing": "solo-probing",
    "global-majority": "global-majority",
    "random-guessing": "random-guessing",
}


def _honest_protocol_point(
    name: str,
    n_players: int,
    n_objects: int,
    budget: int,
    diameter: int,
    constants: ProtocolConstants,
    seed: SeedLike,
) -> dict:
    """One E5 algorithm run (module-level so the trial engine can pickle it).

    Builds the workload through the scenario engine: the spec differs only in
    its protocol field across algorithms, and the engine derives the instance
    stream independently of the protocol, so every algorithm — on any worker
    — scores the same hidden preferences.
    """
    spec = _planted_scenario(
        f"e5-{_E5_ALGORITHMS[name]}",
        _E5_ALGORITHMS[name],
        n_players,
        n_objects,
        budget,
        diameter,
        constants,
    )
    row = run_scenario(spec, seed)
    bound = calculate_preferences_probe_bound(n_players, budget, constants)
    return dict(
        algorithm=name,
        max_error=row["max_error"],
        mean_error=row["honest_mean_error"],
        planted_D=float(diameter),
        max_probes=row["max_probes"],
        max_probe_requests=row["max_probe_requests"],
        lemma11_probe_bound=bound if name == "calculate-preferences" else None,
    )


def honest_protocol_experiment(
    n_players: int = 256,
    n_objects: int = 256,
    budget: int = 4,
    diameter: int = 48,
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
    n_workers: int = 1,
) -> ExperimentTable:
    """E5: the honest protocol's error is O(D) while probing a polylog·B share.

    Compares CalculatePreferences against solo probing, global majority,
    random guessing, the oracle-clustering skyline and probe-everything on a
    planted-cluster instance.  ``n_workers > 1`` fans the algorithms across
    the trial engine (identical output for any worker count).
    """
    constants = constants or ProtocolConstants.practical()

    table = ExperimentTable(
        experiment_id="E5",
        title="Honest protocol vs baselines (Lemmas 9-12)",
        columns=[
            "algorithm",
            "max_error",
            "mean_error",
            "planted_D",
            "max_probes",
            "max_probe_requests",
            "lemma11_probe_bound",
        ],
        notes=[
            f"n={n_players}, objects={n_objects}, B={budget}, planted diameter D={diameter}.",
            "The oracle-clustering skyline uses the hidden distance matrix and is "
            "unachievable by any real protocol (Definition 1 benchmark).",
        ],
    )
    points = [
        (name, n_players, n_objects, budget, diameter, constants, seed)
        for name in _E5_ALGORITHMS
    ]
    for row in run_trials(_honest_protocol_point, points, n_workers=n_workers):
        table.add_row(**row)
    return table


# ---------------------------------------------------------------------------
# E6 — Dishonest players (Lemma 13, Theorem 14)
# ---------------------------------------------------------------------------
def _dishonest_sweep_point(
    fraction: float,
    index: int,
    n_players: int,
    n_objects: int,
    budget: int,
    diameter: int,
    strategy: str,
    robust_iterations: int,
    constants: ProtocolConstants,
    seed: SeedLike,
) -> dict:
    """One E6 coalition size (module-level so the trial engine can pickle it).

    Both runs go through the scenario engine with the same ``(seed, index)``
    root: the engine derives the instance and coalition streams independently
    of the protocol field, so the robust protocol and the non-robust Alon
    baseline face the *identical* instance and coalition — and the row is
    identical for any worker count.
    """
    coalitions = (
        CoalitionSpec(
            strategy=strategy, fraction_of_tolerance=float(fraction), victim_cluster=0
        ),
    )
    robust_spec = _planted_scenario(
        f"e6-robust-{strategy}",
        "robust",
        n_players,
        n_objects,
        budget,
        diameter,
        constants,
        coalitions=coalitions,
        robust_iterations=robust_iterations,
    )
    point_seed = (seed, index)
    robust_row = run_scenario(robust_spec, point_seed)

    baseline_spec = _planted_scenario(
        f"e6-alon-{strategy}",
        "alon",
        n_players,
        n_objects,
        budget,
        diameter,
        constants,
        coalitions=coalitions,
    )
    baseline_row = run_scenario(baseline_spec, point_seed)

    return dict(
        coalition_size=robust_row["n_dishonest"],
        fraction_of_tolerance=float(fraction),
        strategy=strategy,
        robust_max_error=robust_row["honest_max_error"],
        robust_mean_error=robust_row["honest_mean_error"],
        nonrobust_baseline_max_error=baseline_row["honest_max_error"],
        honest_leader_iterations=robust_row["honest_leader_iterations"],
        planted_D=float(diameter),
    )


def dishonest_sweep_experiment(
    n_players: int = 256,
    n_objects: int = 256,
    budget: int = 4,
    diameter: int = 48,
    fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    strategy: str = "strange",
    robust_iterations: int = 3,
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
    n_workers: int = 1,
) -> ExperimentTable:
    """E6: error of honest players as the dishonest coalition grows.

    ``fractions`` are fractions of the paper's tolerance ``n/(3B)``; for each
    we run the robust protocol and the non-robust Alon et al. baseline under
    the same coalition and report the worst honest-player error.
    ``n_workers > 1`` fans the coalition sizes across the trial engine
    (identical output for any worker count).
    """
    constants = constants or ProtocolConstants.practical()
    tolerance = constants.max_dishonest(n_players, budget)

    table = ExperimentTable(
        experiment_id="E6",
        title="Error of honest players vs dishonest-coalition size (Lemma 13 / Theorem 14)",
        columns=[
            "coalition_size",
            "fraction_of_tolerance",
            "strategy",
            "robust_max_error",
            "robust_mean_error",
            "nonrobust_baseline_max_error",
            "honest_leader_iterations",
            "planted_D",
        ],
        notes=[
            f"Tolerance n/(3B) = {tolerance} dishonest players at n={n_players}, B={budget}.",
            "robust = CalculatePreferences wrapped in leader election and RSelect (§7); "
            "nonrobust baseline = Alon et al. [2,3] under the same coalition.",
            f"Coalition strategy: {strategy} (see repro.players.adversaries).",
        ],
    )
    points = [
        (
            fraction,
            index,
            n_players,
            n_objects,
            budget,
            diameter,
            strategy,
            robust_iterations,
            constants,
            seed,
        )
        for index, fraction in enumerate(fractions)
    ]
    for row in run_trials(_dishonest_sweep_point, points, n_workers=n_workers):
        table.add_row(**row)
    return table


# ---------------------------------------------------------------------------
# E8 — Comparison against the Alon et al. baseline
# ---------------------------------------------------------------------------
def baseline_comparison_experiment(
    n_players: int = 256,
    n_objects: int = 256,
    budget: int = 4,
    diameter: int = 48,
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
) -> ExperimentTable:
    """E8: probes and error, CalculatePreferences vs Alon et al. [2,3].

    The paper's claim: the new protocol needs ``O(B polylog n)`` probes and a
    constant-factor approximation, versus ``O(B² polylog n)`` probes and a
    ``B``-approximation for the prior state of the art.
    """
    constants = constants or ProtocolConstants.practical()
    instance = planted_clusters_instance(
        n_players, n_objects, n_clusters=budget, diameter=diameter, seed=seed
    )
    schedule = efficient_diameter_schedule(n_players, n_objects, constants)

    table = ExperimentTable(
        experiment_id="E8",
        title="CalculatePreferences vs Alon et al. [2,3]: probes and error",
        columns=[
            "algorithm",
            "max_error",
            "mean_error",
            "max_probes",
            "max_probe_requests",
            "mean_probe_requests",
            "planted_D",
        ],
        notes=[
            f"n={n_players}, objects={n_objects}, B={budget}, planted D={diameter}; "
            "identical diameter schedules for both algorithms.",
            "Paper claim: B polylog n probes / constant-factor error (ours) vs "
            "B^2 polylog n probes / B-approximation ([2,3]).",
        ],
    )
    runs = {
        "calculate-preferences": lambda ctx: calculate_preferences(
            ctx, diameters=schedule
        ).predictions,
        "alon-awerbuch-azar-patt-shamir": lambda ctx: alon_awerbuch_azar_patt_shamir(
            ctx, diameters=schedule
        ).predictions,
    }
    for name, run in runs.items():
        ctx = make_context(instance, budget=budget, constants=constants, seed=seed)
        predictions = run(ctx)
        errors = prediction_errors(predictions, ctx.oracle.ground_truth())
        requests = ctx.oracle.requests_used()
        table.add_row(
            algorithm=name,
            max_error=int(errors.max()),
            mean_error=float(errors.mean()),
            max_probes=int(ctx.oracle.max_probes()),
            max_probe_requests=int(requests.max()),
            mean_probe_requests=float(requests.mean()),
            planted_D=float(diameter),
        )
    return table


# ---------------------------------------------------------------------------
# E9 — Leader election (§7.1)
# ---------------------------------------------------------------------------
def _leader_election_point(
    fraction: float, point_seed: int, n_players: int, trials: int
) -> dict:
    """One E9 dishonest fraction (module-level so the trial engine can
    pickle it).  ``point_seed`` comes from the driver's per-fraction seed
    stream, so the row is identical for any worker count."""
    rng = as_generator(point_seed)
    n_dishonest = int(round(fraction * n_players))
    honest_wins = 0
    rounds = []
    for _ in range(trials):
        dishonest = rng.choice(n_players, size=n_dishonest, replace=False)
        result = feige_leader_election(
            n_players, dishonest=dishonest, seed=int(rng.integers(0, 2**63 - 1))
        )
        honest_wins += int(result.leader_is_honest)
        rounds.append(result.rounds)
    return dict(
        dishonest_fraction=float(fraction),
        dishonest_players=n_dishonest,
        p_honest_leader=honest_wins / trials,
        honest_fraction_baseline=1.0 - fraction,
        mean_rounds=float(np.mean(rounds)) if rounds else 0.0,
    )


def leader_election_experiment(
    n_players: int = 256,
    fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.45),
    trials: int = 200,
    seed: SeedLike = 0,
    n_workers: int = 1,
) -> ExperimentTable:
    """E9: empirical probability of electing an honest leader.

    Feige's protocol guarantees an honest leader with probability
    ``Ω(δ^1.65)`` when a ``(1+δ)/2`` fraction is honest; the rushing-greedy
    coalition implemented here is the strongest attack the full-information
    model admits.  ``n_workers > 1`` fans the fractions across the trial
    engine (identical output for any worker count).
    """
    table = ExperimentTable(
        experiment_id="E9",
        title="Feige lightest-bin election: P[honest leader] vs dishonest fraction",
        columns=[
            "dishonest_fraction",
            "dishonest_players",
            "p_honest_leader",
            "honest_fraction_baseline",
            "mean_rounds",
        ],
        notes=[
            f"{trials} elections per point, n={n_players}; coalition uses a rushing "
            "greedy bin-stuffing strategy.",
            "honest_fraction_baseline = probability of an honest leader if one were "
            "picked uniformly at random (what the election must not fall below).",
        ],
    )
    point_seeds = spawn_seeds(seed, len(fractions))
    points = [
        (fraction, point_seeds[index], n_players, trials)
        for index, fraction in enumerate(fractions)
    ]
    for row in run_trials(_leader_election_point, points, n_workers=n_workers):
        table.add_row(**row)
    return table


# ---------------------------------------------------------------------------
# E10 — Probe-complexity scaling (Lemma 11)
# ---------------------------------------------------------------------------
def _scaling_point(
    n: int,
    index: int,
    budget: int,
    objects_per_player: int,
    constants: ProtocolConstants,
    seed: SeedLike,
) -> dict:
    """One E10 instance size (module-level so the trial engine can pickle it)."""
    n_objects = objects_per_player * n
    diameter = max(4, n // 4)
    instance = planted_clusters_instance(
        n, n_objects, n_clusters=budget, diameter=diameter, seed=(seed, index)
    )
    ctx = make_context(instance, budget=budget, constants=constants, seed=index)
    schedule = efficient_diameter_schedule(n, n_objects, constants)
    result = calculate_preferences(ctx, diameters=schedule)
    errors = prediction_errors(result.predictions, ctx.oracle.ground_truth())
    return dict(
        n=n,
        n_objects=n_objects,
        planted_D=diameter,
        max_probes=int(ctx.oracle.max_probes()),
        max_probe_requests=int(ctx.oracle.max_requests()),
        probe_everything_cost=n_objects,
        lemma11_bound_Bpolylog=calculate_preferences_probe_bound(n, budget, constants),
        max_error=int(errors.max()),
    )


def scaling_experiment(
    sizes: tuple[int, ...] = (256, 512, 1024),
    budget: int = 8,
    objects_per_player: int = 2,
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
    n_workers: int = 1,
    journal: Path | str | None = None,
) -> ExperimentTable:
    """E10: probes per player vs n at fixed B (instances scale D ∝ n).

    Instances use ``objects_per_player · n`` objects, ``B`` planted clusters
    (size ``n/B``) of diameter ``n/4`` — so the cluster structure is
    scale-invariant while the trivial probe-everything cost grows linearly.
    The protocol's measured probes should grow like ``B · polylog n``
    (flat-ish) rather than linearly.  ``n_workers > 1`` fans the sizes
    across the trial engine (identical output for any worker count);
    ``journal=`` checkpoints each size's row to a JSONL file so an
    interrupted scaling run resumes instead of restarting.
    """
    constants = constants or ProtocolConstants.practical()
    table = ExperimentTable(
        experiment_id="E10",
        title="Probe complexity scaling with n (Lemma 11)",
        columns=[
            "n",
            "n_objects",
            "planted_D",
            "max_probes",
            "max_probe_requests",
            "probe_everything_cost",
            "lemma11_bound_Bpolylog",
            "max_error",
        ],
        notes=[
            f"B={budget}; planted instances use {budget} clusters of size n/{budget} "
            "with diameter n/4 over " f"{objects_per_player}·n objects.",
        ],
    )
    points = [
        (n, index, budget, objects_per_player, constants, seed)
        for index, n in enumerate(sizes)
    ]
    for row in run_trials(_scaling_point, points, n_workers=n_workers, journal=journal):
        table.add_row(**row)
    return table


# ---------------------------------------------------------------------------
# E11 — Heterogeneous cluster structure (§8 discussion)
# ---------------------------------------------------------------------------
def heterogeneous_budget_experiment(
    n_players: int = 256,
    n_objects: int = 256,
    budget: int = 4,
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
) -> ExperimentTable:
    """E11: clusters of unequal sizes and diameters.

    The §8 discussion argues the techniques extend to heterogeneous
    structure; we plant clusters of different sizes/diameters and report
    per-cluster error of the honest protocol.
    """
    constants = constants or ProtocolConstants.practical()
    sizes = [n_players // 2, n_players // 4, n_players // 8, n_players // 8]
    sizes[0] += n_players - sum(sizes)
    diameters = [n_objects // 16, n_objects // 8, n_objects // 4, n_objects // 32]
    spec = ScenarioSpec(
        name="e11-heterogeneous",
        description="heterogeneous cluster sizes/diameters (E11 workload)",
        population=PopulationSpec(
            n_players=n_players,
            n_objects=n_objects,
            generator="heterogeneous",
            params={"cluster_sizes": sizes, "cluster_diameters": diameters},
        ),
        protocol=ProtocolSpec(
            name="calculate-preferences",
            budget=budget,
            constants_overrides=asdict(constants),
        ),
    )
    run = execute(spec, seed)
    instance = run.instance
    errors = prediction_errors(
        run.predictions, run.context.oracle.ground_truth()
    )
    benchmark = optimal_diameters(instance.preferences, budget)

    table = ExperimentTable(
        experiment_id="E11",
        title="Heterogeneous cluster sizes and diameters (§8 extension)",
        columns=[
            "cluster",
            "size",
            "planted_diameter",
            "max_error",
            "mean_error",
            "definition1_benchmark",
        ],
        notes=[
            f"n={n_players}, objects={n_objects}, B={budget}.",
            "definition1_benchmark = max over cluster members of the Definition-1 "
            "optimal diameter D_opt(p) (2-approximated from the true distances): "
            "members of clusters smaller than n/B must reach into other clusters, "
            "so their benchmark — and hence any algorithm's error — is large.",
        ],
    )
    for cluster_id, (size, diameter) in enumerate(zip(sizes, diameters)):
        members = instance.cluster_members(cluster_id)
        table.add_row(
            cluster=cluster_id,
            size=int(size),
            planted_diameter=int(diameter),
            max_error=int(errors[members].max()),
            mean_error=float(errors[members].mean()),
            definition1_benchmark=int(benchmark[members].max()),
        )
    return table


# ---------------------------------------------------------------------------
# E12 — Ablations over the protocol's design choices
# ---------------------------------------------------------------------------
def _ablation_point(
    name: str,
    variant_constants: ProtocolConstants,
    schedule: list[float],
    n_players: int,
    n_objects: int,
    budget: int,
    diameter: int,
    seed: SeedLike,
) -> dict:
    """One E12 constants variant (module-level so the trial engine can
    pickle it).  The instance and context are rebuilt from ``seed`` exactly
    as the serial loop built them (and every variant shares the baseline's
    diameter schedule), so rows are identical for any worker count."""
    instance = planted_clusters_instance(
        n_players, n_objects, n_clusters=budget, diameter=diameter, seed=seed
    )
    ctx = make_context(instance, budget=budget, constants=variant_constants, seed=seed)
    result = calculate_preferences(ctx, diameters=schedule)
    errors = prediction_errors(result.predictions, ctx.oracle.ground_truth())
    return dict(
        variant=name,
        max_error=int(errors.max()),
        mean_error=float(errors.mean()),
        max_probes=int(ctx.oracle.max_probes()),
        max_probe_requests=int(ctx.oracle.max_requests()),
    )


def ablation_experiment(
    n_players: int = 256,
    n_objects: int = 256,
    budget: int = 4,
    diameter: int = 48,
    constants: ProtocolConstants | None = None,
    seed: SeedLike = 0,
    n_workers: int = 1,
) -> ExperimentTable:
    """E12: what breaks when each protocol ingredient is weakened.

    Ablations: no vote redundancy (1 prober per object), a too-permissive
    neighbour threshold (everything merges), a too-strict threshold
    (clusters shatter), and a sparse sample (cheaper but noisier clustering).
    ``n_workers > 1`` fans the variants across the trial engine (identical
    output for any worker count).
    """
    base = constants or ProtocolConstants.practical()

    variants: dict[str, ProtocolConstants] = {
        "baseline (practical constants)": base,
        "no vote redundancy": base.with_overrides(vote_redundancy_factor=0.1),
        "permissive edge threshold (x4)": base.with_overrides(
            edge_threshold_factor=base.edge_threshold_factor * 4
        ),
        "strict edge threshold (/4)": base.with_overrides(
            edge_threshold_factor=base.edge_threshold_factor / 4
        ),
        "sparse sample (/3)": base.with_overrides(
            sample_prob_factor=base.sample_prob_factor / 3
        ),
    }
    table = ExperimentTable(
        experiment_id="E12",
        title="Ablations of CalculatePreferences design choices",
        columns=[
            "variant",
            "max_error",
            "mean_error",
            "max_probes",
            "max_probe_requests",
        ],
        notes=[
            f"n={n_players}, objects={n_objects}, B={budget}, planted D={diameter}; "
            "honest players only (the clustering/vote ablations matter even without "
            "an adversary).",
        ],
    )
    schedule = efficient_diameter_schedule(n_players, n_objects, base)
    points = [
        (name, consts, schedule, n_players, n_objects, budget, diameter, seed)
        for name, consts in variants.items()
    ]
    for row in run_trials(_ablation_point, points, n_workers=n_workers):
        table.add_row(**row)
    return table
