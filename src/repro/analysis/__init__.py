"""Analysis layer: bound formulas, experiment drivers, and reporting.

``bounds`` evaluates the paper's closed-form probe/error bounds so measured
numbers can be printed next to what the theory predicts.  ``lower_bound``
implements the Claim-2 experiment.  ``experiments`` contains one driver per
experiment in the DESIGN.md index (E1–E12); each returns an
:class:`~repro.analysis.reporting.ExperimentTable` that the benchmark
harness and EXPERIMENTS.md generation share.  ``reporting`` renders those
tables as plain text / Markdown.
"""

from repro.analysis.bounds import (
    calculate_preferences_probe_bound,
    rselect_probe_bound,
    small_radius_error_bound,
    small_radius_probe_bound,
    zero_radius_probe_bound,
)
from repro.analysis.experiments import (
    ablation_experiment,
    baseline_comparison_experiment,
    dishonest_sweep_experiment,
    heterogeneous_budget_experiment,
    honest_protocol_experiment,
    leader_election_experiment,
    rselect_experiment,
    sampling_concentration_experiment,
    scaling_experiment,
    small_radius_experiment,
    zero_radius_experiment,
)
from repro.analysis.lower_bound import lower_bound_experiment
from repro.analysis.runner import default_worker_count, run_trials, spawn_seeds
from repro.analysis.reporting import (
    ExperimentTable,
    render_markdown,
    render_many,
    render_text,
)

__all__ = [
    "ExperimentTable",
    "ablation_experiment",
    "baseline_comparison_experiment",
    "calculate_preferences_probe_bound",
    "default_worker_count",
    "dishonest_sweep_experiment",
    "heterogeneous_budget_experiment",
    "honest_protocol_experiment",
    "leader_election_experiment",
    "lower_bound_experiment",
    "render_markdown",
    "render_many",
    "render_text",
    "rselect_experiment",
    "rselect_probe_bound",
    "run_trials",
    "sampling_concentration_experiment",
    "scaling_experiment",
    "small_radius_error_bound",
    "small_radius_experiment",
    "small_radius_probe_bound",
    "spawn_seeds",
    "zero_radius_experiment",
    "zero_radius_probe_bound",
]
