"""Experiment tables, renderings, and the machine-readable results format.

Every experiment driver returns an :class:`ExperimentTable`; the benchmark
harness prints the text rendering (so ``pytest benchmarks/ --benchmark-only``
regenerates the paper's rows on stdout) and EXPERIMENTS.md embeds the
Markdown rendering.

:func:`write_table_json` is the single source of truth for the results-JSON
format: the benchmark harness writes ``benchmarks/results/<slug>.json`` with
it and the scenario sweep CLI (``python -m repro sweep``) emits the identical
payload, so regression gates and cross-PR perf tracking can consume either.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ExperimentError

__all__ = [
    "ExperimentTable",
    "render_text",
    "render_markdown",
    "table_json_payload",
    "write_table_json",
    "percentile",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` by linear interpolation.

    Matches ``numpy.percentile``'s default (``linear``) method on a sorted
    copy, without pulling numpy into the reporting layer — the serving
    benchmark uses this for its p50/p99 latency columns.  ``q`` is in
    ``[0, 100]``; an empty sequence is an error.
    """
    if not values:
        raise ExperimentError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ExperimentError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass
class ExperimentTable:
    """A rectangular result table plus provenance notes.

    ``rows`` are dictionaries keyed by column name; missing cells render as
    an empty string.  ``notes`` carry the paper anchor, the constant profile
    used, and any substitutions relevant to interpreting the numbers.
    ``metrics`` holds *structured* run telemetry (fault/retry counters from
    the trial engine, and the counter/gauge/histogram/timer families of a
    telemetry collection under ``--metrics``) keyed by family name; unlike
    ``notes`` it is machine-parseable, and it travels verbatim through
    :func:`table_json_payload` into results-JSON.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    def add_row(self, **cells: Any) -> None:
        """Append a row (validated against the declared columns)."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise ExperimentError(
                f"row contains undeclared columns {sorted(unknown)} "
                f"(declared: {self.columns})"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        """Append one provenance note, skipping exact duplicates.

        Fault/retry telemetry, journal locations and chaos verdicts travel
        through here into the results-JSON payload (``notes`` is carried
        verbatim by :func:`table_json_payload`).
        """
        if note not in self.notes:
            self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


def _rendered_rows(table: ExperimentTable) -> list[list[str]]:
    return [[_format_cell(row.get(col)) for col in table.columns] for row in table.rows]


def render_text(table: ExperimentTable) -> str:
    """Fixed-width text rendering (used by the benchmark harness stdout)."""
    rows = _rendered_rows(table)
    widths = [
        max(len(col), *(len(r[i]) for r in rows)) if rows else len(col)
        for i, col in enumerate(table.columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(table.columns))
    rule = "  ".join("-" * widths[i] for i in range(len(table.columns)))
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    lines = [f"[{table.experiment_id}] {table.title}", header, rule, *body]
    if table.notes:
        lines.append("")
        lines.extend(f"note: {note}" for note in table.notes)
    return "\n".join(lines)


def render_markdown(table: ExperimentTable) -> str:
    """GitHub-flavoured Markdown rendering (used by EXPERIMENTS.md)."""
    rows = _rendered_rows(table)
    header = "| " + " | ".join(table.columns) + " |"
    rule = "|" + "|".join("---" for _ in table.columns) + "|"
    body = ["| " + " | ".join(row) + " |" for row in rows]
    lines = [f"### {table.experiment_id} — {table.title}", "", header, rule, *body]
    if table.notes:
        lines.append("")
        lines.extend(f"*{note}*" for note in table.notes)
    return "\n".join(lines)


def render_many(tables: Sequence[ExperimentTable], markdown: bool = False) -> str:
    """Render several tables separated by blank lines."""
    renderer = render_markdown if markdown else render_text
    return "\n\n".join(renderer(t) for t in tables)


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars (and anything else numeric) for json.dump."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def table_json_payload(
    slug: str, table: ExperimentTable, wall_time_s: float
) -> dict[str, Any]:
    """The machine-readable results payload for one table run."""
    return {
        "slug": slug,
        "experiment_id": table.experiment_id,
        "title": table.title,
        "wall_time_s": wall_time_s,
        "n_rows": len(table.rows),
        "columns": table.columns,
        "rows": table.rows,
        "notes": table.notes,
        "metrics": table.metrics,
        "recorded_unix_time": time.time(),
    }


def write_table_json(
    directory: Path | str, slug: str, table: ExperimentTable, wall_time_s: float
) -> Path:
    """Persist one table run as ``<directory>/<slug>.json``.

    This is the format ``benchmarks/results/*.json`` uses; the scenario CLI
    writes the same payload so downstream tooling needs one parser.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{slug}.json"
    payload = table_json_payload(slug, table, wall_time_s)
    path.write_text(json.dumps(payload, indent=2, default=_json_default) + "\n")
    return path
