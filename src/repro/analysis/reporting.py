"""Experiment tables and plain-text / Markdown rendering.

Every experiment driver returns an :class:`ExperimentTable`; the benchmark
harness prints the text rendering (so ``pytest benchmarks/ --benchmark-only``
regenerates the paper's rows on stdout) and EXPERIMENTS.md embeds the
Markdown rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ExperimentError

__all__ = ["ExperimentTable", "render_text", "render_markdown"]


@dataclass
class ExperimentTable:
    """A rectangular result table plus provenance notes.

    ``rows`` are dictionaries keyed by column name; missing cells render as
    an empty string.  ``notes`` carry the paper anchor, the constant profile
    used, and any substitutions relevant to interpreting the numbers.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        """Append a row (validated against the declared columns)."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise ExperimentError(
                f"row contains undeclared columns {sorted(unknown)} "
                f"(declared: {self.columns})"
            )
        self.rows.append(cells)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


def _rendered_rows(table: ExperimentTable) -> list[list[str]]:
    return [[_format_cell(row.get(col)) for col in table.columns] for row in table.rows]


def render_text(table: ExperimentTable) -> str:
    """Fixed-width text rendering (used by the benchmark harness stdout)."""
    rows = _rendered_rows(table)
    widths = [
        max(len(col), *(len(r[i]) for r in rows)) if rows else len(col)
        for i, col in enumerate(table.columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(table.columns))
    rule = "  ".join("-" * widths[i] for i in range(len(table.columns)))
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    lines = [f"[{table.experiment_id}] {table.title}", header, rule, *body]
    if table.notes:
        lines.append("")
        lines.extend(f"note: {note}" for note in table.notes)
    return "\n".join(lines)


def render_markdown(table: ExperimentTable) -> str:
    """GitHub-flavoured Markdown rendering (used by EXPERIMENTS.md)."""
    rows = _rendered_rows(table)
    header = "| " + " | ".join(table.columns) + " |"
    rule = "|" + "|".join("---" for _ in table.columns) + "|"
    body = ["| " + " | ".join(row) + " |" for row in rows]
    lines = [f"### {table.experiment_id} — {table.title}", "", header, rule, *body]
    if table.notes:
        lines.append("")
        lines.extend(f"*{note}*" for note in table.notes)
    return "\n".join(lines)


def render_many(tables: Sequence[ExperimentTable], markdown: bool = False) -> str:
    """Render several tables separated by blank lines."""
    renderer = render_markdown if markdown else render_text
    return "\n\n".join(renderer(t) for t in tables)
