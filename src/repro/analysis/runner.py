"""Parallel trial engine for the experiment drivers.

The E1–E12 drivers quantify asymptotic claims by running many *independent*
protocol executions — one per trial, parameter point, or instance size.
The seed implementation ran them serially in Python; this module fans them
across a :class:`concurrent.futures.ProcessPoolExecutor` while keeping every
output **deterministic regardless of worker count**:

* each point's randomness derives from the driver's root seed and the
  point's *index* (a ``(seed, index)`` tuple or a :func:`spawn_seeds`
  stream, both built on :func:`repro._typing.spawn_generators`), never
  from execution order;
* results are returned in submission order, not completion order;
* ``n_workers=1`` (the default) bypasses the pool entirely and runs the
  exact serial path the seed implementation ran.

Workers receive their arguments by pickling, so trial functions must be
module-level callables and their arguments picklable (the drivers in
:mod:`repro.analysis.experiments` pass plain numbers, tuples and
:class:`~repro.simulation.config.ProtocolConstants`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro._typing import spawn_seeds
from repro.errors import ExperimentError

__all__ = ["default_worker_count", "spawn_seeds", "run_trials"]


def default_worker_count() -> int:
    """Worker count matching the CPUs actually available to this process.

    Prefers the scheduler affinity mask (which respects cgroup/container
    limits) over ``os.cpu_count()``; always at least 1.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def run_trials(
    trial: Callable[..., Any],
    points: Sequence[Any],
    n_workers: int = 1,
) -> list[Any]:
    """Run ``trial(*point)`` for every point and return results in order.

    Parameters
    ----------
    trial:
        A module-level (picklable) callable executing one independent trial
        or parameter point.
    points:
        One argument tuple per trial (bare non-tuple entries are treated as
        single-argument calls).
    n_workers:
        ``<= 1`` runs everything serially in-process — byte-identical to the
        pre-engine drivers.  Larger values fan the points across a process
        pool (capped at the number of points); a worker failure propagates
        the original exception.
    """
    tasks = [point if isinstance(point, tuple) else (point,) for point in points]
    n_workers = int(n_workers)
    if n_workers < 0:
        raise ExperimentError(f"n_workers must be non-negative, got {n_workers}")
    if n_workers <= 1 or len(tasks) <= 1:
        return [trial(*task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(n_workers, len(tasks))) as pool:
        futures = [pool.submit(trial, *task) for task in tasks]
        return [future.result() for future in futures]
