"""Resilient parallel trial engine for the experiment drivers.

The E1–E12 drivers, the scenario sweeps and the chaos harness all quantify
claims by running many *independent* protocol executions — one per trial,
parameter point, or instance size.  This module fans them across a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping every output
**deterministic regardless of worker count, faults, and retries**:

* each point's randomness derives from the driver's root seed and the
  point's *index* (a ``(seed, index)`` tuple or a :func:`spawn_seeds`
  stream, both built on :func:`repro._typing.spawn_generators`), never
  from execution order;
* results are returned in submission order, not completion order;
* ``n_workers=1`` (the default) bypasses the pool entirely and runs the
  exact serial path the seed implementation ran;
* a failed attempt leaves no trace — trials are pure functions of their
  arguments, so re-running a crashed, timed-out or transiently-failed point
  from scratch reproduces exactly what an undisturbed run would have
  produced.  That is the chaos invariant the fault suite enforces:
  faulted-and-retried runs are bit-identical to clean serial runs.

Resilience features (all opt-in, defaults preserve the historical engine):

``retries=`` / ``backoff=``
    Re-run a point that raised, timed out, or died with its worker, up to
    ``retries`` extra attempts, sleeping ``min(backoff * 2**attempt,``
    ``BACKOFF_CAP_S)`` between attempts.  Exhausting the attempts raises
    :class:`~repro.errors.ExperimentError` naming the point and arguments,
    chained to the original failure, after cancelling all pending siblings.
``timeout_s=``
    Per-point wall-clock bound while awaiting a result.  A timed-out point
    is resubmitted (counting an attempt); the stalled worker's eventual
    result is discarded.  Ignored on the serial path (a single process
    cannot preempt itself).
``journal=``
    Path to an append-only JSONL checkpoint (:class:`repro.faults.journal.
    TrialJournal`): every completed point is flushed to disk as a
    results-JSON-compatible record keyed by point index + argument digest,
    so a killed sweep resumes from the journal — :func:`resume_trials`
    completes it, re-running only the missing points.
``fault_plan=``
    A :class:`repro.faults.plan.FaultPlan` injecting deterministic chaos
    (worker crashes, stalls, probe timeouts, board drop/duplicate) keyed by
    ``(point, attempt, occurrence)`` — see :mod:`repro.faults`.

Workers receive their arguments by pickling, so trial functions must be
module-level callables and their arguments picklable; a non-picklable trial
is rejected at submit time with a clear message instead of the raw pickle
traceback.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Sequence

from repro._typing import spawn_seeds
from repro.errors import ExperimentError, InjectedCrash, OracleTimeout
from repro.faults.journal import TrialJournal, point_key, resolve_trial_ref
from repro.faults.plan import FaultPlan
from repro.faults.runtime import FaultInjector, installed
from repro.obs.report import TraceReport
from repro.obs.runtime import active_telemetry, collecting
from repro.obs.spans import Telemetry

__all__ = [
    "default_worker_count",
    "spawn_seeds",
    "run_trials",
    "resume_trials",
    "STAT_KEYS",
]

#: Upper bound on one backoff sleep, whatever the attempt count.
BACKOFF_CAP_S = 2.0

#: Keys guaranteed present in a ``stats=`` dictionary after a run.
STAT_KEYS: tuple[str, ...] = (
    "injected",
    "retried",
    "pool_restarts",
    "timeouts",
    "journal_flushes",
)


def default_worker_count() -> int:
    """Worker count matching the CPUs actually available to this process.

    Prefers the scheduler affinity mask (which respects cgroup/container
    limits) over ``os.cpu_count()``; always at least 1.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def _call_trial(
    trial: Callable[..., Any], task: tuple, collect: bool
) -> tuple[Any, TraceReport | None]:
    """Invoke one trial, optionally inside a fresh telemetry collection.

    The fresh-collection-per-attempt shape is what keeps telemetry
    deterministic under retries and worker counts alike: a failed or
    abandoned attempt's report is simply never absorbed, and both the serial
    and the pool path hand the parent the exact same picklable
    :class:`~repro.obs.report.TraceReport` unit to merge.
    """
    if not collect:
        return trial(*task), None
    with collecting() as telemetry:
        result = trial(*task)
    return result, telemetry.report()


def _execute_point(
    trial: Callable[..., Any],
    task: tuple,
    index: int,
    attempt: int,
    plan: FaultPlan | None,
    in_worker: bool,
    collect: bool = False,
) -> tuple[int, Any, tuple[dict, ...], TraceReport | None]:
    """Run one point under the fault plan; the unit a worker executes.

    Worker-level faults fire first: a planned crash kills the process for
    real in a pool worker (``os._exit`` — the pool surfaces it as
    ``BrokenProcessPool``) and raises :class:`~repro.errors.InjectedCrash`
    on the serial path; a planned stall sleeps before the trial starts so
    the parent's ``timeout_s`` machinery is exercised.  In-trial faults
    (oracle timeouts, board drop/duplicate) fire through the ambient
    injector while the trial runs.  With ``collect=True`` the trial runs
    inside its own telemetry window and its :class:`TraceReport` rides back
    alongside the result.
    """
    if plan is None:
        result, report = _call_trial(trial, task, collect)
        return index, result, (), report
    injector = FaultInjector(plan, index, attempt)
    if injector.record("worker.crash") is not None:
        if in_worker:
            os._exit(66)
        raise InjectedCrash(
            f"injected worker crash at point {index} (attempt {attempt})"
        )
    stall = injector.record("worker.stall")
    if stall is not None and in_worker:
        time.sleep(stall.param)
    with installed(injector):
        result, report = _call_trial(trial, task, collect)
    return index, result, tuple(event.as_record() for event in injector.events), report


def _normalise_tasks(points: Sequence[Any]) -> list[tuple]:
    return [point if isinstance(point, tuple) else (point,) for point in points]


def _check_picklable(trial: Callable[..., Any], task: tuple) -> None:
    """Reject non-picklable trials/arguments at submit time with a clear
    message instead of the pool's raw ``PicklingError`` traceback."""
    try:
        pickle.dumps((trial, task))
    except Exception as error:  # PicklingError, AttributeError, TypeError, ...
        raise ExperimentError(
            "trial must be a module-level callable with picklable arguments "
            "to run under a process pool (lambdas, closures and locally "
            f"defined functions cannot be shipped to workers): {error}"
        ) from error


def _sleep_backoff(backoff: float, attempt: int) -> None:
    if backoff > 0.0:
        time.sleep(min(backoff * (2.0 ** attempt), BACKOFF_CAP_S))


def _init_stats(stats: dict | None) -> dict:
    stats = stats if stats is not None else {}
    for key in STAT_KEYS:
        stats.setdefault(key, 0)
    return stats


def _run_serial(
    trial: Callable[..., Any],
    tasks: list[tuple],
    remaining: list[int],
    results: dict[int, Any],
    retries: int,
    backoff: float,
    plan: FaultPlan | None,
    journal: TrialJournal | None,
    stats: dict,
    telemetry: Telemetry | None,
    on_result,
) -> None:
    """The in-process path: the exact seed execution when no resilience
    features are engaged, and the same retry semantics as the pool when
    they are (injected crashes are simulated as exceptions).

    Under an ambient telemetry collection each trial still runs in its own
    window (``collect=True``) and is absorbed on success, exactly like the
    pool path — the uniformity is what makes the merged telemetry identical
    for every worker count, and it discards failed attempts' telemetry on
    the retry path for free.
    """
    plain = retries == 0 and plan is None
    collect = telemetry is not None
    for index in remaining:
        task = tasks[index]
        attempt = 0
        while True:
            try:
                _, result, events, report = _execute_point(
                    trial, task, index, attempt, plan, in_worker=False,
                    collect=collect,
                )
            except Exception as error:
                if journal is not None:
                    journal.record_event(
                        event="attempt-failed",
                        index=index,
                        attempt=attempt,
                        error=repr(error),
                    )
                if plain:
                    # Historical contract: the serial engine propagates the
                    # trial's own exception untouched.
                    raise
                stats["injected"] += isinstance(error, (InjectedCrash, OracleTimeout))
                if attempt >= retries:
                    raise ExperimentError(
                        f"trial failed at point {index} with arguments "
                        f"{task!r} after {attempt + 1} attempt(s)"
                    ) from error
                _sleep_backoff(backoff, attempt)
                attempt += 1
                stats["retried"] += 1
                continue
            stats["injected"] += len(events)
            if journal is not None:
                for event in events:
                    journal.record_event(event="fault", **event)
                journal.record_result(index, attempt, point_key(task), result)
            if telemetry is not None and report is not None:
                telemetry.absorb(report)
            results[index] = result
            if on_result is not None:
                on_result(index, result)
            break


def _run_pool(
    trial: Callable[..., Any],
    tasks: list[tuple],
    remaining: list[int],
    results: dict[int, Any],
    n_workers: int,
    retries: int,
    backoff: float,
    timeout_s: float | None,
    plan: FaultPlan | None,
    journal: TrialJournal | None,
    stats: dict,
    telemetry: Telemetry | None,
    on_result,
) -> None:
    """The process-pool path with pool-restart, retry and timeout handling.

    Worker processes have no ambient telemetry of their own, so when the
    parent is collecting, each point runs with ``collect=True`` and ships
    its :class:`TraceReport` back through the result pickle; the parent
    absorbs reports at the same submission-order collection point where
    results land, so the merged telemetry is deterministic.
    """
    _check_picklable(trial, tasks[remaining[0]])
    width = min(n_workers, len(remaining))
    pool = ProcessPoolExecutor(max_workers=width)
    attempts = {index: 0 for index in remaining}
    saw_timeout = False
    collect = telemetry is not None

    def submit(index: int):
        return pool.submit(
            _execute_point, trial, tasks[index], index, attempts[index], plan,
            True, collect,
        )

    def abandon(error: BaseException, index: int) -> ExperimentError:
        """Cancel every pending sibling and wrap the failure with context."""
        for future in futures.values():
            future.cancel()
        pool.shutdown(wait=False, cancel_futures=True)
        return ExperimentError(
            f"trial failed at point {index} with arguments {tasks[index]!r} "
            f"after {attempts[index] + 1} attempt(s)"
        )

    futures = {index: submit(index) for index in remaining}
    try:
        while futures:
            index = min(futures)  # collect in submission (point) order
            try:
                _, result, events, report = futures[index].result(timeout=timeout_s)
            except FuturesTimeout as error:
                saw_timeout = True
                stats["timeouts"] += 1
                if journal is not None:
                    journal.record_event(
                        event="timeout", index=index, attempt=attempts[index]
                    )
                if attempts[index] >= retries:
                    raise abandon(error, index) from error
                # Resubmit to the same (healthy) pool; the stalled worker's
                # eventual result is discarded with the abandoned future.
                attempts[index] += 1
                stats["retried"] += 1
                futures[index] = submit(index)
                continue
            except BrokenProcessPool as error:
                stats["pool_restarts"] += 1
                if journal is not None:
                    journal.record_event(
                        event="pool-broken", pending=sorted(futures)
                    )
                # Attribute the crash: points whose current attempt is
                # *planned* to be disruptive consume their fault (attempt
                # advances); innocent in-flight points keep their attempt
                # and therefore their own fault schedule.  With no plan to
                # consult (a genuine crash), every pending point advances —
                # that guarantees the restart loop terminates.
                blamed = [
                    i
                    for i in futures
                    if plan is not None and plan.disrupts(i, attempts[i])
                ]
                stats["injected"] += len(blamed)  # planned crashes/stalls fired
                if not blamed:
                    blamed = sorted(futures)
                exhausted = [i for i in blamed if attempts[i] >= retries]
                if exhausted:
                    worst = exhausted[0]
                    raise abandon(error, worst) from error
                for i in blamed:
                    attempts[i] += 1
                    stats["retried"] += 1
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(
                    max_workers=min(n_workers, len(futures))
                )
                futures = {i: submit(i) for i in sorted(futures)}
                continue
            except Exception as error:
                if journal is not None:
                    journal.record_event(
                        event="attempt-failed",
                        index=index,
                        attempt=attempts[index],
                        error=repr(error),
                    )
                stats["injected"] += isinstance(error, (InjectedCrash, OracleTimeout))
                if attempts[index] >= retries:
                    raise abandon(error, index) from error
                _sleep_backoff(backoff, attempts[index])
                attempts[index] += 1
                stats["retried"] += 1
                futures[index] = submit(index)
                continue
            del futures[index]
            stats["injected"] += len(events)
            if journal is not None:
                for event in events:
                    journal.record_event(event="fault", **event)
                journal.record_result(
                    index, attempts[index], point_key(tasks[index]), result
                )
            if telemetry is not None and report is not None:
                telemetry.absorb(report)
            results[index] = result
            if on_result is not None:
                on_result(index, result)
    finally:
        # A timed-out worker may still be inside its stalled trial; waiting
        # for it would block the caller on exactly the hang the timeout was
        # meant to survive.
        pool.shutdown(wait=not saw_timeout, cancel_futures=True)


def run_trials(
    trial: Callable[..., Any],
    points: Sequence[Any],
    n_workers: int = 1,
    retries: int = 0,
    backoff: float = 0.0,
    timeout_s: float | None = None,
    journal: Path | str | None = None,
    fault_plan: FaultPlan | None = None,
    stats: dict | None = None,
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Run ``trial(*point)`` for every point and return results in order.

    Parameters
    ----------
    trial:
        A module-level (picklable) callable executing one independent trial
        or parameter point.
    points:
        One argument tuple per trial (bare non-tuple entries are treated as
        single-argument calls).
    n_workers:
        ``<= 1`` runs everything serially in-process — byte-identical to the
        pre-engine drivers when no resilience features are engaged.  Larger
        values fan the points across a process pool (capped at the number of
        outstanding points).
    retries:
        Extra attempts granted to a point that raised, timed out, or died
        with its worker.  ``0`` (the default) preserves fail-fast semantics:
        the first worker failure cancels all pending siblings and raises
        :class:`~repro.errors.ExperimentError` naming the point and its
        arguments, chained to the original exception.
    backoff:
        Base of the capped exponential backoff between attempts
        (``min(backoff * 2**attempt, BACKOFF_CAP_S)`` seconds); ``0``
        retries immediately.
    timeout_s:
        Per-point bound on waiting for a result (pool path only).  A
        timed-out point is resubmitted, consuming an attempt.
    journal:
        Path to the on-disk checkpoint.  Completed points found in an
        existing journal are **not** re-run — their recorded results are
        returned — and each newly completed point is flushed before the
        next is awaited, so a killed run loses at most in-flight work.
    fault_plan:
        Deterministic chaos schedule (see :mod:`repro.faults.plan`).
    stats:
        Optional dict the engine fills with engine counters
        (:data:`STAT_KEYS`: faults injected, retries, pool restarts,
        timeouts, journal flushes) — the numbers the CLI surfaces into
        the results-JSON ``metrics`` block.
    on_result:
        Optional ``(index, result)`` callback fired once per point with its
        *final* (post-retry) result, as soon as the engine records it —
        journal-restored points first (ascending index), then newly executed
        points in submission order.  The preference server's publisher hooks
        this to stream round results while a run is still in flight; the
        callback runs on the engine's thread, so it must be cheap and must
        not raise.

    When an ambient telemetry collection is installed
    (:func:`repro.obs.runtime.collecting`), every trial runs in its own
    telemetry window — in-process or in a worker — and the per-point
    :class:`~repro.obs.report.TraceReport`\\ s are absorbed into the ambient
    collection in submission order, making the aggregated telemetry
    bit-identical for any ``n_workers``.
    """
    tasks = _normalise_tasks(points)
    n_workers = int(n_workers)
    if n_workers < 0:
        raise ExperimentError(f"n_workers must be non-negative, got {n_workers}")
    if retries < 0:
        raise ExperimentError(f"retries must be non-negative, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ExperimentError(f"timeout_s must be positive, got {timeout_s}")
    stats = _init_stats(stats)
    telemetry = active_telemetry()

    journal_obj: TrialJournal | None = None
    results: dict[int, Any] = {}
    try:
        if journal is not None and tasks:
            journal_obj = TrialJournal.attach(journal, trial, tasks)
            results.update(journal_obj.completed)
            if on_result is not None:
                for index in sorted(results):
                    on_result(index, results[index])
        remaining = [index for index in range(len(tasks)) if index not in results]
        if not remaining:
            return [results[index] for index in range(len(tasks))]
        if n_workers <= 1 or len(remaining) <= 1:
            _run_serial(
                trial, tasks, remaining, results,
                retries, backoff, fault_plan, journal_obj, stats, telemetry,
                on_result,
            )
        else:
            _run_pool(
                trial, tasks, remaining, results,
                n_workers, retries, backoff, timeout_s,
                fault_plan, journal_obj, stats, telemetry,
                on_result,
            )
    finally:
        if journal_obj is not None:
            stats["journal_flushes"] += journal_obj.flushes
            journal_obj.close()
    return [results[index] for index in range(len(tasks))]


def resume_trials(
    journal: Path | str,
    trial: Callable[..., Any] | None = None,
    points: Sequence[Any] | None = None,
    **run_kwargs: Any,
) -> list[Any]:
    """Complete a partially finished, journaled ``run_trials`` sweep.

    The journal header records the trial callable's import path and the
    pickled points, so ``resume_trials(path)`` alone finishes the sweep:
    completed points come back from the journal verbatim and only the
    missing ones execute (with whatever ``n_workers=`` / ``retries=`` /
    ``timeout_s=`` keywords are forwarded).  Pass ``trial=`` / ``points=``
    explicitly to override the header (e.g. when the callable moved) —
    per-point argument digests still guard against resuming the wrong sweep.
    """
    header = TrialJournal.read_header(journal)
    if trial is None:
        trial = resolve_trial_ref(header["trial"])
    if points is None:
        points = TrialJournal.header_points(header)
    return run_trials(trial, points, journal=journal, **run_kwargs)
