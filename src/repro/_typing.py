"""Shared type aliases used across the :mod:`repro` package.

The simulator works with three recurring array shapes:

* a *preference matrix* ``V`` of shape ``(n_players, n_objects)`` with
  ``uint8`` entries in ``{0, 1}`` — the hidden ground truth;
* a *prediction matrix* ``W`` of the same shape — what the protocol outputs;
* index arrays of players or objects (``int64``).

Keeping the aliases in one module lets every public signature say what it
means without repeating ``numpy.typing`` incantations.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
import numpy.typing as npt

#: A binary preference / prediction matrix of shape ``(n_players, n_objects)``.
PreferenceMatrix: TypeAlias = npt.NDArray[np.uint8]

#: A single binary preference vector of shape ``(n_objects,)``.
PreferenceVector: TypeAlias = npt.NDArray[np.uint8]

#: An array of player indices.
PlayerIndices: TypeAlias = npt.NDArray[np.int64]

#: An array of object indices.
ObjectIndices: TypeAlias = npt.NDArray[np.int64]

#: Integer array of per-player counts (probes, errors, ...).
CountVector: TypeAlias = npt.NDArray[np.int64]

#: A boolean mask over players.
PlayerMask: TypeAlias = npt.NDArray[np.bool_]

#: A boolean mask over objects.
ObjectMask: TypeAlias = npt.NDArray[np.bool_]

#: Anything acceptable as a seed for :class:`numpy.random.SeedSequence`.
SeedLike: TypeAlias = int | np.random.SeedSequence | np.random.Generator | None


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer, a ``SeedSequence`` or an
    existing ``Generator`` (returned unchanged, so callers can thread a single
    generator through a pipeline without reseeding).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, count: int) -> list[int]:
    """Derive ``count`` independent integer seeds from ``seed``.

    A picklable thinning of :func:`spawn_generators`: the ``i``-th seed
    depends only on ``(seed, i)``, so a trial keyed by its index draws the
    same stream no matter which worker (or how many workers) executes it.
    """
    return [int(rng.integers(0, 2**63 - 1)) for rng in spawn_generators(seed, count)]


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn` so that sub-streams are
    independent regardless of how many draws each consumer makes — the
    recommended pattern for parallel / multi-component simulations.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
