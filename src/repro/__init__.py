"""repro — reproduction of *Collaborative Scoring with Dishonest Participants*.

The package implements the paper's CalculatePreferences protocol and its
Byzantine-robust wrapper on top of a probe-counting simulation substrate,
together with the prior-work baselines it is compared against and the
experiment drivers that regenerate the paper's claims.

Quickstart
----------
>>> from repro import (
...     planted_clusters_instance, make_context, calculate_preferences,
...     optimal_diameters, protocol_report,
... )
>>> instance = planted_clusters_instance(
...     n_players=64, n_objects=64, n_clusters=8, diameter=6, seed=0)
>>> ctx = make_context(instance, budget=8, seed=0)
>>> result = calculate_preferences(ctx)
"""

from repro.core.calculate_preferences import (
    CalculatePreferencesResult,
    calculate_preferences,
    calculate_preferences_for_diameter,
    default_diameter_schedule,
    efficient_diameter_schedule,
)
from repro.core.clustering import Clustering, build_neighbor_graph, cluster_players
from repro.core.robust import RobustResult, robust_calculate_preferences
from repro.core.sampling import sample_disagreements, select_sample_set
from repro.core.work_sharing import share_work
from repro.leader.feige import ElectionResult, feige_leader_election
from repro.players.adversaries import CoalitionPlan, build_coalition
from repro.players.base import PlayerPool, ReportingStrategy
from repro.preferences.generators import (
    PlantedInstance,
    claim2_lower_bound_instance,
    heterogeneous_cluster_instance,
    mixture_model_instance,
    planted_clusters_instance,
    random_instance,
    zero_radius_instance,
)
from repro.preferences.metrics import (
    distance_matrix,
    hamming_distance,
    optimal_diameters,
    set_diameter,
)
from repro.protocols.context import ProtocolContext, make_context
from repro.protocols.rselect import rselect, rselect_collective
from repro.scenarios import (
    CoalitionSpec,
    DynamicsSpec,
    PopulationSpec,
    ProtocolSpec,
    ScenarioRun,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
    sweep_scenario,
)
from repro.protocols.select import select_collective, select_per_player
from repro.protocols.small_radius import small_radius
from repro.protocols.zero_radius import zero_radius
from repro.simulation.config import (
    ExperimentConfig,
    ProtocolConstants,
    SimulationParameters,
)
from repro.simulation.metrics import ProtocolReport, protocol_report
from repro.simulation.oracle import ProbeOracle
from repro.simulation.randomness import AdversarialRandomness, SharedRandomness

__version__ = "0.1.0"

__all__ = [
    "AdversarialRandomness",
    "CalculatePreferencesResult",
    "Clustering",
    "CoalitionPlan",
    "CoalitionSpec",
    "DynamicsSpec",
    "ElectionResult",
    "ExperimentConfig",
    "PlantedInstance",
    "PlayerPool",
    "PopulationSpec",
    "ProbeOracle",
    "ProtocolConstants",
    "ProtocolContext",
    "ProtocolReport",
    "ProtocolSpec",
    "ReportingStrategy",
    "RobustResult",
    "ScenarioRun",
    "ScenarioSpec",
    "SharedRandomness",
    "SimulationParameters",
    "build_coalition",
    "build_neighbor_graph",
    "calculate_preferences",
    "calculate_preferences_for_diameter",
    "claim2_lower_bound_instance",
    "cluster_players",
    "default_diameter_schedule",
    "distance_matrix",
    "efficient_diameter_schedule",
    "feige_leader_election",
    "get_scenario",
    "hamming_distance",
    "heterogeneous_cluster_instance",
    "make_context",
    "mixture_model_instance",
    "optimal_diameters",
    "planted_clusters_instance",
    "protocol_report",
    "random_instance",
    "robust_calculate_preferences",
    "rselect",
    "rselect_collective",
    "run_scenario",
    "sample_disagreements",
    "scenario_names",
    "select_collective",
    "select_per_player",
    "select_sample_set",
    "set_diameter",
    "share_work",
    "small_radius",
    "sweep_scenario",
    "zero_radius",
    "zero_radius_instance",
]
