"""The asyncio preference server: control plane, publisher, eviction.

``PreferenceServer`` is the control side of the control/state split.  The
event loop owns connections, sessions-table bookkeeping and the two
background tasks; every protocol mutation is handed to the owning session's
single worker thread (:meth:`repro.serve.session.Session.submit`) and
awaited without blocking the loop, so dozens of sessions run concurrently
while each one's state stays single-threaded.

The **publisher** task is the streaming half: on a fixed cadence it walks
every session that has subscribers and emits

* ``round-result`` events — trials drained from the session's results deque
  (fed by ``run_trials``'s ``on_result`` callback while a run is in flight),
  plus a ``degraded`` event for any row that took the fallback path;
* ``board-delta`` events — the per-channel posting counters that changed
  since the last tick (:meth:`BulletinBoard.channel_stats` diffs);
* ``telemetry`` events — the session collection's metric families whenever
  its run-wide counters moved (:meth:`Telemetry.snapshot`, the
  tear-tolerant mid-run read).

Degradation is graceful by construction: per-session backpressure caps the
op queue with a typed ``backpressure`` error, idle sessions are evicted on a
timeout (subscribers get a ``session-evicted`` event), and every library
exception crosses the wire as a typed error frame instead of a dropped
connection.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.faults.chaos import degraded_payload
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ServeError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
)
from repro.serve.session import Session, build_spec

__all__ = ["PreferenceServer"]

#: Ops that execute on a session's worker thread.
_SESSION_OPS = frozenset(
    {"probe", "report", "board", "select", "rselect", "election", "run"}
)


class PreferenceServer:
    """Serve live protocol sessions over TCP or a UNIX socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | Path | None = None,
        run_workers: int = 1,
        idle_timeout_s: float | None = None,
        max_pending: int = 32,
        publish_interval_s: float = 0.25,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.socket_path = None if socket_path is None else Path(socket_path)
        self.run_workers = max(1, int(run_workers))
        self.idle_timeout_s = idle_timeout_s
        self.max_pending = int(max_pending)
        self.publish_interval_s = float(publish_interval_s)
        #: Set once the listener is bound; ``address`` is then readable.
        self.ready = threading.Event()
        #: ``("tcp", host, port)`` or ``("unix", path)`` once listening.
        self.address: tuple[Any, ...] | None = None
        self.sessions: dict[str, Session] = {}
        self._session_ids = itertools.count(1)
        self._subscribers: dict[str, set[asyncio.StreamWriter]] = {}
        self._writer_locks: dict[asyncio.StreamWriter, asyncio.Lock] = {}
        self._board_seen: dict[str, dict[str, dict[str, int]]] = {}
        self._counters_seen: dict[str, dict[str, int]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Blocking entry point: serve until shutdown is requested."""
        asyncio.run(self.serve_forever())

    def request_shutdown(self) -> None:
        """Ask the server to stop; safe to call from any thread."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            loop.call_soon_threadsafe(shutdown.set)

    async def serve_forever(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self.socket_path is not None:
            self.socket_path.unlink(missing_ok=True)
            server = await asyncio.start_unix_server(
                self._handle_connection, path=str(self.socket_path),
                limit=MAX_FRAME_BYTES,
            )
            self.address = ("unix", str(self.socket_path))
        else:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port,
                limit=MAX_FRAME_BYTES,
            )
            bound = server.sockets[0].getsockname()
            self.address = ("tcp", bound[0], bound[1])
        self.ready.set()
        publisher = asyncio.create_task(self._publisher_loop())
        evictor = asyncio.create_task(self._evictor_loop())
        try:
            await self._shutdown.wait()
        finally:
            publisher.cancel()
            evictor.cancel()
            for task in (publisher, evictor):
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            server.close()
            await server.wait_closed()
            for session in self.sessions.values():
                session.close()
            self.sessions.clear()
            if self.socket_path is not None:
                self.socket_path.unlink(missing_ok=True)
            self.ready.clear()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writer_locks[writer] = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, error_frame(
                        None, ServeError("frame-too-large", "request line too long")
                    ))
                    break
                if not line:
                    break
                # One task per request: a long op (a full run) must not
                # stall this connection's cheap ops behind it.
                task = asyncio.create_task(self._serve_request(line, writer))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            # Server shutdown cancels handler tasks mid-read; asyncio's
            # stream machinery logs the propagated CancelledError as an
            # unhandled exception, so end the task quietly instead.
            pass
        except (ConnectionError, OSError):
            pass  # client went away mid-read; cleanup below is enough
        finally:
            for task in tasks:
                task.cancel()
            self._drop_writer(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                # Cancellation can land again on this await when the whole
                # server tears down; the transport is closed either way.
                pass

    async def _serve_request(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        request_id: Any = None
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            result = await self._dispatch(frame, writer)
            await self._send(writer, ok_frame(request_id, result))
        except (ServeError, ReproError) as error:
            await self._send(writer, error_frame(request_id, error))
        except (ConnectionError, OSError):
            self._drop_writer(writer)
        except Exception as error:  # noqa: BLE001 - typed frame, never a drop
            await self._send(writer, error_frame(request_id, error))

    async def _dispatch(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> Any:
        op = frame.get("op")
        if not isinstance(op, str):
            raise ServeError("bad-request", "request has no 'op' string")
        params = frame.get("params") or {}
        if not isinstance(params, dict):
            raise ServeError("bad-request", "'params' must be an object")

        if op == "ping":
            return {"pong": True, "sessions": len(self.sessions)}
        if op == "open":
            return self._op_open(params)
        if op == "sessions":
            return {"sessions": [s.describe() for s in self.sessions.values()]}
        if op == "shutdown":
            assert self._loop is not None and self._shutdown is not None
            self._loop.call_soon(self._shutdown.set)  # after the response flushes
            return {"shutting_down": True}

        session = self._session_for(frame)
        if op == "close":
            self._evict(session, reason="closed")
            return {"closed": session.name}
        if op == "subscribe":
            self._subscribers.setdefault(session.name, set()).add(writer)
            return {"subscribed": session.name}
        if op == "unsubscribe":
            self._subscribers.get(session.name, set()).discard(writer)
            return {"unsubscribed": session.name}
        if op == "snapshot":
            session.touch()
            return session.op_snapshot(params)
        if op in _SESSION_OPS:
            method = getattr(session, f"op_{op}")
            future = session.submit(lambda: method(params))
            return await asyncio.wrap_future(future)
        raise ServeError("unknown-op", f"unknown op {op!r}")

    def _op_open(self, params: dict[str, Any]) -> dict[str, Any]:
        scenario = params.get("scenario")
        if not isinstance(scenario, str):
            raise ServeError("bad-request", "'open' needs a scenario name")
        seed = int(params.get("seed", 0))
        overrides = params.get("overrides") or {}
        if not isinstance(overrides, dict):
            raise ServeError("bad-request", "'overrides' must be an object")
        spec = build_spec(scenario, overrides)
        name = f"s{next(self._session_ids)}"
        session = Session(
            name, spec, seed,
            max_pending=int(params.get("max_pending", self.max_pending)),
            run_workers=self.run_workers,
        )
        self.sessions[name] = session
        return {
            "session": name,
            "scenario": spec.name,
            "seed": seed,
            "n_players": int(spec.population.n_players),
            "n_objects": int(spec.population.n_objects),
            "protocol": spec.protocol.name,
        }

    def _session_for(self, frame: dict[str, Any]) -> Session:
        name = frame.get("session")
        if not isinstance(name, str):
            raise ServeError("bad-request", "request has no 'session' name")
        session = self.sessions.get(name)
        if session is None:
            raise ServeError("unknown-session", f"no session named {name!r}")
        return session

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, frame: dict[str, Any]) -> None:
        """Serialise and write one frame under the connection's write lock."""
        lock = self._writer_locks.get(writer)
        if lock is None:
            return
        data = encode_frame(frame)
        try:
            async with lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            self._drop_writer(writer)

    def _drop_writer(self, writer: asyncio.StreamWriter) -> None:
        self._writer_locks.pop(writer, None)
        for subscribers in self._subscribers.values():
            subscribers.discard(writer)

    async def _broadcast(self, session_name: str, frame: dict[str, Any]) -> None:
        for writer in list(self._subscribers.get(session_name, ())):
            await self._send(writer, frame)

    async def _publisher_loop(self) -> None:
        while True:
            await asyncio.sleep(self.publish_interval_s)
            for name in list(self.sessions):
                session = self.sessions.get(name)
                if session is None or not self._subscribers.get(name):
                    continue
                await self._publish_rounds(session)
                await self._publish_board(session)
                await self._publish_telemetry(session)

    async def _publish_rounds(self, session: Session) -> None:
        while session.rounds:
            payload = session.rounds.popleft()
            row = payload["row"]
            await self._broadcast(session.name, {
                "event": "round-result", "session": session.name, "row": row,
            })
            degraded = degraded_payload(row)
            if degraded is not None:
                await self._broadcast(session.name, {
                    "event": "degraded", "session": session.name, **degraded,
                })

    async def _publish_board(self, session: Session) -> None:
        if not session.prepared_ready():
            return
        stats = session.prepared.context.board.channel_stats()
        seen = self._board_seen.get(session.name, {})
        delta = {
            channel: counts
            for channel, counts in stats.items()
            if seen.get(channel) != counts
        }
        if delta:
            self._board_seen[session.name] = stats
            await self._broadcast(session.name, {
                "event": "board-delta", "session": session.name, "channels": delta,
            })

    async def _publish_telemetry(self, session: Session) -> None:
        report = session.telemetry.snapshot()
        counters = report.counters
        if counters == self._counters_seen.get(session.name, {}):
            return  # nothing collected yet, or nothing moved since last tick
        self._counters_seen[session.name] = counters
        await self._broadcast(session.name, {
            "event": "telemetry",
            "session": session.name,
            "metrics": report.metrics_block(),
        })

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    async def _evictor_loop(self) -> None:
        if self.idle_timeout_s is None:
            return
        interval = max(0.05, min(1.0, self.idle_timeout_s / 4.0))
        while True:
            await asyncio.sleep(interval)
            for name in list(self.sessions):
                session = self.sessions.get(name)
                if session is not None and session.idle_for() > self.idle_timeout_s:
                    await self._broadcast(name, {
                        "event": "session-evicted",
                        "session": name,
                        "reason": "idle",
                        "idle_s": round(session.idle_for(), 3),
                    })
                    self._evict(session, reason="idle")

    def _evict(self, session: Session, reason: str) -> None:
        session.close()
        self.sessions.pop(session.name, None)
        self._subscribers.pop(session.name, None)
        self._board_seen.pop(session.name, None)
        self._counters_seen.pop(session.name, None)
