"""The asyncio preference server: control plane, publisher, eviction.

``PreferenceServer`` is the control side of the control/state split.  The
event loop owns connections, sessions-table bookkeeping and the two
background tasks; every protocol mutation is handed to the owning session's
single worker thread (:meth:`repro.serve.session.Session.submit`) and
awaited without blocking the loop, so dozens of sessions run concurrently
while each one's state stays single-threaded.

The **publisher** task is the streaming half: on a fixed cadence it walks
every session that has subscribers and emits

* ``round-result`` events — trials drained from the session's results deque
  (fed by ``run_trials``'s ``on_result`` callback while a run is in flight),
  plus a ``degraded`` event for any row that took the fallback path;
* ``board-delta`` events — the per-channel posting counters that changed
  since the last tick (:meth:`BulletinBoard.channel_stats` diffs);
* ``telemetry`` events — the session collection's metric families whenever
  its run-wide counters moved (:meth:`Telemetry.snapshot`, the
  tear-tolerant mid-run read).

Degradation is graceful by construction: per-session backpressure caps the
op queue with a typed retryable ``overloaded`` error (carrying a
``retry_after_s`` hint), stalled subscribers are shed rather than allowed
to stall the publisher (the replay ring lets them resume by cursor), idle
sessions are evicted on a timeout (subscribers get a ``session-evicted``
event), and every library exception crosses the wire as a typed error
frame instead of a dropped connection.

Durability (``state_dir=``): sessions journal their mutating ops
write-ahead via :mod:`repro.serve.durability`, periodically checkpoint
their full protocol state and compact the log (``checkpoint_every=``), and
a restarted server rebuilds each one from checkpoint + tail replay —
falling back to full replay (or skipping, with a typed warning) when a
checkpoint fails verification.  A stale UNIX socket file is cleared on
boot, and graceful shutdown (SIGTERM/SIGINT or the ``shutdown`` op)
flushes journals and broadcasts ``server-shutdown`` before exiting.
Eviction and explicit close archive a session's files to
``sessions/<name>.evicted/``.

Admission control: ``max_sessions=`` caps live sessions server-wide and
``session_ops_per_s=`` token-buckets each session's mutating ops; both
shed with typed retryable ``quota-exceeded`` frames (``retry_after_s``
hint) that the clients' backoff paths honour.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import warnings
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError, ReproError
from repro.faults.chaos import degraded_payload
from repro.obs.runtime import collecting, span
from repro.obs.spans import Telemetry
from repro.serve.durability import (
    CheckpointError,
    DurabilityWarning,
    SessionCheckpoint,
    SessionJournal,
    archive_session_state,
    clear_stale_socket,
    scan_state_dir,
    session_journal_path,
    session_ordinal,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    QuotaExceeded,
    ServeError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
)
from repro.serve.session import Session, build_spec

__all__ = ["PreferenceServer"]

#: Ops that execute on a session's worker thread.
_SESSION_OPS = frozenset(
    {"probe", "report", "board", "select", "rselect", "election", "run"}
)


class PreferenceServer:
    """Serve live protocol sessions over TCP or a UNIX socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | Path | None = None,
        run_workers: int = 1,
        idle_timeout_s: float | None = None,
        max_pending: int = 32,
        publish_interval_s: float = 0.25,
        state_dir: str | Path | None = None,
        ring_size: int = 1024,
        send_timeout_s: float = 5.0,
        max_sessions: int | None = None,
        checkpoint_every: int | None = 256,
        session_ops_per_s: float | None = None,
        session_ops_burst: int | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.socket_path = None if socket_path is None else Path(socket_path)
        self.run_workers = max(1, int(run_workers))
        self.idle_timeout_s = idle_timeout_s
        self.max_pending = int(max_pending)
        self.publish_interval_s = float(publish_interval_s)
        #: Durable-session root: per-session write-ahead op logs live under
        #: ``<state_dir>/sessions/``; ``None`` serves ephemeral sessions.
        self.state_dir = None if state_dir is None else Path(state_dir)
        self.ring_size = int(ring_size)
        #: A subscriber whose stream write stalls longer than this is shed
        #: (dropped from the session's subscriber set) — safe because the
        #: replay ring lets it reconnect and resume from its cursor.
        self.send_timeout_s = float(send_timeout_s)
        #: Admission control: a server-wide cap on live sessions (``open``
        #: beyond it sheds with a retryable ``quota-exceeded``) and the
        #: per-session token-bucket op quota handed to every new session.
        self.max_sessions = None if max_sessions is None else max(1, int(max_sessions))
        self.session_ops_per_s = session_ops_per_s
        self.session_ops_burst = session_ops_burst
        #: Checkpoint cadence for durable sessions: snapshot + compact the
        #: journal every N journaled ops (``None``/0 = never — recovery
        #: replays the whole log).
        self.checkpoint_every = (
            max(1, int(checkpoint_every)) if checkpoint_every else None
        )
        #: Server-level telemetry (recovery span + durability counters);
        #: per-session counters live on each session's own collection.
        self.telemetry = Telemetry()
        #: Sessions rebuilt from the state dir at the last boot.
        self.recovered_sessions = 0
        #: Recovery accounting from the last boot, echoed by ``ping``/
        #: ``sessions`` and the serve startup log line.
        self.recovery_stats: dict[str, int] = {
            "sessions_recovered": 0,
            "ops_replayed": 0,
            "checkpoint_loads": 0,
            "checkpoint_fallbacks": 0,
            "sessions_skipped": 0,
        }
        #: Set once the listener is bound; ``address`` is then readable.
        self.ready = threading.Event()
        #: ``("tcp", host, port)`` or ``("unix", path)`` once listening.
        self.address: tuple[Any, ...] | None = None
        self.sessions: dict[str, Session] = {}
        self._session_ids = itertools.count(1)
        self._subscribers: dict[str, set[asyncio.StreamWriter]] = {}
        self._writer_locks: dict[asyncio.StreamWriter, asyncio.Lock] = {}
        self._board_seen: dict[str, dict[str, dict[str, int]]] = {}
        self._counters_seen: dict[str, dict[str, int]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._shutdown_requested = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Blocking entry point: serve until shutdown is requested."""
        asyncio.run(self.serve_forever())

    def request_shutdown(self) -> None:
        """Ask the server to stop; safe to call from any thread or a
        signal handler (a request landing before the loop exists is
        honoured as soon as it comes up)."""
        self._shutdown_requested = True
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            loop.call_soon_threadsafe(shutdown.set)

    async def serve_forever(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self._shutdown_requested:  # signal arrived before the loop did
            self._shutdown.set()
        if self.state_dir is not None:
            self._recover_sessions()
        if self.socket_path is not None:
            # A socket file left by a SIGKILLed predecessor is removed; a
            # *live* server's socket raises EADDRINUSE instead.
            clear_stale_socket(self.socket_path)
            server = await asyncio.start_unix_server(
                self._handle_connection, path=str(self.socket_path),
                limit=MAX_FRAME_BYTES,
            )
            self.address = ("unix", str(self.socket_path))
        else:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port,
                limit=MAX_FRAME_BYTES,
            )
            bound = server.sockets[0].getsockname()
            self.address = ("tcp", bound[0], bound[1])
        self.ready.set()
        publisher = asyncio.create_task(self._publisher_loop())
        evictor = asyncio.create_task(self._evictor_loop())
        try:
            await self._shutdown.wait()
        finally:
            publisher.cancel()
            evictor.cancel()
            for task in (publisher, evictor):
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            # Graceful shutdown: tell every connection, then flush and keep
            # each durable session's journal so a restarted --state-dir
            # server recovers the sessions (explicit closes already removed
            # theirs).  A final publisher pass first, so events produced
            # after the last tick still reach the ring journal's high-water
            # mark and connected subscribers.
            try:
                for name, session in list(self.sessions.items()):
                    await self._publish_session(name, session)
            except Exception:  # pragma: no cover - best-effort final flush
                pass
            for writer in list(self._writer_locks):
                await self._send(
                    writer, {"event": "server-shutdown", "reason": "shutdown"}
                )
            server.close()
            await server.wait_closed()
            for session in self.sessions.values():
                session.close(remove_journal=False)
            self.sessions.clear()
            if self.socket_path is not None:
                self.socket_path.unlink(missing_ok=True)
            self.ready.clear()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover_sessions(self) -> None:
        """Rebuild every journaled session found under the state dir.

        Per session: load the journal, try the checkpoint, and pick the
        cheapest recovery that is still *exact* —

        * valid checkpoint → restore it and replay only the post-checkpoint
          tail (O(checkpoint + tail), the bounded-time path);
        * torn/corrupt/missing checkpoint with the full journal intact →
          fall back to full replay (typed :class:`DurabilityWarning`);
        * torn/corrupt checkpoint *and* a compacted journal → the early
          ops exist nowhere trustworthy; skip the session with a warning
          rather than serve approximately-right state.

        Each session's expensive work — ``prepare()``/checkpoint restore
        plus the op replay — is queued on its own worker thread, so boot
        (and the socket bind) is not delayed; client ops simply queue
        behind the replay.  Runs under the server telemetry as the
        ``serve.recovery`` span; nothing found in the scan can crash boot.
        """
        stats = self.recovery_stats
        for key in stats:
            stats[key] = 0
        self.recovered_sessions = 0
        max_ordinal = 0
        with collecting(self.telemetry), span("serve.recovery"):
            for path in scan_state_dir(self.state_dir):
                try:
                    journal = SessionJournal.load(path)
                    header = journal.header
                    name = str(header.get("session") or path.stem)
                    checkpoint = self._load_checkpoint(path, name, journal)
                    if checkpoint is None and journal.compacted_at_seq > 0:
                        journal.close()
                        self.telemetry.add("serve.recovery_skipped", 1)
                        stats["sessions_skipped"] += 1
                        warnings.warn(
                            f"session {name!r} cannot be recovered: its "
                            "journal was compacted but no valid checkpoint "
                            "covers the compacted ops; skipping it",
                            DurabilityWarning,
                            stacklevel=2,
                        )
                        continue
                    spec = build_spec(
                        str(header["scenario"]), dict(header.get("overrides") or {})
                    )
                    session = Session(
                        name,
                        spec,
                        int(header.get("seed", 0)),
                        max_pending=int(header.get("max_pending", self.max_pending)),
                        run_workers=self.run_workers,
                        journal=journal,
                        ring_size=self.ring_size,
                        checkpoint=checkpoint,
                        checkpoint_every=self.checkpoint_every,
                        ops_per_s=self.session_ops_per_s,
                        ops_burst=self.session_ops_burst,
                    )
                except (ReproError, ExperimentError, KeyError, ValueError, OSError) as error:
                    # A journal we cannot recover (corrupt header, scenario
                    # no longer registered, a directory wearing a .jsonl
                    # name...) must not take the whole server down; skip it
                    # and serve the rest.
                    self.telemetry.add("serve.recovery_skipped", 1)
                    stats["sessions_skipped"] += 1
                    warnings.warn(
                        f"skipping unrecoverable session state {path}: {error}",
                        DurabilityWarning,
                        stacklevel=2,
                    )
                    continue
                tail_ops = sum(
                    1
                    for op in journal.recovered_ops
                    if op[0] > session.checkpoint_seq
                )
                self.telemetry.add("serve.sessions_recovered", 1)
                if tail_ops:
                    self.telemetry.add("serve.ops_replayed", tail_ops)
                stats["sessions_recovered"] += 1
                stats["ops_replayed"] += tail_ops
                self.sessions[name] = session
                self.recovered_sessions += 1
                max_ordinal = max(max_ordinal, session_ordinal(name))
        self._session_ids = itertools.count(max_ordinal + 1)

    def _load_checkpoint(
        self, journal_path: Path, name: str, journal: SessionJournal
    ) -> SessionCheckpoint | None:
        """The session's verified checkpoint, or ``None`` (absent or bad).

        Verification failures (torn payload, checksum mismatch, a
        checkpoint naming a different session, or one older than the
        journal's compaction point) count as ``checkpoint_fallbacks`` and
        warn; whether full replay can stand in is the caller's call.
        """
        ckpt_path = journal_path.with_suffix(".ckpt")
        if not ckpt_path.is_file():
            return None
        try:
            checkpoint = SessionCheckpoint.load(ckpt_path)
            if checkpoint.session and checkpoint.session != name:
                raise CheckpointError(
                    f"checkpoint {ckpt_path} names session "
                    f"{checkpoint.session!r}, journal says {name!r}"
                )
            if checkpoint.op_seq < journal.compacted_at_seq:
                raise CheckpointError(
                    f"checkpoint {ckpt_path} (op_seq {checkpoint.op_seq}) "
                    "is older than the journal's compaction point "
                    f"({journal.compacted_at_seq})"
                )
        except CheckpointError as error:
            self.telemetry.add("serve.checkpoint_fallbacks", 1)
            self.recovery_stats["checkpoint_fallbacks"] += 1
            warnings.warn(
                f"session {name!r}: {error}; falling back to full replay",
                DurabilityWarning,
                stacklevel=2,
            )
            return None
        self.telemetry.add("serve.checkpoint_loads", 1)
        self.recovery_stats["checkpoint_loads"] += 1
        return checkpoint

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writer_locks[writer] = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, error_frame(
                        None, ServeError("frame-too-large", "request line too long")
                    ))
                    break
                if not line:
                    break
                # One task per request: a long op (a full run) must not
                # stall this connection's cheap ops behind it.
                task = asyncio.create_task(self._serve_request(line, writer))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            # Server shutdown cancels handler tasks mid-read; asyncio's
            # stream machinery logs the propagated CancelledError as an
            # unhandled exception, so end the task quietly instead.
            pass
        except (ConnectionError, OSError):
            pass  # client went away mid-read; cleanup below is enough
        finally:
            for task in tasks:
                task.cancel()
            self._drop_writer(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                # Cancellation can land again on this await when the whole
                # server tears down; the transport is closed either way.
                pass

    async def _serve_request(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        request_id: Any = None
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            result = await self._dispatch(frame, writer)
            await self._send(writer, ok_frame(request_id, result))
        except (ServeError, ReproError) as error:
            await self._send(writer, error_frame(request_id, error))
        except (ConnectionError, OSError):
            self._drop_writer(writer)
        except Exception as error:  # noqa: BLE001 - typed frame, never a drop
            await self._send(writer, error_frame(request_id, error))

    async def _dispatch(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> Any:
        op = frame.get("op")
        if not isinstance(op, str):
            raise ServeError("bad-request", "request has no 'op' string")
        params = frame.get("params") or {}
        if not isinstance(params, dict):
            raise ServeError("bad-request", "'params' must be an object")

        if op == "ping":
            return {
                "pong": True,
                "sessions": len(self.sessions),
                "max_sessions": self.max_sessions,
                "durable": self.state_dir is not None,
                "recovered_sessions": self.recovered_sessions,
                "recovery": dict(self.recovery_stats),
            }
        if op == "open":
            return self._op_open(params)
        if op == "sessions":
            return {
                "sessions": [s.describe() for s in self.sessions.values()],
                "recovery": dict(self.recovery_stats),
            }
        if op == "shutdown":
            assert self._loop is not None and self._shutdown is not None
            self._loop.call_soon(self._shutdown.set)  # after the response flushes
            return {"shutting_down": True}

        session = self._session_for(frame)
        if op == "close":
            self._evict(session, reason="closed")
            return {"closed": session.name}
        if op == "subscribe":
            return await self._op_subscribe(session, writer, params)
        if op == "unsubscribe":
            self._subscribers.get(session.name, set()).discard(writer)
            return {"unsubscribed": session.name}
        if op == "snapshot":
            session.touch()
            return session.op_snapshot(params)
        if op in _SESSION_OPS:
            future = session.submit_op(op, params)
            return await asyncio.wrap_future(future)
        raise ServeError("unknown-op", f"unknown op {op!r}")

    async def _op_subscribe(
        self,
        session: Session,
        writer: asyncio.StreamWriter,
        params: dict[str, Any],
    ) -> dict[str, Any]:
        """Subscribe a connection, backfilling from ``from_seq`` if given.

        The backfill loop keeps replaying until the ring yields nothing new
        and only *then* adds the writer to the live subscriber set — the
        final empty replay and the set add happen with no ``await`` in
        between, so no frame can fall between backfill and live delivery.
        A cursor the ring can no longer honour (fell off, or beyond the
        recovered high-water mark) gets one typed ``gap`` event naming the
        seq the stream actually resumes from; the client resnapshots.
        """
        name = session.name
        ring = session.ring
        from_seq = params.get("from_seq")
        replayed = 0
        if from_seq is not None:
            try:
                cursor = int(from_seq)
            except (TypeError, ValueError) as error:
                raise ServeError(
                    "bad-request", "'from_seq' must be an integer"
                ) from error
            gap_sent = False
            while True:
                frames, resume_seq = ring.replay(cursor)
                if resume_seq is not None and not gap_sent:
                    gap_sent = True
                    await self._send(writer, {
                        "event": "gap",
                        "session": name,
                        "requested_seq": cursor,
                        "resume_seq": resume_seq,
                    })
                if not frames:
                    break
                for frame in frames:
                    await self._send(writer, frame)
                replayed += len(frames)
                cursor = ring.next_seq
        self._subscribers.setdefault(name, set()).add(writer)
        return {"subscribed": name, "next_seq": ring.next_seq, "replayed": replayed}

    def _op_open(self, params: dict[str, Any]) -> dict[str, Any]:
        scenario = params.get("scenario")
        if not isinstance(scenario, str):
            raise ServeError("bad-request", "'open' needs a scenario name")
        if self.max_sessions is not None and len(self.sessions) >= self.max_sessions:
            # Admission control: shed before any state is created, typed
            # retryable — a later retry may find a slot freed by close or
            # idle eviction.
            raise QuotaExceeded(
                f"server is at its session cap ({self.max_sessions}); "
                "close a session or retry after eviction",
                retry_after_s=1.0,
            )
        seed = int(params.get("seed", 0))
        overrides = params.get("overrides") or {}
        if not isinstance(overrides, dict):
            raise ServeError("bad-request", "'overrides' must be an object")
        spec = build_spec(scenario, overrides)
        name = f"s{next(self._session_ids)}"
        max_pending = int(params.get("max_pending", self.max_pending))
        journal = None
        if self.state_dir is not None:
            journal = SessionJournal.create(
                session_journal_path(self.state_dir, name),
                session=name,
                scenario=scenario,
                overrides=overrides,
                seed=seed,
                max_pending=max_pending,
            )
        session = Session(
            name, spec, seed,
            max_pending=max_pending,
            run_workers=self.run_workers,
            journal=journal,
            ring_size=self.ring_size,
            checkpoint_every=self.checkpoint_every,
            ops_per_s=self.session_ops_per_s,
            ops_burst=self.session_ops_burst,
        )
        self.sessions[name] = session
        return {
            "session": name,
            "scenario": spec.name,
            "seed": seed,
            "n_players": int(spec.population.n_players),
            "n_objects": int(spec.population.n_objects),
            "protocol": spec.protocol.name,
            "durable": journal is not None,
        }

    def _session_for(self, frame: dict[str, Any]) -> Session:
        name = frame.get("session")
        if not isinstance(name, str):
            raise ServeError("bad-request", "request has no 'session' name")
        session = self.sessions.get(name)
        if session is None:
            raise ServeError("unknown-session", f"no session named {name!r}")
        return session

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, frame: dict[str, Any]) -> None:
        """Serialise and write one frame under the connection's write lock."""
        lock = self._writer_locks.get(writer)
        if lock is None:
            return
        data = encode_frame(frame)
        try:
            async with lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            self._drop_writer(writer)

    def _drop_writer(self, writer: asyncio.StreamWriter) -> None:
        self._writer_locks.pop(writer, None)
        for subscribers in self._subscribers.values():
            subscribers.discard(writer)

    async def _broadcast(self, session_name: str, frame: dict[str, Any]) -> None:
        """Send one frame to every subscriber, shedding stalled ones.

        A subscriber whose write does not complete within
        ``send_timeout_s`` is dropped from the set instead of stalling the
        publisher — safe, not lossy: the frame stays in the session's
        replay ring, so the client reconnects and resumes from its cursor.

        The timeout uses ``asyncio.wait`` rather than ``wait_for``: the
        publisher is cancelled at shutdown, and 3.11's ``wait_for`` can
        swallow a cancellation that races the send completing, leaving the
        publisher alive (and shutdown hung on awaiting it) forever.
        """
        for writer in list(self._subscribers.get(session_name, ())):
            send = asyncio.ensure_future(self._send(writer, frame))
            _done, pending = await asyncio.wait(
                {send}, timeout=self.send_timeout_s
            )
            if pending:
                send.cancel()
                self._drop_writer(writer)

    async def _publisher_loop(self) -> None:
        while True:
            await asyncio.sleep(self.publish_interval_s)
            for name in list(self.sessions):
                session = self.sessions.get(name)
                if session is None:
                    continue
                await self._publish_session(name, session)

    async def _publish_session(self, name: str, session: Session) -> None:
        """One publisher tick for one session.

        Every tick's events are stamped into the session's replay ring
        whether or not anyone is currently subscribed — the ring *is* the
        pub/sub buffer, so a client that subscribes (or reconnects) later
        can still backfill them by cursor.  For durable sessions the
        event-seq high-water mark is journaled *before* any frame is sent:
        a crash can therefore lose seqs that were never delivered (they
        are simply reissued for new events after recovery) but can never
        reissue a seq some client has already seen.
        """
        frames: list[dict[str, Any]] = []
        while session.rounds:
            payload = session.rounds.popleft()
            row = payload["row"]
            frames.append({"event": "round-result", "session": name, "row": row})
            degraded = degraded_payload(row)
            if degraded is not None:
                frames.append({"event": "degraded", "session": name, **degraded})
        if session.prepared_ready():
            stats = session.prepared.context.board.channel_stats()
            seen = self._board_seen.get(name, {})
            delta = {
                channel: counts
                for channel, counts in stats.items()
                if seen.get(channel) != counts
            }
            if delta:
                self._board_seen[name] = stats
                frames.append(
                    {"event": "board-delta", "session": name, "channels": delta}
                )
        report = session.telemetry.snapshot()
        counters = report.counters
        if counters and counters != self._counters_seen.get(name, {}):
            self._counters_seen[name] = counters
            frames.append({
                "event": "telemetry",
                "session": name,
                "metrics": report.metrics_block(),
            })
        if not frames:
            return
        stamped = [session.ring.stamp(frame) for frame in frames]
        # Capture the reference: a disk fault on the session worker can
        # degrade the session (journal -> None) between check and call.
        journal = session.journal
        if journal is not None:
            journal.record_events_mark(session.ring.next_seq)
        for frame in stamped:
            await self._broadcast(name, frame)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    async def _evictor_loop(self) -> None:
        if self.idle_timeout_s is None:
            return
        interval = max(0.05, min(1.0, self.idle_timeout_s / 4.0))
        while True:
            await asyncio.sleep(interval)
            for name in list(self.sessions):
                session = self.sessions.get(name)
                if session is not None and session.idle_for() > self.idle_timeout_s:
                    await self._broadcast(name, session.ring.stamp({
                        "event": "session-evicted",
                        "session": name,
                        "reason": "idle",
                        "idle_s": round(session.idle_for(), 3),
                    }))
                    self._evict(session, reason="idle")

    def _evict(self, session: Session, reason: str) -> None:
        # Eviction (idle) and explicit close both end the session for good;
        # its journal + checkpoint are *archived* (sessions/<name>.evicted/)
        # rather than deleted: the recovery scan skips the archive, so a
        # restart does not resurrect the session, but the files survive for
        # post-mortem instead of vanishing with it.
        session.close(remove_journal=False)
        if self.state_dir is not None:
            try:
                archive_session_state(self.state_dir, session.name)
            except OSError:  # pragma: no cover - archive is best-effort
                pass
        self.sessions.pop(session.name, None)
        self._subscribers.pop(session.name, None)
        self._board_seen.pop(session.name, None)
        self._counters_seen.pop(session.name, None)
