"""Live protocol sessions: the state side of the server's control/state split.

A :class:`Session` owns everything one connected experiment needs to probe,
post and run interactively: the :class:`~repro.scenarios.engine.PreparedRun`
for its ``(spec, seed)`` pair (live board, oracle, shared randomness — the
exact state a batch ``execute(spec, seed)`` starts from), a private
:class:`~repro.obs.spans.Telemetry` collection, and a **single-threaded**
executor that serialises every mutation.  One worker thread per session is
the whole concurrency story: protocol state needs no locks (only the worker
touches it), while the asyncio side stays free to multiplex connections and
stream events — publishers read the live state only through the
tear-tolerant snapshot paths (:meth:`Telemetry.snapshot`,
:meth:`BulletinBoard.channel_stats`).

Interactive ops mutate the live context (probes consume the session's
budget, reports land on its board).  The ``run`` op deliberately does *not*:
it fans fresh contexts through :func:`repro.analysis.runner.run_trials` with
the same ``run_point`` unit the CLI uses, so a session's full-run rows are
bit-identical to ``python -m repro run`` of the same pair no matter what the
session did interactively beforehand.
"""

from __future__ import annotations

import collections
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

import numpy as np

from repro._typing import spawn_seeds
from repro.analysis.runner import run_trials
from repro.errors import ReproError
from repro.faults.chaos import degraded_payload
from repro.leader.feige import feige_leader_election
from repro.obs.runtime import collecting
from repro.obs.spans import Telemetry
from repro.protocols.rselect import rselect_collective
from repro.protocols.select import select_collective
from repro.scenarios.engine import (
    RESULT_COLUMNS,
    execute,
    prepare,
    run_point,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, apply_override
from repro.serve.durability import (
    JOURNALED_OPS,
    CheckpointError,
    DurabilityWarning,
    EventRing,
    SessionCheckpoint,
    SessionJournal,
)
from repro.serve.protocol import (
    Overloaded,
    QuotaExceeded,
    ServeError,
    decode_array,
    encode_array,
)

__all__ = ["Session", "build_spec", "run_point_with_predictions"]


class _OpQuota:
    """Token bucket over a session's mutating ops (admission control).

    ``rate`` tokens refill per second up to ``burst``; each journaled op
    spends one.  :meth:`try_acquire` is called on the event loop (and from
    test threads), so the tiny critical section is locked.  An empty
    bucket returns the exact wait until the next token — the
    ``retry_after_s`` the quota-exceeded frame carries.
    """

    def __init__(self, rate: float, burst: int | None = None) -> None:
        self.rate = float(rate)
        if self.rate <= 0:
            raise ServeError(
                "bad-request", f"op quota rate must be positive, got {rate}"
            )
        self.burst = max(1, int(burst if burst is not None else 2 * self.rate))
        self._tokens = float(self.burst)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self) -> float:
        """Spend one token; returns 0.0 on success else seconds to wait."""
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._updated) * self.rate,
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate


def build_spec(scenario: str, overrides: dict[str, Any] | None = None) -> ScenarioSpec:
    """Resolve a registry scenario and apply dotted-path overrides.

    ``overrides`` maps ``apply_override`` paths to values, e.g.
    ``{"population.n_players": 64, "dynamics.noise_rate": 0.1}`` — the same
    vocabulary as the CLI's ``--set`` flags, so a session can open any spec
    the sweep engine can reach.
    """
    spec = get_scenario(scenario)
    for path, value in (overrides or {}).items():
        spec = apply_override(spec, path, value)
    return spec


def run_point_with_predictions(spec: ScenarioSpec, seed: int, trial: int) -> dict:
    """``run_point`` plus the wire-encoded prediction matrix.

    Module-level so it pickles into pool workers.  The row portion is built
    from the same :func:`~repro.scenarios.engine.execute` call that produced
    the predictions (not a second execution), so row and matrix describe one
    run and the row stays bit-identical to :func:`run_point`'s.
    """
    run = execute(spec, seed)
    row = {"trial": trial, "trial_seed": seed}
    row.update(run.row)
    row["predictions"] = encode_array(run.predictions)
    row["active_players"] = encode_array(run.active_players)
    return row


class Session:
    """One live ``(spec, seed)`` protocol context plus its worker thread."""

    def __init__(
        self,
        name: str,
        spec: ScenarioSpec,
        seed: int,
        max_pending: int = 32,
        run_workers: int = 1,
        journal: SessionJournal | None = None,
        ring_size: int = 1024,
        checkpoint: SessionCheckpoint | None = None,
        checkpoint_every: int | None = None,
        ops_per_s: float | None = None,
        ops_burst: int | None = None,
    ) -> None:
        self.name = name
        self.spec = spec
        self.seed = int(seed)
        self.max_pending = int(max_pending)
        self.run_workers = max(1, int(run_workers))
        self.telemetry = Telemetry()
        self.created_at = time.monotonic()
        self.last_used = self.created_at
        self.closed = False
        self._pending = 0
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"session-{name}"
        )
        # Round results stream out of run_trials' on_result callback (engine
        # thread) and drain on the asyncio side; deque appends/popleft are
        # GIL-atomic so no further locking is needed.
        self.rounds: collections.deque[dict[str, Any]] = collections.deque()
        self.run_stats: dict[str, int] = {}
        # Durability: the write-ahead op log (None for ephemeral sessions)
        # and the replay ring assigning (session, seq) event cursors.  A
        # recovered journal seeds both the op-seq and event-seq counters so
        # cursors stay monotonic across the restart; a recovered checkpoint
        # pushes both past everything its state already includes.
        self.journal = journal
        #: Every `checkpoint_every` journaled ops the worker snapshots the
        #: prepared state and compacts the log (None = never checkpoint).
        self.checkpoint_every = (
            max(1, int(checkpoint_every)) if checkpoint_every else None
        )
        self._ops_since_checkpoint = 0
        #: Seq of the last op covered by the on-disk checkpoint (0 = none).
        self.checkpoint_seq = checkpoint.op_seq if checkpoint is not None else 0
        #: Set when a journal append failed and the session fell back to
        #: ephemeral (the log was quarantined; state is still correct).
        self.durability_degraded = False
        self._quota = _OpQuota(ops_per_s, ops_burst) if ops_per_s else None
        journal_next = journal.next_op_seq if journal is not None else 1
        self.op_seq = max(journal_next, self.checkpoint_seq + 1)
        ring_next = journal.events_next_seq if journal is not None else 1
        if checkpoint is not None:
            ring_next = max(ring_next, checkpoint.events_next_seq)
        self.ring = EventRing(capacity=ring_size, next_seq=ring_next)
        #: True while journaled ops are being re-executed after a restart;
        #: round events are suppressed so subscribers never see replayed
        #: trials as fresh results.
        self.replaying = False
        self.replayed_ops = 0
        # prepare()/checkpoint.restore() runs on the session's own worker so
        # the event loop never blocks on instance generation; the executor
        # serialises it before any op that could race the construction.
        if checkpoint is not None:
            self._prepared_future = self._executor.submit(checkpoint.restore)
        else:
            self._prepared_future = self._executor.submit(prepare, spec, self.seed)
        if journal is not None:
            # Replay only the tail past the checkpoint (everything at or
            # below checkpoint_seq is already inside the restored state —
            # including ops a crash left in a not-yet-compacted journal).
            # Replay queues behind prepare() on the same single worker, so
            # the socket can bind immediately: client ops land in the queue
            # and execute only after the session state is rebuilt.
            tail = [
                op for op in journal.recovered_ops if op[0] > self.checkpoint_seq
            ]
            if tail:
                self.replaying = True
                self._executor.submit(self._replay, tail)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def prepared(self):
        return self._prepared_future.result()

    def prepared_ready(self) -> bool:
        """Whether the deferred ``prepare()`` has finished (non-blocking)."""
        return self._prepared_future.done()

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def idle_for(self) -> float:
        return time.monotonic() - self.last_used

    def close(self, remove_journal: bool = False) -> None:
        """Tear the session down; queued work is abandoned.

        ``remove_journal=True`` deletes the op log *and* checkpoint — the
        session is gone for good.  The default keeps the files so a
        restarted ``--state-dir`` server recovers the session (graceful
        shutdown path).  Eviction and explicit close go through the
        server, which closes with the files intact and then *archives*
        them (``sessions/<name>.evicted/``) rather than deleting.
        """
        self.closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.journal is not None:
            if remove_journal:
                ckpt = self.journal.path.with_suffix(".ckpt")
                self.journal.delete()
                ckpt.unlink(missing_ok=True)
            else:
                self.journal.close()

    def describe(self) -> dict[str, Any]:
        return {
            "session": self.name,
            "scenario": self.spec.name,
            "seed": self.seed,
            "pending": self._pending,
            "idle_s": round(self.idle_for(), 3),
            "closed": self.closed,
            "durable": self.journal is not None,
            "durability_degraded": self.durability_degraded,
            "next_seq": self.ring.next_seq,
            "op_seq": self.op_seq,
            "checkpoint_seq": self.checkpoint_seq,
            "quota": self._quota is not None,
            "replaying": self.replaying,
            "replayed_ops": self.replayed_ops,
        }

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _replay(self, ops: list[tuple[int, str, dict[str, Any]]]) -> None:
        """Re-execute journaled ops in order against the fresh context.

        Runs on the session worker, after ``prepare()`` and before any new
        client op.  Each op is the same deterministic function of session
        state it was the first time, so the rebuilt board/oracle/randomness
        are bit-identical to the pre-crash session's.  Ops that raised on
        the live server raise identically here and are skipped the same
        way (the live server answered the client with a typed error and
        carried on).  Runs under the session telemetry so recovered
        counters match an uncrashed server's.
        """
        errors = 0
        try:
            with collecting(self.telemetry):
                for _seq, op, params in ops:
                    if op not in JOURNALED_OPS:
                        continue
                    method = getattr(self, f"op_{op}", None)
                    if method is None:
                        continue
                    try:
                        method(params)
                    except (ReproError, ServeError):
                        errors += 1
                    self.replayed_ops += 1
                self.telemetry.add("serve.replayed_ops", self.replayed_ops)
                if errors:
                    self.telemetry.add("serve.replay_errors", errors)
        finally:
            self.replaying = False

    # ------------------------------------------------------------------
    # Worker dispatch
    # ------------------------------------------------------------------
    def submit(self, fn: Callable[[], Any]):
        """Queue ``fn`` on the session worker under overload limits.

        Returns the :class:`concurrent.futures.Future`.  At most
        ``max_pending`` ops may be queued or running; the overflow request
        is shed fast with a typed retryable ``overloaded`` error (carrying
        a ``retry_after_s`` hint) instead of growing an unbounded queue
        behind a slow op.
        """
        if self.closed:
            raise ServeError("session-evicted", f"session {self.name!r} is closed")
        with self._lock:
            if self._pending >= self.max_pending:
                raise Overloaded(
                    f"session {self.name!r} has {self._pending} ops in flight "
                    f"(limit {self.max_pending}); retry after results drain",
                    retry_after_s=min(2.0, 0.05 * self._pending),
                )
            self._pending += 1
        self.touch()

        def call() -> Any:
            try:
                with collecting(self.telemetry):
                    return fn()
            finally:
                with self._lock:
                    self._pending -= 1

        try:
            return self._executor.submit(call)
        except RuntimeError as error:  # executor already shut down
            with self._lock:
                self._pending -= 1
            raise ServeError(
                "session-evicted", f"session {self.name!r} is closed"
            ) from error

    def submit_op(self, op: str, params: dict[str, Any]):
        """Queue a named protocol op, write-ahead journaling it first.

        The journal record (monotonic ``seq``, op name, wire params) is
        appended and flushed *on the session worker immediately before the
        op executes* — strictly before its result frame can be sent — so
        every op a client ever saw acknowledged is recoverable by replay.
        A crash between append and execution leaves an op that was never
        acked; replaying it anyway is indistinguishable (to every client)
        from the op having completed just before the crash.

        Admission control happens first: a mutating op that exceeds the
        session's token-bucket quota is refused with a typed retryable
        ``quota-exceeded`` *before* it is journaled or queued, so the
        retry the client issues after ``retry_after_s`` is always safe.
        A journal append that hits a disk fault degrades the session to
        ephemeral (typed :class:`DurabilityWarning`, log quarantined) and
        the op still executes — durability is lost, correctness is not.
        """
        method = getattr(self, f"op_{op}")
        if self._quota is not None and op in JOURNALED_OPS:
            wait_s = self._quota.try_acquire()
            if wait_s > 0.0:
                raise QuotaExceeded(
                    f"session {self.name!r} op quota exhausted; "
                    f"next token in {wait_s:.2f}s",
                    retry_after_s=min(5.0, max(0.05, wait_s)),
                )
        if op == "run" and len(self.rounds) >= self.ring.capacity:
            # The publisher is starved: round events are piling up faster
            # than they drain.  Shed the run rather than stack more.
            raise Overloaded(
                f"session {self.name!r} has {len(self.rounds)} undrained "
                "round events; retry once the stream drains",
                retry_after_s=0.5,
            )

        def call() -> Any:
            journaled = False
            if self.journal is not None and op in JOURNALED_OPS:
                seq = self.op_seq
                self.op_seq = seq + 1
                try:
                    self.journal.record_op(seq, op, params)
                    journaled = True
                except OSError as error:
                    self._degrade_journal(error)
            result = method(params)
            if journaled:
                self._maybe_checkpoint()
            return result

        return self.submit(call)

    # ------------------------------------------------------------------
    # Checkpointing / durability degradation (session worker only)
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        """Periodic checkpoint trigger, called after each journaled op."""
        if self.checkpoint_every is None or self.replaying:
            return
        self._ops_since_checkpoint += 1
        if self._ops_since_checkpoint < self.checkpoint_every:
            return
        self._ops_since_checkpoint = 0
        self.write_checkpoint()

    def write_checkpoint(self) -> bool:
        """Snapshot the prepared state and compact the journal to the tail.

        Must run on the session worker (or with the session quiescent):
        the pickle walks the live board/oracle/RNG graph, so nothing may
        mutate it mid-capture.  The checkpoint covers every op executed so
        far (``op_seq - 1``); only after its atomic write *and read-back
        verification* succeed is the journal compacted.  Any failure —
        injected ``checkpoint.write`` faults, real ENOSPC, a failed
        compaction fsync — degrades to a typed :class:`DurabilityWarning`
        with the previous checkpoint and the full journal intact.
        Returns whether a new checkpoint is in place.
        """
        journal = self.journal
        if journal is None:
            return False
        upto_seq = self.op_seq - 1
        header = journal.header
        try:
            checkpoint = SessionCheckpoint.write(
                journal.path.with_suffix(".ckpt"),
                session=self.name,
                scenario=str(header.get("scenario", self.spec.name)),
                overrides=dict(header.get("overrides") or {}),
                seed=self.seed,
                op_seq=upto_seq,
                events_next_seq=self.ring.next_seq,
                prepared=self.prepared,
            )
        except (OSError, CheckpointError) as error:
            self.telemetry.add("serve.checkpoint_errors", 1)
            warnings.warn(
                f"session {self.name!r} checkpoint failed ({error}); "
                "keeping the full journal",
                DurabilityWarning,
                stacklevel=2,
            )
            return False
        self.checkpoint_seq = checkpoint.op_seq
        self.telemetry.add("serve.checkpoint_writes", 1)
        try:
            journal.compact(checkpoint.op_seq)
        except OSError as error:
            # The checkpoint is good; a failed compaction just means the
            # journal keeps ops the checkpoint already covers.  Recovery
            # replays only the post-checkpoint tail either way.
            self.telemetry.add("serve.compaction_errors", 1)
            warnings.warn(
                f"session {self.name!r} journal compaction failed ({error}); "
                "the full journal remains valid",
                DurabilityWarning,
                stacklevel=2,
            )
            return True
        self.telemetry.add("serve.compactions", 1)
        return True

    def _degrade_journal(self, error: Exception) -> None:
        """A journal append failed: quarantine the log, go ephemeral."""
        journal = self.journal
        self.journal = None
        self.durability_degraded = True
        self.telemetry.add("serve.journal_degraded", 1)
        broken = journal.path
        try:
            broken = journal.quarantine()
        except OSError:  # pragma: no cover - quarantine is best-effort
            pass
        warnings.warn(
            f"session {self.name!r} journal append failed ({error}); the log "
            f"was quarantined at {broken} and the session continues "
            "ephemeral (state remains correct, recovery is lost)",
            DurabilityWarning,
            stacklevel=2,
        )

    # ------------------------------------------------------------------
    # Ops (each runs on the session worker via submit())
    # ------------------------------------------------------------------
    def op_probe(self, params: dict[str, Any]) -> dict[str, Any]:
        """Probe the session oracle: one player, a list of objects."""
        ctx = self.prepared.context
        player = _require_int(params, "player")
        objects = _as_indices(params, "objects")
        values = ctx.oracle.probe_objects(player, objects)
        return {
            "player": player,
            "objects": objects.tolist(),
            "values": np.asarray(values).tolist(),
            "probes_used": int(ctx.oracle.probes_used()[player]),
        }

    def op_report(self, params: dict[str, Any]) -> dict[str, Any]:
        """Post one player's binary reports for a set of objects."""
        ctx = self.prepared.context
        channel = _require_str(params, "channel")
        player = _require_int(params, "player")
        objects = _as_indices(params, "objects")
        values = _as_values(params, "values")
        ctx.board.post_reports(channel, player, objects, values)
        return {"channel": channel, "posted": int(objects.size)}

    def op_board(self, params: dict[str, Any]) -> dict[str, Any]:
        """Read a report channel: per-object majority, support, and stats."""
        ctx = self.prepared.context
        channel = _require_str(params, "channel")
        stats = ctx.board.channel_stats()
        if channel not in stats:
            raise ServeError("bad-request", f"unknown board channel {channel!r}")
        majority, support = ctx.board.masked_majority(channel)
        return {
            "channel": channel,
            "stats": stats[channel],
            "majority": encode_array(np.asarray(majority)),
            "support": encode_array(np.asarray(support)),
        }

    def op_select(self, params: dict[str, Any]) -> dict[str, Any]:
        """Run the ``Select`` building block on the live context."""
        ctx = self.prepared.context
        players = _as_indices(params, "players", default=ctx.all_players())
        objects = _as_indices(params, "objects", default=ctx.all_objects())
        candidates = _as_matrix(params, "candidates")
        sample_size = params.get("sample_size")
        choice, chosen = select_collective(
            ctx, players, objects, candidates,
            sample_size=None if sample_size is None else int(sample_size),
        )
        return {
            "choice": choice.tolist(),
            "chosen_vectors": encode_array(chosen),
        }

    def op_rselect(self, params: dict[str, Any]) -> dict[str, Any]:
        """Run the recursive ``RSelect`` building block on the live context."""
        ctx = self.prepared.context
        players = _as_indices(params, "players", default=ctx.all_players())
        objects = _as_indices(params, "objects", default=ctx.all_objects())
        candidates = _as_matrix(params, "candidates_per_player", ndim=3)
        if candidates.shape[0] != players.size:
            raise ServeError(
                "bad-request",
                f"candidates_per_player has {candidates.shape[0]} rows for "
                f"{players.size} players",
            )
        sample_size = params.get("sample_size")
        chosen = rselect_collective(
            ctx, players, objects, candidates,
            sample_size=None if sample_size is None else int(sample_size),
        )
        return {"chosen_vectors": encode_array(chosen)}

    def op_election(self, params: dict[str, Any]) -> dict[str, Any]:
        """Run one Feige leader election over the session's player pool."""
        ctx = self.prepared.context
        n_players = int(params.get("n_players", ctx.n_players))
        dishonest = params.get("dishonest")
        if dishonest is None:
            dishonest = ctx.pool.dishonest_players
        else:
            dishonest = np.asarray(dishonest, dtype=np.int64)
        seed = int(params.get("seed", self.seed))
        max_rounds = int(params.get("max_rounds", 64))
        result = feige_leader_election(
            n_players, dishonest=dishonest, seed=seed, max_rounds=max_rounds
        )
        return {
            "leader": int(result.leader),
            "leader_is_honest": bool(result.leader_is_honest),
            "rounds": int(result.rounds),
            "survivors_per_round": [int(s) for s in result.survivors_per_round],
        }

    def op_run(self, params: dict[str, Any]) -> dict[str, Any]:
        """Full batch run of the session's ``(spec, seed)`` pair.

        Mirrors ``python -m repro run`` exactly: the same ``spawn_seeds``
        stream, the same trial unit, the same engine — which is what makes
        the returned rows bit-identical to the offline CLI for any worker
        count.  Each completed trial is also pushed onto ``self.rounds`` so
        the publisher can stream round-result events while later trials are
        still executing.
        """
        trials = int(params.get("trials", 1))
        if trials <= 0:
            raise ServeError("bad-request", f"trials must be positive, got {trials}")
        workers = int(params.get("workers", self.run_workers))
        include_predictions = bool(params.get("include_predictions", False))
        retries = int(params.get("retries", 0))
        seeds = spawn_seeds(self.seed, trials)
        points = [(self.spec, seeds[trial], trial) for trial in range(trials)]
        trial_fn = run_point_with_predictions if include_predictions else run_point

        def on_result(index: int, row: dict[str, Any]) -> None:
            if self.replaying:
                # A recovery replay re-executes journaled runs to rebuild
                # telemetry, but subscribers already streamed these trials
                # before the crash — do not re-publish them as fresh.
                return
            event_row = {
                key: row[key]
                for key in ("trial", "trial_seed", *RESULT_COLUMNS)
                if key in row
            }
            self.rounds.append({"session": self.name, "row": event_row})

        stats: dict[str, int] = {}
        start = time.perf_counter()
        rows = run_trials(
            trial_fn, points,
            n_workers=workers, retries=retries,
            stats=stats, on_result=on_result,
        )
        self.run_stats = dict(stats)
        return {
            "rows": rows,
            "columns": ["trial", "trial_seed", *RESULT_COLUMNS]
            + (["predictions", "active_players"] if include_predictions else []),
            "stats": stats,
            "wall_s": time.perf_counter() - start,
        }

    def op_snapshot(self, params: dict[str, Any]) -> dict[str, Any]:
        """Mid-run state snapshot: telemetry families + board counters.

        Runs on the *event loop*, not the worker — that is the point: it
        must stay responsive while the worker is deep inside a run, and the
        underlying reads are tear-tolerant by design.
        """
        report = self.telemetry.snapshot()
        board = (
            self.prepared.context.board.channel_stats()
            if self.prepared_ready()
            else {}
        )
        return {
            "session": self.name,
            "telemetry": report.metrics_block(),
            "board": board,
            "run_stats": dict(self.run_stats),
        }


# ----------------------------------------------------------------------
# Parameter coercion helpers (typed bad-request errors, never tracebacks)
# ----------------------------------------------------------------------
def _require(params: dict[str, Any], key: str) -> Any:
    if key not in params:
        raise ServeError("bad-request", f"missing required parameter {key!r}")
    return params[key]


def _require_int(params: dict[str, Any], key: str) -> int:
    value = _require(params, key)
    try:
        return int(value)
    except (TypeError, ValueError) as error:
        raise ServeError("bad-request", f"parameter {key!r} must be an integer") from error


def _require_str(params: dict[str, Any], key: str) -> str:
    value = _require(params, key)
    if not isinstance(value, str):
        raise ServeError("bad-request", f"parameter {key!r} must be a string")
    return value


def _as_indices(
    params: dict[str, Any], key: str, default: np.ndarray | None = None
) -> np.ndarray:
    value = params.get(key)
    if value is None:
        if default is None:
            raise ServeError("bad-request", f"missing required parameter {key!r}")
        return default
    try:
        return np.asarray(value, dtype=np.int64).reshape(-1)
    except (TypeError, ValueError) as error:
        raise ServeError(
            "bad-request", f"parameter {key!r} must be a list of indices"
        ) from error


def _as_values(params: dict[str, Any], key: str) -> np.ndarray:
    value = _require(params, key)
    try:
        return np.asarray(value, dtype=np.uint8).reshape(-1)
    except (TypeError, ValueError) as error:
        raise ServeError(
            "bad-request", f"parameter {key!r} must be a list of binary values"
        ) from error


def _as_matrix(params: dict[str, Any], key: str, ndim: int = 2) -> np.ndarray:
    value = _require(params, key)
    if isinstance(value, dict) and "__ndarray__" in value:
        array = decode_array(value)
    else:
        try:
            array = np.asarray(value, dtype=np.uint8)
        except (TypeError, ValueError) as error:
            raise ServeError(
                "bad-request", f"parameter {key!r} must be an array"
            ) from error
    if array.ndim != ndim:
        raise ServeError(
            "bad-request", f"parameter {key!r} must be {ndim}-D, got {array.ndim}-D"
        )
    return array.astype(np.uint8)


#: Degraded-event payload builder re-exported for the publisher.
degraded_event_payload = degraded_payload
