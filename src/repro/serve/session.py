"""Live protocol sessions: the state side of the server's control/state split.

A :class:`Session` owns everything one connected experiment needs to probe,
post and run interactively: the :class:`~repro.scenarios.engine.PreparedRun`
for its ``(spec, seed)`` pair (live board, oracle, shared randomness — the
exact state a batch ``execute(spec, seed)`` starts from), a private
:class:`~repro.obs.spans.Telemetry` collection, and a **single-threaded**
executor that serialises every mutation.  One worker thread per session is
the whole concurrency story: protocol state needs no locks (only the worker
touches it), while the asyncio side stays free to multiplex connections and
stream events — publishers read the live state only through the
tear-tolerant snapshot paths (:meth:`Telemetry.snapshot`,
:meth:`BulletinBoard.channel_stats`).

Interactive ops mutate the live context (probes consume the session's
budget, reports land on its board).  The ``run`` op deliberately does *not*:
it fans fresh contexts through :func:`repro.analysis.runner.run_trials` with
the same ``run_point`` unit the CLI uses, so a session's full-run rows are
bit-identical to ``python -m repro run`` of the same pair no matter what the
session did interactively beforehand.
"""

from __future__ import annotations

import collections
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

import numpy as np

from repro._typing import spawn_seeds
from repro.analysis.runner import run_trials
from repro.errors import ReproError
from repro.faults.chaos import degraded_payload
from repro.leader.feige import feige_leader_election
from repro.obs.runtime import collecting
from repro.obs.spans import Telemetry
from repro.protocols.rselect import rselect_collective
from repro.protocols.select import select_collective
from repro.scenarios.engine import (
    RESULT_COLUMNS,
    execute,
    prepare,
    run_point,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, apply_override
from repro.serve.durability import JOURNALED_OPS, EventRing, SessionJournal
from repro.serve.protocol import Overloaded, ServeError, decode_array, encode_array

__all__ = ["Session", "build_spec", "run_point_with_predictions"]


def build_spec(scenario: str, overrides: dict[str, Any] | None = None) -> ScenarioSpec:
    """Resolve a registry scenario and apply dotted-path overrides.

    ``overrides`` maps ``apply_override`` paths to values, e.g.
    ``{"population.n_players": 64, "dynamics.noise_rate": 0.1}`` — the same
    vocabulary as the CLI's ``--set`` flags, so a session can open any spec
    the sweep engine can reach.
    """
    spec = get_scenario(scenario)
    for path, value in (overrides or {}).items():
        spec = apply_override(spec, path, value)
    return spec


def run_point_with_predictions(spec: ScenarioSpec, seed: int, trial: int) -> dict:
    """``run_point`` plus the wire-encoded prediction matrix.

    Module-level so it pickles into pool workers.  The row portion is built
    from the same :func:`~repro.scenarios.engine.execute` call that produced
    the predictions (not a second execution), so row and matrix describe one
    run and the row stays bit-identical to :func:`run_point`'s.
    """
    run = execute(spec, seed)
    row = {"trial": trial, "trial_seed": seed}
    row.update(run.row)
    row["predictions"] = encode_array(run.predictions)
    row["active_players"] = encode_array(run.active_players)
    return row


class Session:
    """One live ``(spec, seed)`` protocol context plus its worker thread."""

    def __init__(
        self,
        name: str,
        spec: ScenarioSpec,
        seed: int,
        max_pending: int = 32,
        run_workers: int = 1,
        journal: SessionJournal | None = None,
        ring_size: int = 1024,
    ) -> None:
        self.name = name
        self.spec = spec
        self.seed = int(seed)
        self.max_pending = int(max_pending)
        self.run_workers = max(1, int(run_workers))
        self.telemetry = Telemetry()
        self.created_at = time.monotonic()
        self.last_used = self.created_at
        self.closed = False
        self._pending = 0
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"session-{name}"
        )
        # Round results stream out of run_trials' on_result callback (engine
        # thread) and drain on the asyncio side; deque appends/popleft are
        # GIL-atomic so no further locking is needed.
        self.rounds: collections.deque[dict[str, Any]] = collections.deque()
        self.run_stats: dict[str, int] = {}
        # Durability: the write-ahead op log (None for ephemeral sessions)
        # and the replay ring assigning (session, seq) event cursors.  A
        # recovered journal seeds both the op-seq and event-seq counters so
        # cursors stay monotonic across the restart.
        self.journal = journal
        self.op_seq = journal.next_op_seq if journal is not None else 1
        self.ring = EventRing(
            capacity=ring_size,
            next_seq=journal.events_next_seq if journal is not None else 1,
        )
        #: True while journaled ops are being re-executed after a restart;
        #: round events are suppressed so subscribers never see replayed
        #: trials as fresh results.
        self.replaying = False
        self.replayed_ops = 0
        # prepare() runs on the session's own worker so the event loop never
        # blocks on instance generation; the executor serialises it before
        # any op that could race the context's construction.
        self._prepared_future = self._executor.submit(prepare, spec, self.seed)
        if journal is not None and journal.recovered_ops:
            # Replay queues behind prepare() on the same single worker, so
            # the socket can bind immediately: client ops land in the queue
            # and execute only after the session state is rebuilt.
            self.replaying = True
            self._executor.submit(self._replay, list(journal.recovered_ops))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def prepared(self):
        return self._prepared_future.result()

    def prepared_ready(self) -> bool:
        """Whether the deferred ``prepare()`` has finished (non-blocking)."""
        return self._prepared_future.done()

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def idle_for(self) -> float:
        return time.monotonic() - self.last_used

    def close(self, remove_journal: bool = False) -> None:
        """Tear the session down; queued work is abandoned.

        ``remove_journal=True`` (explicit close / eviction) deletes the op
        log — the session is gone for good.  The default keeps the file so
        a restarted ``--state-dir`` server recovers the session (graceful
        shutdown path).
        """
        self.closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.journal is not None:
            if remove_journal:
                self.journal.delete()
            else:
                self.journal.close()

    def describe(self) -> dict[str, Any]:
        return {
            "session": self.name,
            "scenario": self.spec.name,
            "seed": self.seed,
            "pending": self._pending,
            "idle_s": round(self.idle_for(), 3),
            "closed": self.closed,
            "durable": self.journal is not None,
            "next_seq": self.ring.next_seq,
            "op_seq": self.op_seq,
            "replaying": self.replaying,
            "replayed_ops": self.replayed_ops,
        }

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _replay(self, ops: list[tuple[int, str, dict[str, Any]]]) -> None:
        """Re-execute journaled ops in order against the fresh context.

        Runs on the session worker, after ``prepare()`` and before any new
        client op.  Each op is the same deterministic function of session
        state it was the first time, so the rebuilt board/oracle/randomness
        are bit-identical to the pre-crash session's.  Ops that raised on
        the live server raise identically here and are skipped the same
        way (the live server answered the client with a typed error and
        carried on).  Runs under the session telemetry so recovered
        counters match an uncrashed server's.
        """
        errors = 0
        try:
            with collecting(self.telemetry):
                for _seq, op, params in ops:
                    if op not in JOURNALED_OPS:
                        continue
                    method = getattr(self, f"op_{op}", None)
                    if method is None:
                        continue
                    try:
                        method(params)
                    except (ReproError, ServeError):
                        errors += 1
                    self.replayed_ops += 1
                self.telemetry.add("serve.replayed_ops", self.replayed_ops)
                if errors:
                    self.telemetry.add("serve.replay_errors", errors)
        finally:
            self.replaying = False

    # ------------------------------------------------------------------
    # Worker dispatch
    # ------------------------------------------------------------------
    def submit(self, fn: Callable[[], Any]):
        """Queue ``fn`` on the session worker under overload limits.

        Returns the :class:`concurrent.futures.Future`.  At most
        ``max_pending`` ops may be queued or running; the overflow request
        is shed fast with a typed retryable ``overloaded`` error (carrying
        a ``retry_after_s`` hint) instead of growing an unbounded queue
        behind a slow op.
        """
        if self.closed:
            raise ServeError("session-evicted", f"session {self.name!r} is closed")
        with self._lock:
            if self._pending >= self.max_pending:
                raise Overloaded(
                    f"session {self.name!r} has {self._pending} ops in flight "
                    f"(limit {self.max_pending}); retry after results drain",
                    retry_after_s=min(2.0, 0.05 * self._pending),
                )
            self._pending += 1
        self.touch()

        def call() -> Any:
            try:
                with collecting(self.telemetry):
                    return fn()
            finally:
                with self._lock:
                    self._pending -= 1

        try:
            return self._executor.submit(call)
        except RuntimeError as error:  # executor already shut down
            with self._lock:
                self._pending -= 1
            raise ServeError(
                "session-evicted", f"session {self.name!r} is closed"
            ) from error

    def submit_op(self, op: str, params: dict[str, Any]):
        """Queue a named protocol op, write-ahead journaling it first.

        The journal record (monotonic ``seq``, op name, wire params) is
        appended and flushed *on the session worker immediately before the
        op executes* — strictly before its result frame can be sent — so
        every op a client ever saw acknowledged is recoverable by replay.
        A crash between append and execution leaves an op that was never
        acked; replaying it anyway is indistinguishable (to every client)
        from the op having completed just before the crash.
        """
        method = getattr(self, f"op_{op}")
        if op == "run" and len(self.rounds) >= self.ring.capacity:
            # The publisher is starved: round events are piling up faster
            # than they drain.  Shed the run rather than stack more.
            raise Overloaded(
                f"session {self.name!r} has {len(self.rounds)} undrained "
                "round events; retry once the stream drains",
                retry_after_s=0.5,
            )

        def call() -> Any:
            if self.journal is not None and op in JOURNALED_OPS:
                seq = self.op_seq
                self.op_seq = seq + 1
                self.journal.record_op(seq, op, params)
            return method(params)

        return self.submit(call)

    # ------------------------------------------------------------------
    # Ops (each runs on the session worker via submit())
    # ------------------------------------------------------------------
    def op_probe(self, params: dict[str, Any]) -> dict[str, Any]:
        """Probe the session oracle: one player, a list of objects."""
        ctx = self.prepared.context
        player = _require_int(params, "player")
        objects = _as_indices(params, "objects")
        values = ctx.oracle.probe_objects(player, objects)
        return {
            "player": player,
            "objects": objects.tolist(),
            "values": np.asarray(values).tolist(),
            "probes_used": int(ctx.oracle.probes_used()[player]),
        }

    def op_report(self, params: dict[str, Any]) -> dict[str, Any]:
        """Post one player's binary reports for a set of objects."""
        ctx = self.prepared.context
        channel = _require_str(params, "channel")
        player = _require_int(params, "player")
        objects = _as_indices(params, "objects")
        values = _as_values(params, "values")
        ctx.board.post_reports(channel, player, objects, values)
        return {"channel": channel, "posted": int(objects.size)}

    def op_board(self, params: dict[str, Any]) -> dict[str, Any]:
        """Read a report channel: per-object majority, support, and stats."""
        ctx = self.prepared.context
        channel = _require_str(params, "channel")
        stats = ctx.board.channel_stats()
        if channel not in stats:
            raise ServeError("bad-request", f"unknown board channel {channel!r}")
        majority, support = ctx.board.masked_majority(channel)
        return {
            "channel": channel,
            "stats": stats[channel],
            "majority": encode_array(np.asarray(majority)),
            "support": encode_array(np.asarray(support)),
        }

    def op_select(self, params: dict[str, Any]) -> dict[str, Any]:
        """Run the ``Select`` building block on the live context."""
        ctx = self.prepared.context
        players = _as_indices(params, "players", default=ctx.all_players())
        objects = _as_indices(params, "objects", default=ctx.all_objects())
        candidates = _as_matrix(params, "candidates")
        sample_size = params.get("sample_size")
        choice, chosen = select_collective(
            ctx, players, objects, candidates,
            sample_size=None if sample_size is None else int(sample_size),
        )
        return {
            "choice": choice.tolist(),
            "chosen_vectors": encode_array(chosen),
        }

    def op_rselect(self, params: dict[str, Any]) -> dict[str, Any]:
        """Run the recursive ``RSelect`` building block on the live context."""
        ctx = self.prepared.context
        players = _as_indices(params, "players", default=ctx.all_players())
        objects = _as_indices(params, "objects", default=ctx.all_objects())
        candidates = _as_matrix(params, "candidates_per_player", ndim=3)
        if candidates.shape[0] != players.size:
            raise ServeError(
                "bad-request",
                f"candidates_per_player has {candidates.shape[0]} rows for "
                f"{players.size} players",
            )
        sample_size = params.get("sample_size")
        chosen = rselect_collective(
            ctx, players, objects, candidates,
            sample_size=None if sample_size is None else int(sample_size),
        )
        return {"chosen_vectors": encode_array(chosen)}

    def op_election(self, params: dict[str, Any]) -> dict[str, Any]:
        """Run one Feige leader election over the session's player pool."""
        ctx = self.prepared.context
        n_players = int(params.get("n_players", ctx.n_players))
        dishonest = params.get("dishonest")
        if dishonest is None:
            dishonest = ctx.pool.dishonest_players
        else:
            dishonest = np.asarray(dishonest, dtype=np.int64)
        seed = int(params.get("seed", self.seed))
        max_rounds = int(params.get("max_rounds", 64))
        result = feige_leader_election(
            n_players, dishonest=dishonest, seed=seed, max_rounds=max_rounds
        )
        return {
            "leader": int(result.leader),
            "leader_is_honest": bool(result.leader_is_honest),
            "rounds": int(result.rounds),
            "survivors_per_round": [int(s) for s in result.survivors_per_round],
        }

    def op_run(self, params: dict[str, Any]) -> dict[str, Any]:
        """Full batch run of the session's ``(spec, seed)`` pair.

        Mirrors ``python -m repro run`` exactly: the same ``spawn_seeds``
        stream, the same trial unit, the same engine — which is what makes
        the returned rows bit-identical to the offline CLI for any worker
        count.  Each completed trial is also pushed onto ``self.rounds`` so
        the publisher can stream round-result events while later trials are
        still executing.
        """
        trials = int(params.get("trials", 1))
        if trials <= 0:
            raise ServeError("bad-request", f"trials must be positive, got {trials}")
        workers = int(params.get("workers", self.run_workers))
        include_predictions = bool(params.get("include_predictions", False))
        retries = int(params.get("retries", 0))
        seeds = spawn_seeds(self.seed, trials)
        points = [(self.spec, seeds[trial], trial) for trial in range(trials)]
        trial_fn = run_point_with_predictions if include_predictions else run_point

        def on_result(index: int, row: dict[str, Any]) -> None:
            if self.replaying:
                # A recovery replay re-executes journaled runs to rebuild
                # telemetry, but subscribers already streamed these trials
                # before the crash — do not re-publish them as fresh.
                return
            event_row = {
                key: row[key]
                for key in ("trial", "trial_seed", *RESULT_COLUMNS)
                if key in row
            }
            self.rounds.append({"session": self.name, "row": event_row})

        stats: dict[str, int] = {}
        start = time.perf_counter()
        rows = run_trials(
            trial_fn, points,
            n_workers=workers, retries=retries,
            stats=stats, on_result=on_result,
        )
        self.run_stats = dict(stats)
        return {
            "rows": rows,
            "columns": ["trial", "trial_seed", *RESULT_COLUMNS]
            + (["predictions", "active_players"] if include_predictions else []),
            "stats": stats,
            "wall_s": time.perf_counter() - start,
        }

    def op_snapshot(self, params: dict[str, Any]) -> dict[str, Any]:
        """Mid-run state snapshot: telemetry families + board counters.

        Runs on the *event loop*, not the worker — that is the point: it
        must stay responsive while the worker is deep inside a run, and the
        underlying reads are tear-tolerant by design.
        """
        report = self.telemetry.snapshot()
        board = (
            self.prepared.context.board.channel_stats()
            if self.prepared_ready()
            else {}
        )
        return {
            "session": self.name,
            "telemetry": report.metrics_block(),
            "board": board,
            "run_stats": dict(self.run_stats),
        }


# ----------------------------------------------------------------------
# Parameter coercion helpers (typed bad-request errors, never tracebacks)
# ----------------------------------------------------------------------
def _require(params: dict[str, Any], key: str) -> Any:
    if key not in params:
        raise ServeError("bad-request", f"missing required parameter {key!r}")
    return params[key]


def _require_int(params: dict[str, Any], key: str) -> int:
    value = _require(params, key)
    try:
        return int(value)
    except (TypeError, ValueError) as error:
        raise ServeError("bad-request", f"parameter {key!r} must be an integer") from error


def _require_str(params: dict[str, Any], key: str) -> str:
    value = _require(params, key)
    if not isinstance(value, str):
        raise ServeError("bad-request", f"parameter {key!r} must be a string")
    return value


def _as_indices(
    params: dict[str, Any], key: str, default: np.ndarray | None = None
) -> np.ndarray:
    value = params.get(key)
    if value is None:
        if default is None:
            raise ServeError("bad-request", f"missing required parameter {key!r}")
        return default
    try:
        return np.asarray(value, dtype=np.int64).reshape(-1)
    except (TypeError, ValueError) as error:
        raise ServeError(
            "bad-request", f"parameter {key!r} must be a list of indices"
        ) from error


def _as_values(params: dict[str, Any], key: str) -> np.ndarray:
    value = _require(params, key)
    try:
        return np.asarray(value, dtype=np.uint8).reshape(-1)
    except (TypeError, ValueError) as error:
        raise ServeError(
            "bad-request", f"parameter {key!r} must be a list of binary values"
        ) from error


def _as_matrix(params: dict[str, Any], key: str, ndim: int = 2) -> np.ndarray:
    value = _require(params, key)
    if isinstance(value, dict) and "__ndarray__" in value:
        array = decode_array(value)
    else:
        try:
            array = np.asarray(value, dtype=np.uint8)
        except (TypeError, ValueError) as error:
            raise ServeError(
                "bad-request", f"parameter {key!r} must be an array"
            ) from error
    if array.ndim != ndim:
        raise ServeError(
            "bad-request", f"parameter {key!r} must be {ndim}-D, got {array.ndim}-D"
        )
    return array.astype(np.uint8)


#: Degraded-event payload builder re-exported for the publisher.
degraded_event_payload = degraded_payload
