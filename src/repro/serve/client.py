"""Typed clients for the preference server, sync and async.

Both clients speak the NDJSON protocol of :mod:`repro.serve.protocol` and
expose the same surface: ``call(op, ...)`` for request/response, typed
convenience wrappers (``open_session``, ``probe``, ``run`` …), and an event
inbox for subscribed streams.  A server-side failure raises
:class:`ServerSideError` carrying the wire ``code``/``type`` — the client
never has to parse error frames by hand.

* :class:`AsyncPreferenceClient` lives on an event loop: a reader task
  demultiplexes incoming lines into per-request futures (responses, matched
  on ``id``) and an :class:`asyncio.Queue` (events).  Many requests may be
  in flight at once — the load harness drives its whole request fan-out
  through one of these per simulated session.
* :class:`PreferenceClient` is the blocking form for scripts and CI: one
  socket, sequential calls, events accumulating in a deque as a side effect
  of reading responses (plus :meth:`wait_event` to block for one).
"""

from __future__ import annotations

import asyncio
import collections
import socket
import time
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.serve.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame

__all__ = ["ServerSideError", "PreferenceClient", "AsyncPreferenceClient"]


class ServerSideError(ReproError):
    """An error frame returned by the server, surfaced as an exception."""

    def __init__(self, body: dict[str, Any]) -> None:
        super().__init__(f"[{body.get('code')}] {body.get('message')}")
        self.code = str(body.get("code"))
        self.remote_type = str(body.get("type"))


def _result_of(frame: dict[str, Any]) -> Any:
    if frame.get("ok"):
        return frame.get("result")
    raise ServerSideError(frame.get("error") or {})


class PreferenceClient:
    """Blocking client: one socket, sequential request/response calls.

    ``connect`` accepts ``"host:port"`` for TCP or a filesystem path for a
    UNIX socket.  Event frames that arrive while awaiting a response are
    appended to :attr:`events` in arrival order.
    """

    def __init__(self, connect: str, timeout_s: float = 60.0) -> None:
        self.events: collections.deque[dict[str, Any]] = collections.deque()
        self._next_id = 0
        if ":" in connect and not Path(connect).exists():
            host, _, port = connect.rpartition(":")
            self._sock = socket.create_connection((host, int(port)), timeout=timeout_s)
        else:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(connect)
        self._file = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "PreferenceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def call(self, op: str, session: str | None = None, **params: Any) -> Any:
        """Send one request and block for its response (events buffer)."""
        self._next_id += 1
        request_id = self._next_id
        frame: dict[str, Any] = {"id": request_id, "op": op, "params": params}
        if session is not None:
            frame["session"] = session
        self._sock.sendall(encode_frame(frame))
        while True:
            received = self._read_frame()
            if "event" in received:
                self.events.append(received)
                continue
            if received.get("id") == request_id:
                return _result_of(received)
            # A response to a request this client never made — protocol
            # violation; surface it rather than spinning forever.
            raise ReproError(f"unexpected response frame: {received!r}")

    def wait_event(
        self, event: str | None = None, timeout_s: float = 30.0
    ) -> dict[str, Any]:
        """Block until an event (optionally of one kind) arrives."""
        deadline = time.monotonic() + timeout_s
        while True:
            for index, frame in enumerate(self.events):
                if event is None or frame.get("event") == event:
                    del self.events[index]
                    return frame
            if time.monotonic() > deadline:
                raise TimeoutError(f"no {event or 'any'} event within {timeout_s}s")
            received = self._read_frame()
            if "event" in received:
                self.events.append(received)
            else:
                raise ReproError(f"unexpected response frame: {received!r}")

    def _read_frame(self) -> dict[str, Any]:
        line = self._file.readline(MAX_FRAME_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_frame(line)

    # ------------------------------------------------------------------
    # Typed convenience wrappers
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.call("ping")

    def open_session(
        self,
        scenario: str,
        seed: int = 0,
        overrides: dict[str, Any] | None = None,
        **params: Any,
    ) -> str:
        result = self.call(
            "open", scenario=scenario, seed=seed, overrides=overrides or {}, **params
        )
        return result["session"]

    def probe(self, session: str, player: int, objects: list[int]) -> dict[str, Any]:
        return self.call("probe", session=session, player=player, objects=objects)

    def report(
        self, session: str, channel: str, player: int,
        objects: list[int], values: list[int],
    ) -> dict[str, Any]:
        return self.call(
            "report", session=session, channel=channel,
            player=player, objects=objects, values=values,
        )

    def run(self, session: str, trials: int = 1, **params: Any) -> dict[str, Any]:
        return self.call("run", session=session, trials=trials, **params)

    def subscribe(self, session: str) -> dict[str, Any]:
        return self.call("subscribe", session=session)

    def snapshot(self, session: str) -> dict[str, Any]:
        return self.call("snapshot", session=session)

    def shutdown_server(self) -> dict[str, Any]:
        return self.call("shutdown")


class AsyncPreferenceClient:
    """Asyncio client with concurrent in-flight requests.

    Use :meth:`connect` (classmethod) to build one; a background reader task
    resolves response futures by ``id`` and pushes events onto
    :attr:`events`.  Safe for many outstanding ``call``\\ s at once, which is
    what the serving benchmark leans on.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self.events: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str | None = None,
        port: int | None = None,
        socket_path: str | Path | None = None,
    ) -> "AsyncPreferenceClient":
        if socket_path is not None:
            reader, writer = await asyncio.open_unix_connection(
                str(socket_path), limit=MAX_FRAME_BYTES
            )
        else:
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_FRAME_BYTES
            )
        return cls(reader, writer)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncPreferenceClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                frame = decode_frame(line)
                if "event" in frame:
                    await self.events.put(frame)
                    continue
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - fail every waiter
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def call(self, op: str, session: str | None = None, **params: Any) -> Any:
        self._next_id += 1
        request_id = self._next_id
        frame: dict[str, Any] = {"id": request_id, "op": op, "params": params}
        if session is not None:
            frame["session"] = session
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        return _result_of(await future)

    async def open_session(
        self,
        scenario: str,
        seed: int = 0,
        overrides: dict[str, Any] | None = None,
        **params: Any,
    ) -> str:
        result = await self.call(
            "open", scenario=scenario, seed=seed, overrides=overrides or {}, **params
        )
        return result["session"]

    async def probe(
        self, session: str, player: int, objects: list[int]
    ) -> dict[str, Any]:
        return await self.call("probe", session=session, player=player, objects=objects)

    async def run(self, session: str, trials: int = 1, **params: Any) -> dict[str, Any]:
        return await self.call("run", session=session, trials=trials, **params)

    async def subscribe(self, session: str) -> dict[str, Any]:
        return await self.call("subscribe", session=session)

    async def next_event(
        self, event: str | None = None, timeout_s: float = 30.0
    ) -> dict[str, Any]:
        """Await the next event, optionally filtering by kind."""
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError(f"no {event or 'any'} event within {timeout_s}s")
            frame = await asyncio.wait_for(self.events.get(), timeout=remaining)
            if event is None or frame.get("event") == event:
                return frame
