"""Typed clients for the preference server, sync and async, reconnecting.

Both clients speak the NDJSON protocol of :mod:`repro.serve.protocol` and
expose the same surface: ``call(op, ...)`` for request/response, typed
convenience wrappers (``open_session``, ``probe``, ``run`` …), and an event
inbox for subscribed streams.  A server-side failure raises
:class:`ServerSideError` carrying the wire ``code``/``type`` (plus the
``retry_after_s`` hint on ``overloaded`` sheds) — the client never has to
parse error frames by hand.

Connection loss is typed and survivable:

* A dead peer (EOF, ``OSError``, a torn half-written frame) surfaces as
  :class:`~repro.errors.ConnectionLost` carrying the per-session last-seen
  event cursors — never a raw ``OSError`` or ``json.JSONDecodeError``.
* With ``auto_reconnect`` (the default) the client redials with capped
  exponential backoff and transparently **resumes every subscribed
  stream** via ``subscribe(from_seq=last_seen + 1)``, so a server restart
  costs subscribers nothing the replay ring still holds; a cursor that
  fell off the ring arrives as a typed ``gap`` event (resnapshot and carry
  on).  Idempotent ops (``ping``, ``snapshot``, ``board``, ``run``, …) are
  retried transparently after a reconnect; mutating ops (``probe``,
  ``report``, …) raise :class:`ConnectionLost` — their outcome is unknown
  — while the restored connection stays usable for the next call.
* Heartbeat liveness probes (``ping`` frames sent after ``heartbeat_s`` of
  silence) catch peers that died without closing the socket.

Admission-control sheds are honoured, not just surfaced: a typed
retryable error frame (``overloaded``, ``quota-exceeded``) means the
server refused the request *before* executing it, so both clients sleep
the frame's ``retry_after_s`` hint and re-issue — any op, mutating ones
included — up to ``shed_retries`` times (0 disables, surfacing every
shed).

Reconnect bookkeeping is exposed on ``client.stats`` (``reconnects``,
``resubscribes``, ``heartbeats``, ``gaps``, ``sheds``).

* :class:`AsyncPreferenceClient` lives on an event loop: a reader task
  demultiplexes incoming lines into per-request futures (responses, matched
  on ``id``) and an :class:`asyncio.Queue` (events).  Many requests may be
  in flight at once — the load harness drives its whole request fan-out
  through one of these per simulated session.
* :class:`PreferenceClient` is the blocking form for scripts and CI: one
  socket, sequential calls, events accumulating in a deque as a side effect
  of reading responses (plus :meth:`wait_event` to block for one).
"""

from __future__ import annotations

import asyncio
import collections
import socket
import time
from pathlib import Path
from typing import Any

from repro.errors import ConnectionLost, ReproError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ServeError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ConnectionLost",
    "ServerSideError",
    "PreferenceClient",
    "AsyncPreferenceClient",
]

#: Ops that are safe to re-issue after a reconnect: reads, subscription
#: management, and ``run`` (which never mutates session state and is
#: deterministic for the session's ``(spec, seed)``, so a re-run returns
#: bit-identical rows).  Everything else may have executed before the
#: connection died, so the reconnecting clients surface ``ConnectionLost``
#: instead of guessing.
IDEMPOTENT_OPS = frozenset(
    {"ping", "sessions", "snapshot", "board", "subscribe", "unsubscribe", "run"}
)

_RECV_CHUNK = 1 << 16


class ServerSideError(ReproError):
    """An error frame returned by the server, surfaced as an exception."""

    def __init__(self, body: dict[str, Any]) -> None:
        super().__init__(f"[{body.get('code')}] {body.get('message')}")
        self.code = str(body.get("code"))
        self.remote_type = str(body.get("type"))
        #: ``True`` for typed retryable sheds (``overloaded``).
        self.retryable = bool(body.get("retryable", False))
        #: Back-off hint attached to ``overloaded`` frames, else ``None``.
        self.retry_after_s = (
            float(body["retry_after_s"]) if "retry_after_s" in body else None
        )


def _result_of(frame: dict[str, Any]) -> Any:
    if frame.get("ok"):
        return frame.get("result")
    raise ServerSideError(frame.get("error") or {})


class _CursorBook:
    """Shared stream-resume bookkeeping for both client flavours."""

    def __init__(self) -> None:
        #: ``{session: last event seq observed}``.
        self.last_seen: dict[str, int] = {}
        self.subscribed: set[str] = set()
        self.stats = {
            "reconnects": 0,
            "resubscribes": 0,
            "heartbeats": 0,
            "gaps": 0,
            "sheds": 0,
        }

    def note_event(self, frame: dict[str, Any]) -> None:
        """Update cursors from one incoming event frame."""
        session = frame.get("session")
        if frame.get("event") == "gap":
            # The server cannot replay from our cursor; resume from where
            # the stream actually restarts (the caller should resnapshot).
            self.stats["gaps"] += 1
            resume = frame.get("resume_seq")
            if isinstance(session, str) and resume is not None:
                self.last_seen[session] = int(resume) - 1
            return
        seq = frame.get("seq")
        if isinstance(session, str) and seq is not None:
            self.last_seen[session] = max(
                self.last_seen.get(session, 0), int(seq)
            )
        if frame.get("event") == "session-evicted" and isinstance(session, str):
            self.subscribed.discard(session)

    def resume_seq(self, session: str) -> int:
        return self.last_seen.get(session, 0) + 1


class PreferenceClient:
    """Blocking client: one socket, sequential request/response calls.

    ``connect`` accepts ``"host:port"`` for TCP or a filesystem path for a
    UNIX socket.  Event frames that arrive while awaiting a response are
    appended to :attr:`events` in arrival order.  See the module docstring
    for the reconnect/heartbeat/resume behaviour.
    """

    def __init__(
        self,
        connect: str,
        timeout_s: float = 60.0,
        auto_reconnect: bool = True,
        reconnect_attempts: int = 8,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        heartbeat_s: float = 10.0,
        shed_retries: int = 4,
    ) -> None:
        self.connect_to = connect
        self.timeout_s = float(timeout_s)
        self.auto_reconnect = bool(auto_reconnect)
        self.reconnect_attempts = max(1, int(reconnect_attempts))
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.heartbeat_s = float(heartbeat_s)
        #: How many typed retryable sheds (``overloaded``/``quota-exceeded``)
        #: one call rides out, sleeping each frame's ``retry_after_s``
        #: before re-issuing; 0 surfaces every shed to the caller.
        self.shed_retries = max(0, int(shed_retries))
        self.events: collections.deque[dict[str, Any]] = collections.deque()
        self._cursors = _CursorBook()
        self._next_id = 0
        self._heartbeat_ids: set[Any] = set()
        self._pending_heartbeat: Any = None
        self._buffer = bytearray()
        self._sock: socket.socket | None = None
        self._dial()

    # Cursor bookkeeping, exposed read-mostly for callers and tests.
    @property
    def last_seen(self) -> dict[str, int]:
        """Per-session last observed event seq (the resume cursors)."""
        return self._cursors.last_seen

    @property
    def stats(self) -> dict[str, int]:
        """Reconnect/heartbeat/gap counters."""
        return self._cursors.stats

    def _dial(self) -> None:
        """Open a fresh socket to the configured address (no retries)."""
        connect = self.connect_to
        if ":" in connect and not Path(connect).exists():
            host, _, port = connect.rpartition(":")
            sock = socket.create_connection(
                (host, int(port)), timeout=self.timeout_s
            )
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            sock.connect(connect)
        old = self._sock
        self._sock = sock
        self._buffer.clear()
        self._heartbeat_ids.clear()
        self._pending_heartbeat = None
        if old is not None:
            try:
                old.close()
            except OSError:
                pass

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "PreferenceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire I/O (every failure is a typed ConnectionLost, never raw OSError)
    # ------------------------------------------------------------------
    def _lost(self, reason: str) -> ConnectionLost:
        return ConnectionLost(
            f"connection to {self.connect_to!r} lost: {reason}",
            self._cursors.last_seen,
        )

    def _send_bytes(self, data: bytes) -> None:
        if self._sock is None:
            raise self._lost("client is closed")
        try:
            self._sock.sendall(data)
        except TimeoutError:
            raise
        except OSError as error:
            raise self._lost(str(error)) from error

    def _read_line(self) -> bytes:
        """One ``\\n``-terminated line from the client-owned buffer.

        The buffer lives on the client, not inside a ``makefile`` wrapper,
        so a read *timeout* (heartbeat windows in :meth:`wait_event`) never
        discards partially received bytes — the next read resumes exactly
        where the stream stopped.
        """
        if self._sock is None:
            raise self._lost("client is closed")
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                return line
            if len(self._buffer) > MAX_FRAME_BYTES:
                raise self._lost("peer sent an oversized frame")
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except TimeoutError:
                raise
            except OSError as error:
                raise self._lost(str(error)) from error
            if not chunk:
                raise self._lost("server closed the connection")
            self._buffer += chunk

    def _read_frame(self) -> dict[str, Any]:
        line = self._read_line()
        try:
            frame = decode_frame(line)
        except ServeError as error:
            # A torn or garbled line is a dying peer, not a protocol bug on
            # our side — type it accordingly.
            raise self._lost(f"unreadable frame ({error})") from error
        self._pending_heartbeat = None  # any full frame proves liveness
        return frame

    # ------------------------------------------------------------------
    # Reconnect machinery
    # ------------------------------------------------------------------
    def _reconnect(self) -> None:
        """Redial with capped exponential backoff, then resume streams."""
        delay = self.backoff_base_s
        last_error: OSError | None = None
        for _attempt in range(self.reconnect_attempts):
            try:
                self._dial()
                break
            except OSError as error:
                last_error = error
                time.sleep(min(delay, self.backoff_cap_s))
                delay *= 2
        else:
            raise ConnectionLost(
                f"reconnect to {self.connect_to!r} failed after "
                f"{self.reconnect_attempts} attempts: {last_error}",
                self._cursors.last_seen,
            )
        self._cursors.stats["reconnects"] += 1
        self._resubscribe()

    def _resubscribe(self) -> None:
        """Resume every subscribed stream from its last-seen cursor."""
        for session in sorted(self._cursors.subscribed):
            try:
                self._call_once(
                    "subscribe", session,
                    {"from_seq": self._cursors.resume_seq(session)},
                )
                self._cursors.stats["resubscribes"] += 1
            except ServerSideError:
                # The restarted server no longer knows this session (it was
                # ephemeral, or evicted).  Surface that as an event rather
                # than failing the whole reconnect.
                self._cursors.subscribed.discard(session)
                self.events.append({
                    "event": "session-evicted",
                    "session": session,
                    "reason": "lost-on-reconnect",
                })

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def _call_once(
        self, op: str, session: str | None, params: dict[str, Any]
    ) -> Any:
        self._next_id += 1
        request_id = self._next_id
        frame: dict[str, Any] = {"id": request_id, "op": op, "params": params}
        if session is not None:
            frame["session"] = session
        self._send_bytes(encode_frame(frame))
        while True:
            received = self._read_frame()
            if "event" in received:
                self._cursors.note_event(received)
                self.events.append(received)
                continue
            received_id = received.get("id")
            if received_id in self._heartbeat_ids:
                self._heartbeat_ids.discard(received_id)
                continue
            if received_id == request_id:
                return _result_of(received)
            # A response to a request this client never made — protocol
            # violation; surface it rather than spinning forever.
            raise ReproError(f"unexpected response frame: {received!r}")

    def call(
        self,
        op: str,
        session: str | None = None,
        retry: bool | None = None,
        **params: Any,
    ) -> Any:
        """Send one request and block for its response (events buffer).

        On connection loss the client reconnects (capped backoff) and —
        for idempotent ops, or when ``retry=True`` — re-issues the
        request.  Mutating ops raise :class:`ConnectionLost` after the
        reconnect: their outcome on the dead connection is unknown, and
        the caller must decide (the restored connection is ready for the
        next call either way).

        Typed retryable sheds (``overloaded``, ``quota-exceeded``) are
        different: the server refused the request *before* executing it,
        so any op — mutating or not — is safe to re-issue.  The client
        sleeps the frame's ``retry_after_s`` hint and retries up to
        ``shed_retries`` times before surfacing the error.
        """
        retryable = (op in IDEMPOTENT_OPS) if retry is None else bool(retry)
        attempts = 0
        sheds = 0
        while True:
            try:
                return self._call_once(op, session, params)
            except ServerSideError as error:
                if not error.retryable or sheds >= self.shed_retries:
                    raise
                sheds += 1
                self._cursors.stats["sheds"] += 1
                time.sleep(
                    min(
                        self.backoff_cap_s,
                        error.retry_after_s or self.backoff_base_s,
                    )
                )
            except ConnectionLost:
                if not self.auto_reconnect:
                    raise
                attempts += 1
                self._reconnect()  # raises ConnectionLost when exhausted
                if not retryable or attempts > 2:
                    raise

    def wait_event(
        self, event: str | None = None, timeout_s: float = 30.0
    ) -> dict[str, Any]:
        """Block until an event (optionally of one kind) arrives.

        While waiting, silence longer than ``heartbeat_s`` triggers a
        ``ping`` liveness probe; an unanswered probe (or any read failure)
        drives the reconnect-and-resume path, after which waiting simply
        continues — backfilled frames arrive via the replay ring.
        """
        deadline = time.monotonic() + timeout_s
        try:
            while True:
                for index, frame in enumerate(self.events):
                    if event is None or frame.get("event") == event:
                        del self.events[index]
                        return frame
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no {event or 'any'} event within {timeout_s}s"
                    )
                if self._sock is not None:
                    self._sock.settimeout(
                        max(0.05, min(remaining, self.heartbeat_s))
                    )
                try:
                    received = self._read_frame()
                except TimeoutError:
                    self._probe_liveness()
                    continue
                except ConnectionLost:
                    if not self.auto_reconnect:
                        raise
                    self._reconnect()
                    continue
                if "event" in received:
                    self._cursors.note_event(received)
                    self.events.append(received)
                elif received.get("id") in self._heartbeat_ids:
                    self._heartbeat_ids.discard(received.get("id"))
                else:
                    raise ReproError(f"unexpected response frame: {received!r}")
        finally:
            if self._sock is not None:
                self._sock.settimeout(self.timeout_s)

    def _probe_liveness(self) -> None:
        """Send a heartbeat ping; treat a previously unanswered one as a
        dead peer (reconnect or raise)."""
        if self._pending_heartbeat is not None:
            self._pending_heartbeat = None
            if not self.auto_reconnect:
                raise self._lost("heartbeat probe went unanswered")
            self._reconnect()
            return
        self._next_id += 1
        request_id = self._next_id
        self._heartbeat_ids.add(request_id)
        self._pending_heartbeat = request_id
        self._cursors.stats["heartbeats"] += 1
        try:
            self._send_bytes(
                encode_frame({"id": request_id, "op": "ping", "params": {}})
            )
        except ConnectionLost:
            self._pending_heartbeat = None
            if not self.auto_reconnect:
                raise
            self._reconnect()

    # ------------------------------------------------------------------
    # Typed convenience wrappers
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.call("ping")

    def open_session(
        self,
        scenario: str,
        seed: int = 0,
        overrides: dict[str, Any] | None = None,
        **params: Any,
    ) -> str:
        result = self.call(
            "open", scenario=scenario, seed=seed, overrides=overrides or {}, **params
        )
        return result["session"]

    def probe(self, session: str, player: int, objects: list[int]) -> dict[str, Any]:
        return self.call("probe", session=session, player=player, objects=objects)

    def report(
        self, session: str, channel: str, player: int,
        objects: list[int], values: list[int],
    ) -> dict[str, Any]:
        return self.call(
            "report", session=session, channel=channel,
            player=player, objects=objects, values=values,
        )

    def run(self, session: str, trials: int = 1, **params: Any) -> dict[str, Any]:
        return self.call("run", session=session, trials=trials, **params)

    def subscribe(
        self, session: str, from_seq: int | None = None
    ) -> dict[str, Any]:
        params = {} if from_seq is None else {"from_seq": int(from_seq)}
        result = self.call("subscribe", session=session, **params)
        self._cursors.subscribed.add(session)
        if isinstance(result, dict) and "next_seq" in result:
            # Baseline the cursor at the server's current position so a
            # later resume starts from "everything after subscription".
            self._cursors.last_seen.setdefault(
                session, int(result["next_seq"]) - 1
            )
        return result

    def snapshot(self, session: str) -> dict[str, Any]:
        return self.call("snapshot", session=session)

    def shutdown_server(self) -> dict[str, Any]:
        return self.call("shutdown", retry=False)


class AsyncPreferenceClient:
    """Asyncio client with concurrent in-flight requests.

    Use :meth:`connect` (classmethod) to build one; a background reader task
    resolves response futures by ``id`` and pushes events onto
    :attr:`events`.  Safe for many outstanding ``call``\\ s at once, which is
    what the serving benchmark leans on.  Reconnect/resume semantics match
    :class:`PreferenceClient`: the reader task's death triggers a backoff
    redial plus ``subscribe(from_seq=)`` stream resume, in-flight requests
    fail with :class:`ConnectionLost`, and idempotent ops are re-issued.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        dial: Any = None,
        auto_reconnect: bool = True,
        reconnect_attempts: int = 8,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        shed_retries: int = 4,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._dial = dial
        self.auto_reconnect = bool(auto_reconnect) and dial is not None
        self.reconnect_attempts = max(1, int(reconnect_attempts))
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        #: Retryable-shed budget per call; mirrors :class:`PreferenceClient`.
        self.shed_retries = max(0, int(shed_retries))
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._cursors = _CursorBook()
        self._closing = False
        self._dead: ConnectionLost | None = None
        self._reconnect_task: asyncio.Task | None = None
        self.events: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        self._reader_task = asyncio.create_task(self._read_loop())

    @property
    def last_seen(self) -> dict[str, int]:
        return self._cursors.last_seen

    @property
    def stats(self) -> dict[str, int]:
        return self._cursors.stats

    @classmethod
    async def connect(
        cls,
        host: str | None = None,
        port: int | None = None,
        socket_path: str | Path | None = None,
        **options: Any,
    ) -> "AsyncPreferenceClient":
        async def dial() -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
            if socket_path is not None:
                return await asyncio.open_unix_connection(
                    str(socket_path), limit=MAX_FRAME_BYTES
                )
            return await asyncio.open_connection(
                host, port, limit=MAX_FRAME_BYTES
            )

        reader, writer = await dial()
        return cls(reader, writer, dial=dial, **options)

    async def close(self) -> None:
        self._closing = True
        for task in (self._reader_task, self._reconnect_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncPreferenceClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Reader / reconnect tasks
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionLost(
                        "server closed the connection", self._cursors.last_seen
                    )
                try:
                    frame = decode_frame(line)
                except ServeError as error:
                    raise ConnectionLost(
                        f"unreadable frame ({error})", self._cursors.last_seen
                    ) from error
                if "event" in frame:
                    self._cursors.note_event(frame)
                    await self.events.put(frame)
                    continue
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - fail every waiter, typed
            lost = (
                error
                if isinstance(error, ConnectionLost)
                else ConnectionLost(
                    f"connection lost: {error}", self._cursors.last_seen
                )
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(lost)
            self._pending.clear()
            if self.auto_reconnect and not self._closing:
                self._reconnect_task = asyncio.create_task(self._reconnect())
            else:
                self._dead = lost

    async def _reconnect(self) -> None:
        delay = self.backoff_base_s
        last_error: OSError | None = None
        for _attempt in range(self.reconnect_attempts):
            try:
                self._reader, self._writer = await self._dial()
                break
            except OSError as error:
                last_error = error
                await asyncio.sleep(min(delay, self.backoff_cap_s))
                delay *= 2
        else:
            self._dead = ConnectionLost(
                f"reconnect failed after {self.reconnect_attempts} attempts: "
                f"{last_error}",
                self._cursors.last_seen,
            )
            return
        self._dead = None
        self._cursors.stats["reconnects"] += 1
        self._reader_task = asyncio.create_task(self._read_loop())
        for session in sorted(self._cursors.subscribed):
            try:
                await self._call_once(
                    "subscribe", session,
                    {"from_seq": self._cursors.resume_seq(session)},
                )
                self._cursors.stats["resubscribes"] += 1
            except ServerSideError:
                self._cursors.subscribed.discard(session)
                await self.events.put({
                    "event": "session-evicted",
                    "session": session,
                    "reason": "lost-on-reconnect",
                })
            except ConnectionLost:
                return  # the new read loop schedules the next reconnect

    async def _ensure_connected(self) -> None:
        task = self._reconnect_task
        if task is not None and not task.done():
            await asyncio.shield(task)
        if self._dead is not None:
            raise self._dead

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    async def _call_once(
        self, op: str, session: str | None, params: dict[str, Any]
    ) -> Any:
        self._next_id += 1
        request_id = self._next_id
        frame: dict[str, Any] = {"id": request_id, "op": op, "params": params}
        if session is not None:
            frame["session"] = session
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        reader_task = self._reader_task
        try:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(request_id, None)
            raise ConnectionLost(
                f"send failed: {error}", self._cursors.last_seen
            ) from error
        # Waiting on the future alone could hang if the reader died in the
        # window before this request registered; racing it against the
        # reader task converts that into a typed loss.
        await asyncio.wait(
            {future, reader_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if not future.done():
            self._pending.pop(request_id, None)
            raise ConnectionLost(
                "connection lost awaiting response", self._cursors.last_seen
            )
        return _result_of(future.result())

    async def call(
        self,
        op: str,
        session: str | None = None,
        retry: bool | None = None,
        **params: Any,
    ) -> Any:
        """One request/response; reconnects and (for idempotent ops)
        retries on connection loss, and sleeps out typed retryable sheds
        (``overloaded``/``quota-exceeded``) up to ``shed_retries`` times,
        mirroring the sync client."""
        retryable = (op in IDEMPOTENT_OPS) if retry is None else bool(retry)
        attempts = 0
        sheds = 0
        while True:
            await self._ensure_connected()
            reader_task = self._reader_task
            try:
                return await self._call_once(op, session, params)
            except ServerSideError as error:
                if not error.retryable or sheds >= self.shed_retries:
                    raise
                sheds += 1
                self._cursors.stats["sheds"] += 1
                await asyncio.sleep(
                    min(
                        self.backoff_cap_s,
                        error.retry_after_s or self.backoff_base_s,
                    )
                )
            except ConnectionLost:
                if not self.auto_reconnect:
                    raise
                attempts += 1
                # A send-side loss may beat the read loop to the detection;
                # wait for the (old) read loop to exit and schedule the
                # reconnect, then block on it.
                try:
                    await asyncio.wait_for(asyncio.shield(reader_task), timeout=5.0)
                except (TimeoutError, asyncio.CancelledError):
                    pass
                await self._ensure_connected()
                if not retryable or attempts > 2:
                    raise

    async def open_session(
        self,
        scenario: str,
        seed: int = 0,
        overrides: dict[str, Any] | None = None,
        **params: Any,
    ) -> str:
        result = await self.call(
            "open", scenario=scenario, seed=seed, overrides=overrides or {}, **params
        )
        return result["session"]

    async def probe(
        self, session: str, player: int, objects: list[int]
    ) -> dict[str, Any]:
        return await self.call("probe", session=session, player=player, objects=objects)

    async def run(self, session: str, trials: int = 1, **params: Any) -> dict[str, Any]:
        return await self.call("run", session=session, trials=trials, **params)

    async def subscribe(
        self, session: str, from_seq: int | None = None
    ) -> dict[str, Any]:
        params = {} if from_seq is None else {"from_seq": int(from_seq)}
        result = await self.call("subscribe", session=session, **params)
        self._cursors.subscribed.add(session)
        if isinstance(result, dict) and "next_seq" in result:
            self._cursors.last_seen.setdefault(
                session, int(result["next_seq"]) - 1
            )
        return result

    async def next_event(
        self, event: str | None = None, timeout_s: float = 30.0
    ) -> dict[str, Any]:
        """Await the next event, optionally filtering by kind."""
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError(f"no {event or 'any'} event within {timeout_s}s")
            frame = await asyncio.wait_for(self.events.get(), timeout=remaining)
            if event is None or frame.get("event") == event:
                return frame
