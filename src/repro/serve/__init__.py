"""Protocol-as-a-service: the asyncio preference server and its clients.

The package splits along the control/state boundary:

* :mod:`repro.serve.protocol` — the NDJSON wire format (frames, typed error
  codes, exact ndarray encoding).
* :mod:`repro.serve.session` — one live ``(spec, seed)`` protocol context
  per session, mutated only by that session's single worker thread.
* :mod:`repro.serve.server` — the asyncio control plane: connections,
  dispatch, the pub/sub publisher, backpressure and idle eviction.
* :mod:`repro.serve.client` — sync and async typed clients.
* :mod:`repro.serve.cli` — the ``serve`` / ``call`` / ``watch`` verbs.

Everything is stdlib + numpy; the server holds no state that is not
reconstructible from ``(scenario, seed)``, and a session's full-run results
are bit-identical to ``python -m repro run`` of the same pair.
"""

from repro.serve.client import AsyncPreferenceClient, PreferenceClient, ServerSideError
from repro.serve.protocol import ServeError, decode_array, encode_array
from repro.serve.server import PreferenceServer
from repro.serve.session import Session, build_spec

__all__ = [
    "AsyncPreferenceClient",
    "PreferenceClient",
    "PreferenceServer",
    "ServeError",
    "ServerSideError",
    "Session",
    "build_spec",
    "decode_array",
    "encode_array",
]
