"""Protocol-as-a-service: the asyncio preference server and its clients.

The package splits along the control/state boundary:

* :mod:`repro.serve.protocol` — the NDJSON wire format (frames, typed error
  codes, exact ndarray encoding).
* :mod:`repro.serve.session` — one live ``(spec, seed)`` protocol context
  per session, mutated only by that session's single worker thread.
* :mod:`repro.serve.durability` — per-session write-ahead op logs,
  checksum-verified session checkpoints with journal compaction (so
  recovery is O(checkpoint + tail), not O(history)), event cursors with
  bounded replay rings, and stale-socket hygiene: the pieces that make a
  ``--state-dir`` server crash-recoverable by deterministic replay.
* :mod:`repro.serve.server` — the asyncio control plane: connections,
  dispatch, the pub/sub publisher, overload shedding, idle eviction,
  session recovery and graceful shutdown.
* :mod:`repro.serve.client` — sync and async typed clients with
  auto-reconnect, heartbeat liveness probes and cursor-based stream
  resume (connection loss surfaces as a typed
  :class:`~repro.errors.ConnectionLost`, never a raw ``OSError``).
* :mod:`repro.serve.cli` — the ``serve`` / ``call`` / ``watch`` verbs.

Everything is stdlib + numpy; the server holds no state that is not
reconstructible from ``(scenario, seed)`` plus the journaled op sequence,
and a session's full-run results are bit-identical to ``python -m repro
run`` of the same pair — before a crash, after recovery, and across a
client reconnect.
"""

from repro.errors import ConnectionLost
from repro.serve.client import AsyncPreferenceClient, PreferenceClient, ServerSideError
from repro.serve.durability import (
    CheckpointError,
    DurabilityWarning,
    EventRing,
    SessionCheckpoint,
    SessionJournal,
    archive_session_state,
)
from repro.serve.protocol import (
    Overloaded,
    QuotaExceeded,
    ServeError,
    decode_array,
    encode_array,
)
from repro.serve.server import PreferenceServer
from repro.serve.session import Session, build_spec

__all__ = [
    "AsyncPreferenceClient",
    "CheckpointError",
    "ConnectionLost",
    "DurabilityWarning",
    "EventRing",
    "Overloaded",
    "PreferenceClient",
    "PreferenceServer",
    "QuotaExceeded",
    "ServeError",
    "ServerSideError",
    "Session",
    "SessionCheckpoint",
    "SessionJournal",
    "archive_session_state",
    "build_spec",
    "decode_array",
    "encode_array",
]
