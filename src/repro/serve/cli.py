"""CLI verbs for the preference server: ``serve``, ``call``, ``watch``.

Registered into the main ``python -m repro`` parser by
:func:`add_serve_commands`, keeping the scenario CLI module free of any
serving imports until a serve verb actually runs.

* ``serve`` — run the server in the foreground (TCP by default, UNIX socket
  with ``--socket``); prints the bound address once listening.  With
  ``--state-dir`` every session keeps a write-ahead op log there and a
  restarted server rebuilds them by replay — ``--checkpoint-every``
  bounds that replay by snapshotting sessions and compacting their
  journals, and a recovery summary line is printed before the address.
  ``--max-sessions`` / ``--session-ops-per-s`` add admission control
  (typed retryable ``quota-exceeded`` refusals).  SIGTERM and SIGINT both drive
  the graceful path: journals flushed, a ``server-shutdown`` event
  broadcast to subscribers, exit code 0.
* ``call`` — one-shot scripting: send a single op (params as inline JSON)
  and print the JSON response.  ``python -m repro call --connect HOST:PORT
  open --params '{"scenario": "zero-radius-exact", "seed": 1}'``.
* ``watch`` — open a session, subscribe, kick off a full run and stream the
  round-result / board-delta / telemetry events as JSON lines until the run
  completes.  Each line carries the event's ``(session, seq)`` cursor; a
  jump in ``seq`` (or a server ``gap`` event) is flagged on stderr so
  missed frames never pass silently.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

__all__ = ["add_serve_commands"]


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve.server import PreferenceServer

    server = PreferenceServer(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        run_workers=args.run_workers,
        idle_timeout_s=args.idle_timeout_s,
        max_pending=args.max_pending,
        publish_interval_s=args.publish_interval_s,
        state_dir=args.state_dir,
        max_sessions=args.max_sessions,
        checkpoint_every=args.checkpoint_every,
        session_ops_per_s=args.session_ops_per_s,
        session_ops_burst=args.session_ops_burst,
    )

    import threading

    def announce() -> None:
        server.ready.wait()
        if args.state_dir:
            # Recovery runs before the socket binds, so the stats are
            # final by the time ready is set.
            stats = server.recovery_stats
            print(
                f"recovered {stats['sessions_recovered']} session(s) "
                f"({stats['ops_replayed']} op(s) replayed, "
                f"{stats['checkpoint_loads']} checkpoint load(s), "
                f"{stats['checkpoint_fallbacks']} fallback(s), "
                f"{stats['sessions_skipped']} skipped)",
                flush=True,
            )
        if server.address and server.address[0] == "unix":
            print(f"listening on {server.address[1]}", flush=True)
        elif server.address:
            print(f"listening on {server.address[1]}:{server.address[2]}", flush=True)

    def graceful(signum: int, _frame: Any) -> None:
        # Both signals take the same orderly path: the server's finally
        # block flushes journals and broadcasts server-shutdown, and the
        # process exits 0 so supervisors see a clean stop.
        print(f"received {signal.Signals(signum).name}; shutting down", flush=True)
        server.request_shutdown()

    signal.signal(signal.SIGTERM, graceful)
    signal.signal(signal.SIGINT, graceful)
    threading.Thread(target=announce, daemon=True).start()
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_call(args: argparse.Namespace) -> int:
    from repro.serve.client import PreferenceClient, ServerSideError

    try:
        params: dict[str, Any] = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as error:
        raise SystemExit(f"--params must be valid JSON: {error}")
    with PreferenceClient(args.connect) as client:
        try:
            result = client.call(args.op, session=args.session, **params)
        except ServerSideError as error:
            print(
                json.dumps({"ok": False, "code": error.code, "message": str(error)}),
                file=sys.stderr,
            )
            return 2
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.serve.client import PreferenceClient

    with PreferenceClient(args.connect) as client:
        session = client.open_session(args.scenario, seed=args.seed)
        client.subscribe(session)
        print(json.dumps({"opened": session, "scenario": args.scenario}), flush=True)
        result = client.run(session, trials=args.trials, workers=args.workers)
        # The run response arrives after the publisher has flushed its final
        # events into our buffer; drain what we saw (each line carries its
        # (session, seq) cursor), then summarise.  A jump in seq — or a
        # server gap event after a reconnect — means frames this watcher can
        # never get back; flag it on stderr instead of passing silently.
        expected_seq: int | None = None
        while client.events:
            frame = client.events.popleft()
            seq = frame.get("seq")
            if frame.get("event") == "gap":
                print(
                    f"warning: stream gap — events before seq "
                    f"{frame.get('resume_seq')} are no longer replayable",
                    file=sys.stderr, flush=True,
                )
            elif seq is not None:
                if expected_seq is not None and seq > expected_seq:
                    print(
                        f"warning: sequence gap — expected seq {expected_seq}, "
                        f"got {seq} ({seq - expected_seq} event(s) missed)",
                        file=sys.stderr, flush=True,
                    )
                expected_seq = int(seq) + 1
            print(json.dumps(frame), flush=True)
        summary = {
            "completed": len(result["rows"]),
            "wall_s": round(result["wall_s"], 3),
            "stats": result["stats"],
            "last_seq": client.last_seen.get(session),
            "reconnects": client.stats["reconnects"],
        }
        print(json.dumps(summary), flush=True)
        client.call("close", session=session)
    return 0


def add_serve_commands(sub: argparse._SubParsersAction) -> None:
    """Register the serving verbs on the main CLI's subparser set."""
    p_serve = sub.add_parser("serve", help="run the async preference server")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p_serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on a UNIX socket instead of TCP",
    )
    p_serve.add_argument(
        "--run-workers", type=int, default=1,
        help="default process-pool width for session 'run' ops",
    )
    p_serve.add_argument(
        "--idle-timeout-s", type=float, default=None,
        help="evict sessions idle longer than this (default: never)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=32,
        help="per-session backpressure limit on queued ops",
    )
    p_serve.add_argument(
        "--publish-interval-s", type=float, default=0.25,
        help="publisher tick for board-delta/telemetry/round-result events",
    )
    p_serve.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="journal sessions here and recover them on restart "
        "(default: ephemeral sessions)",
    )
    p_serve.add_argument(
        "--max-sessions", type=int, default=None,
        help="admission-control cap on concurrently open sessions; "
        "open beyond the cap is refused with a retryable quota-exceeded "
        "frame (default: unbounded)",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=256,
        help="snapshot durable sessions and compact their journals every "
        "N journaled ops; 0 disables checkpoints (default: 256)",
    )
    p_serve.add_argument(
        "--session-ops-per-s", type=float, default=None,
        help="per-session token-bucket rate for mutating ops; exceeding "
        "it is refused with a retryable quota-exceeded frame "
        "(default: unlimited)",
    )
    p_serve.add_argument(
        "--session-ops-burst", type=int, default=None,
        help="token-bucket burst for --session-ops-per-s "
        "(default: 2x the rate)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_call = sub.add_parser("call", help="send one op to a running server")
    p_call.add_argument("op", help="operation name (ping, open, probe, run, ...)")
    p_call.add_argument(
        "--connect", required=True, metavar="ADDR",
        help="host:port or UNIX socket path",
    )
    p_call.add_argument("--session", default=None, help="session name for scoped ops")
    p_call.add_argument(
        "--params", default=None, metavar="JSON", help="op parameters as inline JSON"
    )
    p_call.set_defaults(func=_cmd_call)

    p_watch = sub.add_parser(
        "watch", help="open a session, run it, and stream its events"
    )
    p_watch.add_argument("scenario", help="registry scenario name")
    p_watch.add_argument("--connect", required=True, metavar="ADDR")
    p_watch.add_argument("--seed", type=int, default=0)
    p_watch.add_argument("--trials", type=int, default=1)
    p_watch.add_argument("--workers", type=int, default=1)
    p_watch.set_defaults(func=_cmd_watch)
