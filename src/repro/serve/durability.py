"""Session durability: write-ahead op logs, event cursors, replay rings.

This module is what makes a preference-server session survive its process.
Three pieces, all built on the crash-safety contract of
:mod:`repro.faults.journal` (per-line append+flush, torn-tail-tolerant
loading):

* :class:`SessionJournal` — a per-session write-ahead op log under
  ``<state-dir>/sessions/<name>.jsonl``.  The header records everything
  needed to rebuild the session's ``(spec, seed)`` pair (scenario name +
  the dotted-path overrides it was opened with); every mutating op
  (``probe``/``report``/``select``/``rselect``/``election``/``run``) is
  appended *before* it executes and before its result frame is sent, with
  a monotonic ``seq``.  A restarted server replays the journaled ops in
  order against a freshly ``prepare()``-d context — the ops are
  deterministic functions of session state, so the rebuilt session is
  bit-identical to the never-crashed one.
* :class:`EventRing` — the bounded replay buffer behind ``(session, seq)``
  event cursors.  Every published event is stamped with the session's next
  seq and retained until it falls off the ring; ``subscribe(from_seq=)``
  backfills from here, and a cursor that has fallen out (or points past
  the recovered high-water mark) yields a typed ``gap`` so the client
  knows to resnapshot instead of silently missing frames.
* :func:`clear_stale_socket` — UNIX-socket hygiene for restarts: a socket
  file left by a SIGKILLed predecessor is detected (nobody accepts on it)
  and removed, while a *live* server's socket raises instead of being
  stolen.

Event-seq continuity across a crash: the journal also records an
``events`` high-water mark (``next_seq``) *before* a publisher tick's
frames are sent.  On recovery the ring resumes numbering from that mark,
so a seq a client has actually seen is never reissued for a different
event — at worst the resuming cursor lands in the (empty) recovered ring
and the client receives a ``gap``.
"""

from __future__ import annotations

import errno
import re
import socket
import time
from pathlib import Path
from threading import Lock
from typing import Any

from repro.errors import ExperimentError
from repro.faults.journal import AppendOnlyLog, parse_records

__all__ = [
    "EventRing",
    "SessionJournal",
    "clear_stale_socket",
    "scan_state_dir",
    "session_journal_path",
    "session_ordinal",
]

_JOURNAL_VERSION = 1

#: Ops that must be journaled before execution (everything that can mutate
#: session state or consume shared randomness; reads are not logged).
JOURNALED_OPS = frozenset(
    {"probe", "report", "select", "rselect", "election", "run"}
)


def session_journal_path(state_dir: Path | str, name: str) -> Path:
    """Where session ``name``'s op log lives under ``state_dir``."""
    return Path(state_dir) / "sessions" / f"{name}.jsonl"


def scan_state_dir(state_dir: Path | str) -> list[Path]:
    """All session journals under ``state_dir``, in stable name order."""
    sessions = Path(state_dir) / "sessions"
    if not sessions.is_dir():
        return []
    return sorted(sessions.glob("*.jsonl"))


def session_ordinal(name: str) -> int:
    """The numeric part of a server-allocated session name (``s7`` → 7).

    Used after recovery to restart the name counter past every recovered
    session, so new sessions never collide with replayed ones.  Names that
    do not match the server's ``s<N>`` pattern contribute 0.
    """
    match = re.fullmatch(r"s(\d+)", name)
    return int(match.group(1)) if match else 0


class SessionJournal:
    """Write-ahead op log for one session (crash-safe, torn-tail-tolerant).

    Use :meth:`create` for a fresh session and :meth:`load` to recover one;
    both leave the file open for appending.  Appends may come from two
    threads (op records from the session worker, event high-water marks
    from the server's publisher on the event loop), so writes are locked.
    """

    def __init__(
        self,
        path: Path,
        header: dict[str, Any],
        ops: list[tuple[int, str, dict[str, Any]]],
        events_next_seq: int,
    ) -> None:
        self.path = Path(path)
        self.header = header
        #: ``(seq, op, params)`` records recovered from the file, in order.
        self.recovered_ops = ops
        #: Event-seq high-water mark recovered from the file (>= 1).
        self.events_next_seq = max(1, int(events_next_seq))
        self._lock = Lock()
        self._log = AppendOnlyLog(path)
        self._last_events_mark = self.events_next_seq

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: Path | str,
        *,
        session: str,
        scenario: str,
        overrides: dict[str, Any] | None,
        seed: int,
        max_pending: int,
    ) -> "SessionJournal":
        """Start a fresh journal: write the header, return the open log.

        The header stores the *wire-level* session description (scenario
        name + dotted-path overrides, exactly what the ``open`` op carried)
        rather than a pickled spec: ``build_spec`` reconstructs the same
        :class:`~repro.scenarios.spec.ScenarioSpec` on recovery, and the
        file stays human-readable JSON end to end.
        """
        header = {
            "kind": "header",
            "version": _JOURNAL_VERSION,
            "session": session,
            "scenario": scenario,
            "overrides": dict(overrides or {}),
            "seed": int(seed),
            "max_pending": int(max_pending),
            "created_unix_time": time.time(),
        }
        journal = cls(Path(path), header, [], 1)
        journal._log.append(header)
        return journal

    @classmethod
    def load(cls, path: Path | str) -> "SessionJournal":
        """Recover a journal from disk, tolerating a torn final line.

        Returns the open journal with :attr:`recovered_ops` holding every
        fully-written op record in append order and :attr:`events_next_seq`
        at the recorded high-water mark.  A file without a valid header is
        rejected (:class:`~repro.errors.ExperimentError`) — the caller
        skips it rather than serving a session of unknown provenance.
        """
        path = Path(path)
        records = parse_records(path.read_text(encoding="utf-8"))
        if not records or records[0].get("kind") != "header":
            raise ExperimentError(
                f"session journal {path} has no valid header; cannot recover"
            )
        header = records[0]
        if int(header.get("version", -1)) != _JOURNAL_VERSION:
            raise ExperimentError(
                f"session journal {path} has unsupported version "
                f"{header.get('version')!r}"
            )
        ops: list[tuple[int, str, dict[str, Any]]] = []
        events_next_seq = 1
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "op":
                ops.append(
                    (
                        int(record.get("seq", len(ops) + 1)),
                        str(record.get("op")),
                        dict(record.get("params") or {}),
                    )
                )
            elif kind == "events":
                events_next_seq = max(events_next_seq, int(record.get("next_seq", 1)))
        return cls(path, header, ops, events_next_seq)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def flushes(self) -> int:
        return self._log.flushes

    @property
    def next_op_seq(self) -> int:
        """The seq the next journaled op should use (monotonic, 1-based)."""
        return (self.recovered_ops[-1][0] + 1) if self.recovered_ops else 1

    def record_op(self, seq: int, op: str, params: dict[str, Any]) -> None:
        """Append one op record (the write-ahead point: flushed before the
        op executes, so an acked op is always recoverable)."""
        with self._lock:
            if not self._log.closed:
                self._log.append(
                    {"kind": "op", "seq": int(seq), "op": op, "params": params}
                )

    def record_events_mark(self, next_seq: int) -> None:
        """Persist the event-seq high-water mark (before frames are sent).

        Idempotent per value: repeated marks at the same seq are skipped so
        a chatty publisher does not grow the file without new events.
        """
        next_seq = int(next_seq)
        with self._lock:
            if next_seq <= self._last_events_mark or self._log.closed:
                return
            self._last_events_mark = next_seq
            self._log.append({"kind": "events", "next_seq": next_seq})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._log.close()

    def delete(self) -> None:
        """Close and remove the file (the session is gone for good)."""
        self.close()
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionJournal(path={str(self.path)!r}, "
            f"ops={len(self.recovered_ops)}, "
            f"events_next_seq={self.events_next_seq})"
        )


class EventRing:
    """Bounded replay buffer assigning ``(session, seq)`` event cursors.

    :meth:`stamp` gives a frame the next monotonic seq and retains it;
    :meth:`replay` returns the retained frames at or after a cursor, plus
    the resume point when the cursor cannot be honoured — either because
    it fell off the ring (events evicted) or because it points past
    :attr:`next_seq` (a pre-crash cursor beyond the recovered high-water
    mark).  Both cases mean the subscriber missed frames it can never get
    back, which the server surfaces as a typed ``gap`` event.
    """

    def __init__(self, capacity: int = 1024, next_seq: int = 1) -> None:
        self.capacity = max(1, int(capacity))
        self.next_seq = max(1, int(next_seq))
        #: Frames dropped off the ring since construction.
        self.dropped = 0
        self._frames: list[dict[str, Any]] = []

    @property
    def oldest_seq(self) -> int:
        """Seq of the oldest retained frame (== ``next_seq`` when empty)."""
        return self._frames[0]["seq"] if self._frames else self.next_seq

    def __len__(self) -> int:
        return len(self._frames)

    def stamp(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Assign the next seq to ``frame``, retain it, and return it."""
        frame["seq"] = self.next_seq
        self.next_seq += 1
        self._frames.append(frame)
        overflow = len(self._frames) - self.capacity
        if overflow > 0:
            del self._frames[:overflow]
            self.dropped += overflow
        return frame

    def replay(
        self, from_seq: int
    ) -> tuple[list[dict[str, Any]], int | None]:
        """Frames with ``seq >= from_seq``, plus a gap resume point.

        Returns ``(frames, resume_seq)``.  ``resume_seq`` is ``None`` when
        the cursor is fully honoured; otherwise it is the earliest seq the
        subscriber can actually resume from (the oldest retained frame, or
        ``next_seq`` for a future cursor) and ``frames`` holds whatever is
        still available from there.
        """
        from_seq = max(1, int(from_seq))
        if from_seq > self.next_seq:
            return [], self.next_seq
        if from_seq < self.oldest_seq:
            return list(self._frames), self.oldest_seq
        return [frame for frame in self._frames if frame["seq"] >= from_seq], None


def clear_stale_socket(path: Path | str) -> str:
    """Make way for binding a UNIX socket at ``path``.

    Returns ``"absent"`` (nothing there), ``"removed"`` (a dead socket file
    from a killed predecessor was unlinked) or raises :class:`OSError`
    (``EADDRINUSE``) when a live server still accepts connections on it —
    never steal a running server's socket.
    """
    path = Path(path)
    if not path.exists():
        return "absent"
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.5)
    try:
        probe.connect(str(path))
    except OSError:
        path.unlink(missing_ok=True)
        return "removed"
    finally:
        probe.close()
    raise OSError(
        errno.EADDRINUSE,
        f"socket {path} is in use by a live server; refusing to replace it",
    )
